"""Figure 12: idle experienced in a 16-chare Jacobi execution.

Tasks waiting on the reduction experience the idle that precedes them on
their processor; the metric lights up the events whose dependencies
predate the idle span's end.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import idle_experienced
from repro.sim.noise import PeriodicJitter
from repro.viz import render_metric


@pytest.fixture(scope="module")
def structure():
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7,
                         noise=PeriodicJitter(period=300.0, cost=40.0))
    return extract_logical_structure(trace)


def bench_fig12_idle_experienced(benchmark, structure):
    result = benchmark(idle_experienced, structure)
    assert result.by_event, "reduction waits must surface as idle experienced"
    # Every charged block directly follows idle time on its processor.
    trace = structure.trace
    for block_id in result.by_block:
        block = structure.blocks[block_id]
        assert any(iv.end <= block.start + 1e-9
                   for iv in trace.idles_by_pe[block.pe])
    total = result.total()
    report(
        "Figure 12: idle experienced, Jacobi 16 chares",
        [
            f"blocks charged={len(result.by_block)} total={total:.1f} time units",
            render_metric(structure, result.by_event, max_steps=40),
        ],
    )
