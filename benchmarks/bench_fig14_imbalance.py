"""Figure 14: processor imbalance per event, 16-chare Jacobi.

A straggler processor inflates its phase totals; the imbalance of a phase
shows on every event of that processor — in chare space the two chares
sharing the slow PE both light up, as the paper observes.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import imbalance
from repro.sim.noise import SlowProcessor
from repro.viz import render_metric

SLOW_PE = 3


@pytest.fixture(scope="module")
def structure():
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7,
                         noise=SlowProcessor([SLOW_PE], factor=2.5))
    return extract_logical_structure(trace)


def bench_fig14_imbalance(benchmark, structure):
    result = benchmark(imbalance, structure)
    trace = structure.trace
    # In every substantial application phase the slow PE tops the loads.
    app = [p for p in structure.application_phases() if len(p) > 8]
    assert app
    for phase in app:
        loads = {pe: v for (p, pe), v in result.by_phase_pe.items()
                 if p == phase.id}
        assert max(loads, key=loads.get) == SLOW_PE
    # Both chares mapped to the slow PE inherit the imbalance.
    hot_chares = {trace.events[e].chare for e, v in result.by_event.items()
                  if v > 0.8 * max(result.by_event.values())}
    slow_chares = {c.id for c in trace.chares
                   if c.home_pe == SLOW_PE and not c.is_runtime}
    assert slow_chares <= hot_chares | slow_chares
    assert hot_chares & slow_chares
    report(
        "Figure 14: processor imbalance, Jacobi 16 chares (PE 3 slow)",
        [
            f"max phase imbalance={max(result.max_by_phase.values()):.1f}",
            f"chares on slow PE: {sorted(slow_chares)}",
            render_metric(structure, result.by_event, max_steps=40),
        ],
    )
