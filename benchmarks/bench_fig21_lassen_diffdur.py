"""Figures 21/22: LASSEN differential duration — repeated long events.

In early iterations the wavefront sits in a small region owned by one (or
few) chares, so the same chares' events show high differential duration in
every iteration — a pattern the logical structure makes obvious and the
physical view hides.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lassen
from repro.core import extract_logical_structure
from repro.metrics import differential_duration
from repro.viz import render_metric


@pytest.fixture(scope="module")
def structures():
    out = {}
    for n in (8, 64):
        trace = lassen.run_charm(chares=n, pes=8, iterations=4, seed=1)
        out[n] = extract_logical_structure(trace)
    return out


def bench_fig21_diffdur_8(benchmark, structures):
    structure = structures[8]
    result = benchmark(differential_duration, structure)
    trace = structure.trace
    hot = [e for e, v in result.by_event.items() if v > 25.0]
    assert hot
    hot_chares = {trace.events[e].chare for e in hot}
    # The same small set of front chares repeats across iterations.
    assert len(hot_chares) <= 3
    per_chare = {}
    for e in hot:
        per_chare[trace.events[e].chare] = per_chare.get(trace.events[e].chare, 0) + 1
    assert max(per_chare.values()) >= 2  # same chare, same role, repeatedly
    report(
        "Figures 21/22: LASSEN differential duration (8 chares)",
        [
            f"hot chares {sorted(trace.chares[c].name for c in hot_chares)} "
            f"repeat across iterations",
            render_metric(structure, result.by_event, max_steps=48),
        ],
    )


def bench_fig22_diffdur_64(benchmark, structures):
    structure = structures[64]
    result = benchmark(differential_duration, structure)
    res8 = differential_duration(structures[8])
    # Splitting the front over more chares lowers the peak excess.
    assert result.max_value() < res8.max_value()
    report(
        "Figure 22: LASSEN differential duration (64 chares)",
        [f"max excess 64-chare={result.max_value():.1f} vs "
         f"8-chare={res8.max_value():.1f}"],
    )
