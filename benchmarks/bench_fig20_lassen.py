"""Figure 20: LASSEN logical structure across the four trace variants.

All four traces (MPI/Charm++, 8/64-way) show a repeated point-to-point
phase followed by a collective/runtime phase; the Charm++ traces add the
short self-invocation control phases, and their allreduce is visible as
the reduction tree in the runtime chares.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lassen
from repro.core import extract_logical_structure
from repro.core.patterns import detect_period, kind_sequence, signature_sequence


@pytest.fixture(scope="module")
def traces():
    return {
        ("mpi", 8): lassen.run_mpi(ranks=8, iterations=4, seed=1),
        ("mpi", 64): lassen.run_mpi(ranks=64, iterations=4, seed=1),
        ("charm", 8): lassen.run_charm(chares=8, pes=8, iterations=4, seed=1),
        ("charm", 64): lassen.run_charm(chares=64, pes=8, iterations=4, seed=1),
    }


def bench_fig20_charm64(benchmark, traces):
    structure = benchmark(extract_logical_structure, traces[("charm", 64)])
    lines = []
    for (model, n), trace in traces.items():
        if model == "mpi":
            s = extract_logical_structure(trace, order="physical")
            period, _, repeats = detect_period(signature_sequence(s), min_repeats=2)
            assert period == 2 and repeats >= 3  # p2p + allreduce
            lines.append(f"MPI {n:3d} procs : repeating p2p + allreduce "
                         f"(period 2 x{repeats})")
        else:
            s = structure if n == 64 else extract_logical_structure(trace)
            seq = kind_sequence(s)
            # Unit: p2p app phase, runtime reduction, n control phases.
            assert seq.startswith("ar" + "a" * n)
            control = [p for p in s.phases
                       if not p.is_runtime and len(p.events) == 2]
            assert len(control) == n * 4
            tree = [p for p in s.runtime_phases()]
            assert tree and all(
                any("child_partial" in name for name, _ in
                    s.phase_entry_signature(p.id)) for p in tree
            )
            lines.append(
                f"Charm {n:3d} chares: repeating p2p + reduction tree + "
                f"{n} two-step control phases"
            )
    report("Figure 20: LASSEN structures (4 traces)", lines)
