"""Figure 23: the growing wavefront spreads the high differential duration.

As iterations proceed more chares share the front; with 64 chares the
paper measured a maximum differential duration about a quarter of the
8-chare run's, and (checking with the imbalance metric) less than half the
overall imbalance — the finer decomposition schedules more equitably.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lassen
from repro.core import extract_logical_structure
from repro.metrics import differential_duration, imbalance

ITERATIONS = 8


@pytest.fixture(scope="module")
def structures():
    return {
        n: extract_logical_structure(
            lassen.run_charm(chares=n, pes=8, iterations=ITERATIONS, seed=5)
        )
        for n in (8, 64)
    }


def _late(structure):
    cutoff = structure.max_step * 0.6
    late = {p.id for p in structure.phases if p.offset >= cutoff}
    diff = differential_duration(structure)
    d = max((v for e, v in diff.by_event.items()
             if structure.phase_of_event[e] in late), default=0.0)
    imb = imbalance(structure)
    i = max((v for p, v in imb.max_by_phase.items() if p in late), default=0.0)
    return d, i


def bench_fig23_wavefront_spread(benchmark, structures):
    d64, i64 = benchmark(_late, structures[64])
    d8, i8 = _late(structures[8])
    assert d64 < 0.5 * d8  # paper: roughly one quarter
    assert i64 < i8        # paper: less than half overall

    # More chares share the front late in the run than early.
    diff = differential_duration(structures[64])
    trace = structures[64].trace
    s = structures[64]
    early = {trace.events[e].chare for e, v in diff.by_event.items()
             if v > 1.0 and s.phase_of_event[e] is not None
             and s.phases[s.phase_of_event[e]].offset < s.max_step * 0.25}
    late = {trace.events[e].chare for e, v in diff.by_event.items()
            if v > 1.0 and s.phases[s.phase_of_event[e]].offset >= s.max_step * 0.6}
    assert len(late) > len(early)
    report(
        "Figure 23: wavefront growth spreads differential duration",
        [
            f"late-run max differential duration: 8 chares={d8:.1f}, "
            f"64 chares={d64:.1f} (ratio {d8 / max(d64, 1e-9):.1f}x; paper ~4x)",
            f"late-run max imbalance: 8 chares={i8:.1f}, 64 chares={i64:.1f} "
            f"(ratio {i8 / max(i64, 1e-9):.1f}x; paper >2x)",
            f"chares sharing the front: early={len(early)}, late={len(late)}",
        ],
    )
