"""Figure 24: PDES — untraced completion-detector calls leave phases
concurrent.

The detector call passes through the runtime and is not recorded, so
nothing structurally prevents the detector phase from covering the same
global steps as the simulation phase.  Tracing the call (the Section 7.1
recommendation) restores the ordering.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import pdes
from repro.core import extract_logical_structure
from repro.viz import render_logical


@pytest.fixture(scope="module")
def untraced():
    return pdes.run(chares=16, pes=4, seed=1)


@pytest.fixture(scope="module")
def traced():
    return pdes.run(chares=16, pes=4, seed=1, traced_completion=True)


def bench_fig24_untraced(benchmark, untraced, traced):
    structure = benchmark(extract_logical_structure, untraced)
    app = structure.application_phases()
    rt = structure.runtime_phases()
    sim_steps = {structure.step_of_event[e] for p in app for e in p.events}
    det_steps = {structure.step_of_event[e] for p in rt for e in p.events}
    overlap = len(sim_steps & det_steps)
    assert overlap > 0  # phases cover the same steps

    ordered = extract_logical_structure(traced)
    big_app = max(ordered.application_phases(), key=len)
    big_rt = max(ordered.runtime_phases(), key=len)
    assert big_rt.offset > big_app.offset  # tracing restores the order
    report(
        "Figure 24: PDES 16 chares / 4 PEs",
        [
            f"untraced detector: {overlap} global steps shared by the "
            f"simulation and detector phases (concurrent placement)",
            f"traced detector  : detector aggregation offset "
            f"{big_rt.offset} > simulation offset {big_app.offset}",
            render_logical(structure, max_steps=40),
        ],
    )
