"""Figure 18: extraction time vs iteration count (64-chare LULESH).

The paper sweeps 8..512 iterations and finds computation time directly
proportional to the iteration count, unaffected by the doubling of phases.
This bench sweeps 8..64 (scaled for wall time); the pytest-benchmark table
is the figure's series, and the proportionality is asserted on trace-size
normalization.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lulesh
from repro.core import extract_logical_structure
from repro.core.pipeline import PipelineStats

ITERATIONS = [8, 16, 32, 64]
_traces = {}
_seconds = {}


def _trace(iters):
    if iters not in _traces:
        _traces[iters] = lulesh.run_charm(chares=64, pes=8, iterations=iters, seed=3)
    return _traces[iters]


@pytest.mark.parametrize("iters", ITERATIONS)
def bench_fig18_iterations(benchmark, iters):
    trace = _trace(iters)
    stats = PipelineStats()
    structure = benchmark.pedantic(
        extract_logical_structure, args=(trace,), kwargs={"stats": stats},
        rounds=3, iterations=1,
    )
    _seconds[iters] = stats.total_seconds
    # Phase count scales linearly: 3 phases per iteration plus setup.
    assert len(structure.phases) == pytest.approx(3 * iters + 2, abs=iters * 0.4)
    if iters == ITERATIONS[-1]:
        lines = [
            f"{i:4d} iterations: {_seconds[i]:6.2f}s "
            f"({len(_trace(i).events)} events)"
            for i in ITERATIONS if i in _seconds
        ]
        lo, hi = ITERATIONS[0], ITERATIONS[-1]
        ratio = (_seconds[hi] / _seconds[lo]) / (hi / lo)
        lines.append(
            f"time growth vs iteration growth: {ratio:.2f}x "
            "(1.0 = perfectly proportional; paper reports proportional)"
        )
        # Near-linear: within 3x of proportional over an 8x sweep.
        assert ratio < 3.0
        report("Figure 18: extraction time vs iterations (64 chares)", lines)
