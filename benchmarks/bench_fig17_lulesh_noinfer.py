"""Figure 17: LULESH structure without the Section 3.1.4 inference.

On a trace with missing control information (no SDAG metadata — the paper
notes its traces "did not capture all control information"), disabling
dependency inference and overlap merging shatters the phases: the pieces
are forced into sequence instead of merged, exactly the paper's figure.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lulesh
from repro.core import PipelineOptions, extract_logical_structure
from repro.sim.charm import TracingOptions


@pytest.fixture(scope="module")
def trace():
    return lulesh.run_charm(chares=8, pes=2, iterations=3, seed=3,
                            tracing=TracingOptions(record_sdag=False))


def bench_fig17_without_inference(benchmark, trace):
    without = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(infer=False)
    )
    with_inf = extract_logical_structure(trace, infer=True)
    assert len(without.phases) > 2 * len(with_inf.phases)
    assert without.max_step > with_inf.max_step
    report(
        "Figure 17: LULESH without Section 3.1.4 inference",
        [
            f"with inference   : {len(with_inf.phases):4d} phases, "
            f"{with_inf.max_step + 1:4d} steps",
            f"without inference: {len(without.phases):4d} phases, "
            f"{without.max_step + 1:4d} steps",
            "(phases split and are forced one after another)",
        ],
    )


def bench_fig17_with_inference(benchmark, trace):
    structure = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(infer=True)
    )
    assert structure.max_step >= 0
