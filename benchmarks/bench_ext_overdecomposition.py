"""Extension: the overdecomposition trade-off the paper's intro motivates.

Task-based runtimes tolerate noise by keeping more work than processors
("this grants the runtime the flexibility to migrate work in order to use
the available resources more efficiently", Section 2).  Holding the total
work and PE count fixed while shrinking the chares, the run gets faster up
to a sweet spot — more slack to hide jittered neighbours behind — and then
slows again as per-task overhead dominates.  Not a paper figure; a
quantified check of its motivation on the Jacobi workload.
"""


from benchmarks.conftest import report
from repro.apps import jacobi2d
from repro.sim.noise import GaussianNoise

#: (chare grid, per-chare compute cost) at constant total work.
SWEEP = [((4, 2), 480.0), ((4, 4), 240.0), ((8, 4), 120.0), ((8, 8), 60.0)]


def _span(shape, cost):
    trace = jacobi2d.run(
        chares=shape, pes=8, iterations=4, seed=3, compute_cost=cost,
        noise=GaussianNoise(sigma=0.35, seed=9), mapping="shuffle",
    )
    return trace.end_time()


def bench_ext_overdecomposition(benchmark):
    spans = benchmark.pedantic(
        lambda: [(_shape[0] * _shape[1], _span(_shape, _cost))
                 for _shape, _cost in SWEEP],
        rounds=1, iterations=1,
    )
    by_count = dict(spans)
    # Moderate overdecomposition beats one chare per PE under jitter...
    assert by_count[32] < by_count[8]
    # ...and the curve turns back up once task overhead dominates.
    assert by_count[64] > by_count[32]
    report(
        "Extension: overdecomposition under 35% compute jitter "
        "(8 PEs, constant total work)",
        [f"{count:3d} chares ({count // 8}/PE): span {span:8.1f}"
         for count, span in spans],
    )
