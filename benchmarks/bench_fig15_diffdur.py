"""Figure 15: differential duration, 16-chare Jacobi with one slow chare.

One chare's compute block takes significantly longer than its peers at the
same logical step; differential duration isolates exactly that chare.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import differential_duration
from repro.sim.noise import ChareSlowdown
from repro.viz import render_metric

SLOW_CHARE = 6


@pytest.fixture(scope="module")
def structure():
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7,
                         noise=ChareSlowdown([SLOW_CHARE], factor=4.0))
    return extract_logical_structure(trace)


def bench_fig15_differential_duration(benchmark, structure):
    result = benchmark(differential_duration, structure)
    trace = structure.trace
    worst = result.max_event()
    assert trace.events[worst].chare == SLOW_CHARE
    # The same chare tops the metric in every iteration (the repeating
    # pattern the logical view makes obvious).
    hot = [e for e, v in result.by_event.items()
           if v > 0.5 * result.by_event[worst]]
    assert {trace.events[e].chare for e in hot} == {SLOW_CHARE}
    assert len(hot) >= 3  # once per iteration
    report(
        "Figure 15: differential duration, Jacobi 16 chares (1 slow chare)",
        [
            f"max excess={result.by_event[worst]:.1f} on chare "
            f"{trace.chares[SLOW_CHARE].name} (repeats {len(hot)}x)",
            render_metric(structure, result.by_event, max_steps=40),
        ],
    )
