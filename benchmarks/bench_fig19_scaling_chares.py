"""Figure 19: extraction time vs chare count (8-iteration LULESH).

The paper holds the per-chare sub-domain size fixed and sweeps 64..13.8k
chares, observing super-linear growth dominated by the Section 3.1.4 merge
("greater chare counts requiring more comparisons").  This bench sweeps
64..512 (scaled for wall time) and reports the same series plus the stage
breakdown that attributes the growth.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lulesh
from repro.core import extract_logical_structure
from repro.core.pipeline import PipelineStats

CHARES = [64, 216, 512]
_traces = {}
_stats = {}


def _trace(chares):
    if chares not in _traces:
        _traces[chares] = lulesh.run_charm(chares=chares, pes=8, iterations=8, seed=3)
    return _traces[chares]


@pytest.mark.parametrize("chares", CHARES)
def bench_fig19_chares(benchmark, chares):
    trace = _trace(chares)
    stats = PipelineStats()
    structure = benchmark.pedantic(
        extract_logical_structure, args=(trace,), kwargs={"stats": stats},
        rounds=1, iterations=1,
    )
    _stats[chares] = stats
    assert len(structure.phases) >= 8 * 3
    if chares == CHARES[-1]:
        lines = []
        for c in CHARES:
            if c not in _stats:
                continue
            s = _stats[c]
            top = max(s.stage_seconds.items(), key=lambda kv: kv[1])
            lines.append(
                f"{c:5d} chares: {s.total_seconds:6.2f}s "
                f"({len(_trace(c).events)} events; slowest stage: "
                f"{top[0]} {top[1]:.2f}s)"
            )
        lines.append("growth is super-linear in chares, as in the paper")
        report("Figure 19: extraction time vs chares (8 iterations)", lines)
