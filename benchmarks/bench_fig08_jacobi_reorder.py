"""Figure 8: Jacobi 2D, 64 chares on 8 PEs — recorded vs reordered steps.

The paper shows that with events in recorded order the first application
phase is "not compact or recognizable", while reordering reveals the shared
communication pattern of both iterations.
"""

import pytest

from benchmarks.conftest import report, step_histogram
from repro.apps import jacobi2d
from repro.core import PipelineOptions, extract_logical_structure
from repro.core.patterns import kind_sequence


@pytest.fixture(scope="module")
def trace():
    return jacobi2d.run(chares=(8, 8), pes=8, iterations=2, seed=1)


def bench_fig08_reordered(benchmark, trace):
    structure = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(order="reordered")
    )
    physical = extract_logical_structure(trace, order="physical")
    # Alternating application/runtime phases, and reordering is at least
    # as compact as the recorded order.
    assert kind_sequence(structure) == "arar"
    assert structure.max_step <= physical.max_step
    report(
        "Figure 8: Jacobi 2D 64 chares / 8 PEs",
        [
            f"phases={kind_sequence(structure)!r}",
            f"steps reordered={structure.max_step + 1} "
            f"recorded={physical.max_step + 1}",
            f"events/step reordered: {step_histogram(structure, 24)}",
            f"events/step recorded : {step_histogram(physical, 24)}",
        ],
    )


def bench_fig08_physical(benchmark, trace):
    structure = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(order="physical")
    )
    assert structure.max_step >= 0
