"""Figure 16: LULESH logical structure — MPI vs Charm++.

Paper shape: after a setup phase, MPI repeats *three* exchange phases
followed by an allreduce; Charm++ repeats *two* (mirrored) exchange phases
followed by the allreduce through the reduction managers.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lulesh
from repro.core import PipelineOptions, extract_logical_structure
from repro.core.patterns import detect_period, signature_sequence


@pytest.fixture(scope="module")
def charm_trace():
    return lulesh.run_charm(chares=8, pes=2, iterations=4, seed=3)


@pytest.fixture(scope="module")
def mpi_trace():
    return lulesh.run_mpi(ranks=8, iterations=4, seed=3)


def bench_fig16_charm(benchmark, charm_trace, mpi_trace):
    structure = benchmark(extract_logical_structure, charm_trace)
    sigs = signature_sequence(structure)
    period, start, repeats = detect_period(sigs, min_repeats=2)
    assert period == 3 and repeats >= 3
    order = structure.phase_sequence()
    unit = [structure.phase(order[start + i]) for i in range(period)]
    kinds = ["rt" if p.is_runtime else "app" for p in unit]
    assert kinds == ["app", "app", "rt"]

    mpi = extract_logical_structure(mpi_trace, order="physical")
    mpi_sigs = signature_sequence(mpi)
    mpi_period, mpi_start, mpi_repeats = detect_period(mpi_sigs, min_repeats=2)
    unit_sigs = [dict(mpi_sigs[mpi_start + i]) for i in range(mpi_period)]
    assert mpi_period == 4
    assert sum("MPI_Send" in s for s in unit_sigs) == 3
    assert sum("MPI_Allreduce" in s for s in unit_sigs) == 1
    report(
        "Figure 16: LULESH logical structure",
        [
            f"MPI (8 procs): repeating unit = 3 point-to-point phases + "
            f"allreduce, x{mpi_repeats}",
            f"Charm++ (8 chares / 2 PEs): repeating unit = 2 mirrored "
            f"exchange phases + allreduce, x{repeats}",
            f"Charm++ phase kinds: "
            f"{''.join('r' if p.is_runtime else 'a' for p in structure.phases)}",
        ],
    )


def bench_fig16_mpi(benchmark, mpi_trace):
    structure = benchmark(
        extract_logical_structure, mpi_trace, options=PipelineOptions(order="physical")
    )
    assert structure.max_step >= 0
