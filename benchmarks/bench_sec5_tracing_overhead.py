"""Section 5: overhead of the process-local reduction tracing.

The paper argues the added records cost "a small constant ... that we have
found to be negligible in practice": the contribute call always sits
inside an already-traced entry method, so only one short extra record per
contribution is added.  This bench measures both the record-count increase
and the simulated time dilation with a non-zero per-event tracing cost.
"""


from benchmarks.conftest import report
from repro.apps import jacobi2d
from repro.sim.charm import TracingOptions


def _run(trace_reductions: bool, event_overhead: float = 0.0):
    return jacobi2d.run(
        chares=(8, 8), pes=8, iterations=4, seed=1,
        tracing=TracingOptions(trace_reductions=trace_reductions,
                               event_overhead=event_overhead),
    )


def bench_sec5_overhead(benchmark):
    enhanced = benchmark(_run, True)
    stock = _run(False)
    extra_events = len(enhanced.events) - len(stock.events)
    # One extra traced send+recv pair per contribution: 64 chares x 4
    # iterations = 256 contributions -> 512 extra dependency events.
    assert extra_events == 2 * 64 * 4
    frac_records = extra_events / len(enhanced.events)

    # Time dilation with an explicit per-event tracing cost.
    timed = _run(True, event_overhead=0.05)
    base = _run(True, event_overhead=0.0)
    dilation = timed.end_time() / base.end_time() - 1.0
    assert dilation < 0.05  # well under 5%: negligible, as the paper found
    report(
        "Section 5: reduction-tracing overhead",
        [
            f"extra records: {extra_events} "
            f"({100 * frac_records:.1f}% of the enhanced trace)",
            f"simulated time dilation at 0.05/event: {100 * dilation:.2f}%",
        ],
    )
