"""Shared benchmark fixtures and reporting helpers.

Every ``bench_figXX_*.py`` module regenerates one figure of the paper's
evaluation: it builds the figure's workload, benchmarks the analysis that
the figure exercises, asserts the figure's *shape* claims, and emits the
rows/series the paper reports through :func:`report` (printed with ``-s``
and always appended to ``benchmarks/results.txt``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"


def report(title: str, lines) -> None:
    """Print a figure's regenerated series and append it to results.txt."""
    block = [f"== {title} =="] + [str(l) for l in lines]
    text = "\n".join(block)
    print("\n" + text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as fh:
        fh.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
    yield


def step_histogram(structure, limit=None):
    """Events per global step (the series Figures 8/10 plot)."""
    hist = {}
    for step in structure.step_of_event:
        if step >= 0:
            hist[step] = hist.get(step, 0) + 1
    n = structure.max_step + 1 if limit is None else min(limit, structure.max_step + 1)
    return [hist.get(s, 0) for s in range(n)]
