"""Verification overhead on the Figure 1 NAS BT workload.

Benchmarks the extraction pipeline bare against the same pipeline with
strict verification enabled (``PipelineOptions(verify=True)``: stage
postconditions plus the full invariant suite on the result), and reports
the relative overhead.  The invariant layer is meant to be cheap enough
to leave on in tests and tooling; this bench quantifies the claim.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core import PipelineOptions, extract_logical_structure

from repro.apps import nasbt


@pytest.fixture(scope="module")
def trace():
    # The fig01 workload: 9 ranks, 2 iterations of the BT sweep.
    return nasbt.run(ranks=9, iterations=2, seed=1)


def _timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_verify_baseline(benchmark, trace):
    structure = benchmark(extract_logical_structure, trace)
    assert structure.max_step >= 0


def bench_verify_strict(benchmark, trace):
    options = PipelineOptions(verify=True)

    def run():
        return extract_logical_structure(trace, options=options)

    structure = benchmark(run)
    assert structure.max_step >= 0

    base = _timed(lambda: extract_logical_structure(trace))
    strict = _timed(run)
    overhead = strict / base if base > 0 else float("inf")
    report(
        "Verification overhead: NAS BT (9 processes, fig01 workload)",
        [
            f"baseline_s={base:.4f}",
            f"strict_s={strict:.4f}",
            f"overhead_x={overhead:.2f}",
        ],
    )
    # Strict verification must stay within a small constant factor.
    assert overhead < 10.0
