"""Figure 10: 1,024-process MPI merge tree — reordering restores regularity.

Data-dependent imbalance makes receivers process children's trees in
irregular arrival order; physical-time stepping forces logically-early
events to late steps, while reordering recovers the level-by-level ladder.
"""

import pytest

from benchmarks.conftest import report, step_histogram
from repro.apps import mergetree
from repro.core import PipelineOptions, extract_logical_structure


@pytest.fixture(scope="module")
def trace():
    return mergetree.run(ranks=1024, seed=2, imbalance=5.0)


def bench_fig10_reordered(benchmark, trace):
    reordered = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(order="reordered")
    )
    physical = extract_logical_structure(trace, order="physical")
    n = trace.num_pes
    h_re = step_histogram(reordered, 12)
    h_ph = step_histogram(physical, 12)
    # Reordering recovers the full initial parallelism (n/2 leaf sends at
    # step 0); physical order loses some of it or stretches the schedule.
    assert h_re[0] == n // 2 and h_re[1] == n // 2
    assert h_ph[0] < n // 2 or physical.max_step > reordered.max_step
    report(
        "Figure 10: merge tree, 1024 MPI processes",
        [
            f"steps physical={physical.max_step + 1} "
            f"reordered={reordered.max_step + 1}",
            f"events/step physical : {h_ph}",
            f"events/step reordered: {h_re}",
            "(reordered first levels are exactly 512/512/256/256/...: the",
            " parallel structure of the initial steps is restored)",
        ],
    )


def bench_fig10_physical(benchmark, trace):
    structure = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(order="physical")
    )
    assert structure.max_step >= 0
