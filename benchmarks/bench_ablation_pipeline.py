"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure: quantifies what each pipeline ingredient buys on the
LULESH workload — the application/runtime separation, the serial-block
repair, the inference stage, and reordering.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import lulesh
from repro.core import PipelineOptions, extract_logical_structure
from repro.core.initial import build_initial
from repro.core.merges import dependency_merge, repair_merge
from repro.sim.charm import TracingOptions


@pytest.fixture(scope="module")
def trace():
    return lulesh.run_charm(chares=8, pes=2, iterations=4, seed=3)


@pytest.fixture(scope="module")
def degraded_trace():
    return lulesh.run_charm(
        chares=8, pes=2, iterations=4, seed=3,
        tracing=TracingOptions(record_sdag=False, trace_reductions=False),
    )


def bench_ablation_repair_merge(benchmark, trace):
    """How many partitions does the serial-block repair eliminate?"""

    def run():
        initial = build_initial(trace, mode="charm")
        dependency_merge(initial.state)
        before = initial.state.num_partitions()
        repair_merge(initial)
        return before, initial.state.num_partitions()

    before, after = benchmark(run)
    assert after <= before
    report(
        "Ablation: serial-block repair (Algorithm 2)",
        [f"partitions before repair={before}, after={after}"],
    )


def bench_ablation_inference_on_degraded_trace(benchmark, degraded_trace):
    """Inference matters most when tracing is weakest."""
    full = benchmark(
        extract_logical_structure, degraded_trace,
        options=PipelineOptions(infer=True),
    )
    no_inf = extract_logical_structure(degraded_trace, infer=False)
    assert len(full.phases) < len(no_inf.phases)
    report(
        "Ablation: Section 3.1.4 inference on a degraded trace "
        "(no SDAG info, stock reduction tracing)",
        [
            f"infer=True : {len(full.phases):4d} phases, "
            f"{full.max_step + 1:4d} steps",
            f"infer=False: {len(no_inf.phases):4d} phases, "
            f"{no_inf.max_step + 1:4d} steps",
        ],
    )


def bench_ablation_reorder_cost(benchmark, trace):
    """Reordering's runtime cost relative to physical ordering."""
    structure = benchmark(
        extract_logical_structure, trace, options=PipelineOptions(order="reordered")
    )
    physical = extract_logical_structure(trace, order="physical")
    assert structure.max_step <= physical.max_step
    report(
        "Ablation: reordering vs recorded order",
        [
            f"steps reordered={structure.max_step + 1}, "
            f"recorded={physical.max_step + 1}",
        ],
    )
