"""Extension: measurement-based load balancing with chare migration.

Four heavy chares start clustered on one PE; greedy LB at iteration 2
migrates them apart and the per-phase imbalance metric collapses.  The
refinement strategy achieves a similar effect with far fewer migrations.
"""


from benchmarks.conftest import report
from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import imbalance
from repro.sim.charm import RefineBalancer
from repro.sim.noise import ChareSlowdown


def _run(lb_period, balancer=None):
    return jacobi2d.run(
        chares=(4, 4), pes=4, iterations=6, seed=7,
        noise=ChareSlowdown([0, 1, 2, 3], factor=4.0),
        lb_period=lb_period, balancer=balancer,
    )


def _imbalance_series(trace):
    structure = extract_logical_structure(trace)
    imb = imbalance(structure)
    phases = sorted(
        (p for p in structure.application_phases() if len(p) > 8),
        key=lambda p: p.offset,
    )
    return [imb.max_by_phase.get(p.id, 0.0) for p in phases]


def bench_ext_loadbalance(benchmark):
    greedy = benchmark(_run, 2)
    baseline = _run(0)
    refine = _run(2, balancer=RefineBalancer())
    g_series = _imbalance_series(greedy)
    b_series = _imbalance_series(baseline)
    r_series = _imbalance_series(refine)
    assert g_series[-1] < g_series[0] / 2
    assert b_series[-1] > b_series[0] / 2
    assert greedy.end_time() < baseline.end_time()
    g_moves = sum(s["migrations"] for s in greedy.metadata["lb_steps"])
    r_moves = sum(s["migrations"] for s in refine.metadata["lb_steps"])
    assert r_moves < g_moves
    report(
        "Extension: load balancing (heavy chares clustered on PE 0)",
        [
            f"no LB     imbalance/iter: {[round(v, 1) for v in b_series]}",
            f"greedy LB imbalance/iter: {[round(v, 1) for v in g_series]} "
            f"({g_moves} migrations)",
            f"refine LB imbalance/iter: {[round(v, 1) for v in r_series]} "
            f"({r_moves} migrations)",
            f"span: no-LB {baseline.end_time():.0f} vs greedy "
            f"{greedy.end_time():.0f}",
        ],
    )
