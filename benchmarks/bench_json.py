"""Machine-readable pipeline benchmark: BENCH_pipeline.json.

The ``bench_fig*.py`` modules regenerate the paper's figures under
pytest-benchmark for humans; this script produces the JSON record the
repo commits and CI/tests validate: the Figure 18 iteration-scaling and
Figure 19 chare-scaling series (per-stage seconds from
:class:`~repro.core.pipeline.PipelineStats`, backend, phase counts) plus
a python-vs-columnar A/B at the largest Figure 19 size, asserting the
two backends produce bit-identical step assignments.

Standalone on purpose — no pytest import — so it runs anywhere::

    python benchmarks/bench_json.py            # full sweep (~5 min)
    python benchmarks/bench_json.py --quick    # seconds; smoke/tests

The output conforms to ``benchmarks/bench_schema.json``; the script
validates it before writing (see :func:`validate_schema`, a minimal
JSON-Schema checker covering type/properties/required/items).

With ``--enforce-budget`` the run also gates on
``benchmarks/bench_budgets.json``: the hot stages (initial +
dependency_merge — the merge kernels this repo keeps optimizing) must
stay under their checked-in fraction of the batched backend's wall
time, so a regression that quietly reintroduces per-candidate overhead
fails CI instead of surfacing as a slow chart later.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import lulesh  # noqa: E402
from repro.core.columnar import HAVE_NUMPY  # noqa: E402
from repro.core.pipeline import (  # noqa: E402
    PipelineOptions,
    PipelineStats,
    extract_logical_structure,
)

SCHEMA_PATH = Path(__file__).parent / "bench_schema.json"
BUDGETS_PATH = Path(__file__).parent / "bench_budgets.json"
DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_pipeline.json"

ITERATIONS_FULL = [8, 16, 32, 64]
ITERATIONS_QUICK = [2, 4]
CHARES_FULL = [64, 216, 512]
CHARES_QUICK = [8, 27]
#: The million-event scaling row (full mode only): 17^3 chares on 64
#: PEs pushes the same lulesh workload past 10^6 events.
MILLION_CHARES = 4913
MILLION_PES = 64

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
    "number": (int, float),
}


def validate_schema(instance, schema: dict, path: str = "$") -> None:
    """Minimal JSON-Schema validation: type / properties / required / items.

    Raises :class:`ValueError` naming the offending path.  Enough schema
    to pin the benchmark record's shape without a jsonschema dependency.
    """
    expected = schema.get("type")
    if expected is not None:
        pytype = _TYPES[expected]
        ok = isinstance(instance, pytype)
        if ok and expected in ("integer", "number") and isinstance(instance, bool):
            ok = False
        if not ok:
            raise ValueError(
                f"{path}: expected {expected}, got {type(instance).__name__}"
            )
    for name in schema.get("required", ()):
        if name not in instance:
            raise ValueError(f"{path}: missing required property {name!r}")
    for name, subschema in schema.get("properties", {}).items():
        if isinstance(instance, dict) and name in instance:
            validate_schema(instance[name], subschema, f"{path}.{name}")
    items = schema.get("items")
    if items is not None and isinstance(instance, list):
        for i, element in enumerate(instance):
            validate_schema(element, items, f"{path}[{i}]")


def _rss_mb() -> Optional[float]:
    """Current process RSS in MiB, or None where /proc is unavailable."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1 << 20)
    except Exception:
        return None


class _RssSampler:
    """Samples process RSS on a thread while a with-block runs.

    ``ru_maxrss`` is a process-lifetime high-water mark and therefore
    useless per benchmark row; this records the peak *during* the
    timed window instead.  ``peak_mb`` is None on platforms without
    /proc (the peak_rss_mb column is simply omitted there).
    """

    INTERVAL = 0.02

    def __init__(self):
        self.peak_mb: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _sample(self) -> None:
        rss = _rss_mb()
        if rss is not None and (self.peak_mb is None or rss > self.peak_mb):
            self.peak_mb = rss

    def _run(self) -> None:
        while not self._stop.wait(self.INTERVAL):
            self._sample()

    def __enter__(self) -> "_RssSampler":
        self._sample()
        if self.peak_mb is not None:  # /proc exists: worth a thread
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        self._sample()


def _timed_extract(trace, options: PipelineOptions):
    """One pipeline run; returns (structure, stats, wall_seconds, peak_mb)."""
    stats = PipelineStats()
    with _RssSampler() as sampler:
        t0 = time.perf_counter()
        structure = extract_logical_structure(trace, options=options,
                                              stats=stats)
        seconds = time.perf_counter() - t0
    return structure, stats, seconds, sampler.peak_mb


def _row(stats: PipelineStats, structure, seconds: float,
         peak_mb: Optional[float] = None) -> dict:
    row = {
        "events": len(structure.trace.events),
        "phases": len(structure.phases),
        "backend": stats.backend,
        "total_seconds": round(seconds, 6),
        "stage_seconds": {k: round(v, 6)
                          for k, v in stats.stage_seconds.items()},
    }
    if peak_mb is not None:
        row["peak_rss_mb"] = round(peak_mb, 1)
    return row


def run_benchmarks(quick: bool = False, verbose: bool = True) -> dict:
    """Run both sweeps and the backend A/B; return the JSON record."""
    opts = PipelineOptions()
    iterations = ITERATIONS_QUICK if quick else ITERATIONS_FULL
    chare_counts = CHARES_QUICK if quick else CHARES_FULL
    rounds = 1 if quick else 3

    def say(msg: str) -> None:
        if verbose:
            print(msg, file=sys.stderr)

    fig18: List[dict] = []
    for iters in iterations:
        trace = lulesh.run_charm(chares=64 if not quick else 8, pes=8,
                                 iterations=iters, seed=3)
        structure, stats, seconds, peak = _timed_extract(trace, opts)
        fig18.append({"iterations": iters,
                      **_row(stats, structure, seconds, peak)})
        say(f"fig18 {iters:3d} iters: {seconds:6.2f}s "
            f"({len(trace.events)} events)")

    fig19: List[dict] = []
    traces = {}
    for chares in chare_counts:
        traces[chares] = lulesh.run_charm(chares=chares, pes=8,
                                          iterations=8 if not quick else 2,
                                          seed=3)
        structure, stats, seconds, peak = _timed_extract(traces[chares], opts)
        fig19.append({"chares": chares,
                      **_row(stats, structure, seconds, peak)})
        say(f"fig19 {chares:4d} chares: {seconds:6.2f}s "
            f"({len(traces[chares].events)} events)")

    million_row = None
    if not quick:
        # Million-event scaling row (single run — trace generation alone
        # takes ~1 min; the A/B below stays at the largest sweep size).
        # This row exercises the streaming path end to end: the trace is
        # written to disk, the in-memory copy freed, and extraction runs
        # from a chunk-ingested columnar trace — total_seconds covers
        # ingest + extract, and peak_rss_mb is the memory the streaming
        # path actually needs (the eager path holds ~2 GB of record
        # objects for this workload).
        from repro.trace.source import open_trace
        from repro.trace.writer import write_trace

        mtrace = lulesh.run_charm(chares=MILLION_CHARES, pes=MILLION_PES,
                                  iterations=8, seed=3)
        mdir = tempfile.mkdtemp(prefix="bench-million-")
        mpath = os.path.join(mdir, "million.jsonl")
        write_trace(mtrace, mpath)
        del mtrace
        gc.collect()
        with _RssSampler() as sampler:
            t0 = time.perf_counter()
            mtrace = open_trace(mpath, ingest="chunked").trace()
            ingest_seconds = time.perf_counter() - t0
            stats = PipelineStats()
            t1 = time.perf_counter()
            structure = extract_logical_structure(mtrace, options=opts,
                                                  stats=stats)
            extract_seconds = time.perf_counter() - t1
        million_row = {
            "chares": MILLION_CHARES,
            **_row(stats, structure, ingest_seconds + extract_seconds,
                   sampler.peak_mb),
            "ingest_seconds": round(ingest_seconds, 6),
            "extract_seconds": round(extract_seconds, 6),
        }
        fig19.append(million_row)
        say(f"fig19 {MILLION_CHARES:4d} chares: "
            f"{ingest_seconds + extract_seconds:6.2f}s "
            f"(ingest {ingest_seconds:.2f}s + extract {extract_seconds:.2f}s, "
            f"{len(mtrace.events)} events, "
            f"peak {million_row.get('peak_rss_mb', 'n/a')} MiB)")
        del mtrace, structure, stats
        gc.collect()
        shutil.rmtree(mdir, ignore_errors=True)

    # A/B at the largest sweep size: best-of-N wall time per backend and
    # a bit-identity check on the assignments the backends must agree on.
    largest = chare_counts[-1]
    ab_trace = traces[largest]
    timings = {}
    structures = {}
    ab_stats = {}
    backends = (["python"]
                + (["columnar", "columnar_batched"] if HAVE_NUMPY else []))
    for backend in backends:
        backend_opts = PipelineOptions(backend=backend)
        best = None
        best_stats = None
        for _ in range(rounds):
            structure, stats, seconds, _peak = _timed_extract(ab_trace,
                                                              backend_opts)
            if best is None or seconds < best:
                best, best_stats = seconds, stats
        timings[backend] = best
        structures[backend] = structure
        ab_stats[backend] = best_stats
        say(f"A/B {backend:16s} @ {largest} chares: best of {rounds} = "
            f"{best:6.2f}s")

    if HAVE_NUMPY:
        py = structures["python"]
        identical = all(
            py.step_of_event == structures[b].step_of_event
            and py.phase_of_event == structures[b].phase_of_event
            for b in ("columnar", "columnar_batched")
        )
        speedup = timings["python"] / timings["columnar"]
        speedup_batched = timings["python"] / timings["columnar_batched"]
    else:
        identical = True  # vacuous: only one backend exists to compare
        speedup = speedup_batched = 1.0
    say(f"A/B speedup: columnar {speedup:.2f}x, "
        f"batched {speedup_batched:.2f}x, identical={identical}")

    # Hot-stage budget: the merge kernels (initial + dependency_merge)
    # against their checked-in fraction of batched wall time.
    budgets = json.loads(BUDGETS_PATH.read_text())
    hot_stages = budgets["hot_stages"]
    budget_backend = budgets["backend"] if HAVE_NUMPY else "python"
    budget_stats = ab_stats[budget_backend]
    hot_seconds = sum(budget_stats.stage_seconds.get(s, 0.0)
                      for s in hot_stages)
    budget_total = timings[budget_backend]
    hot_fraction = hot_seconds / budget_total if budget_total > 0 else 0.0
    within_budget = hot_fraction <= budgets["max_hot_fraction"]
    say(f"budget: {'+'.join(hot_stages)} = {hot_seconds:.3f}s of "
        f"{budget_total:.3f}s ({hot_fraction:.1%}, "
        f"limit {budgets['max_hot_fraction']:.0%}) -> "
        f"{'ok' if within_budget else 'EXCEEDED'}")

    # Million-row budget: the streaming ingestion path must keep the
    # 10^6-event extraction under its wall-clock AND memory ceilings
    # (the whole point of chunked ingestion; only meaningful in full
    # mode, where the row exists, and on platforms with /proc).
    million_budget = None
    if million_row is not None:
        max_s = budgets.get("million_max_extract_seconds")
        max_mb = budgets.get("million_max_peak_rss_mb")
        peak = million_row.get("peak_rss_mb")
        # The wall-clock gate covers extraction only (the quantity every
        # other fig19 row reports); ingest is reported alongside.  The
        # memory gate covers the whole sampled ingest+extract window —
        # bounding peak RSS end to end is the point of streaming.
        extract_s = million_row.get("extract_seconds",
                                    million_row["total_seconds"])
        time_ok = max_s is None or extract_s <= max_s
        mem_ok = max_mb is None or peak is None or peak <= max_mb
        million_budget = {
            "total_seconds": million_row["total_seconds"],
            "ingest_seconds": million_row.get("ingest_seconds"),
            "extract_seconds": extract_s,
            "max_extract_seconds": max_s,
            "peak_rss_mb": peak,
            "max_peak_rss_mb": max_mb,
            "within_budget": bool(time_ok and mem_ok),
        }
        say(f"million budget: extract {extract_s:.2f}s (limit {max_s}s), "
            f"peak {peak} MiB (limit {max_mb} MiB) -> "
            f"{'ok' if million_budget['within_budget'] else 'EXCEEDED'}")

    # Repair overhead: the warn-mode defect scan is the per-trace cost a
    # campaign pays for ingestion hardening on clean inputs (fix mode on
    # a clean trace runs the identical detect-only path).
    ro_timings = {}
    for repair in ("off", "warn"):
        repair_opts = PipelineOptions(repair=repair)
        best = None
        for _ in range(rounds):
            _, _, seconds, _peak = _timed_extract(ab_trace, repair_opts)
            best = seconds if best is None else min(best, seconds)
        ro_timings[repair] = best
    ro_overhead = (ro_timings["warn"] / ro_timings["off"]
                   if ro_timings["off"] > 0 else 1.0)
    say(f"repair overhead @ {largest} chares: off={ro_timings['off']:.2f}s "
        f"warn={ro_timings['warn']:.2f}s ({ro_overhead:.2f}x)")

    # Resilience overhead: what the stage-graph executor costs on the
    # fig19 workload.  "off" is the default configuration (on_error=
    # "raise", no checkpoints — zero snapshotting); "checkpoint" writes
    # atomic between-stage checkpoints to a scratch dir.  The acceptance
    # target is checkpoint-off overhead within noise (executor_fraction:
    # wall time not attributed to any stage body, i.e. the harness).
    res_timings = {}
    executor_fraction = 0.0
    for mode in ("off", "checkpoint"):
        best = None
        best_stats = None
        for _ in range(rounds):
            if mode == "checkpoint":
                scratch = tempfile.mkdtemp(prefix="bench-ckpt-")
                mode_opts = PipelineOptions(checkpoint_dir=scratch,
                                            on_error="fallback")
            else:
                scratch = None
                mode_opts = PipelineOptions()
            try:
                _, stats, seconds, _peak = _timed_extract(ab_trace, mode_opts)
            finally:
                if scratch is not None:
                    shutil.rmtree(scratch, ignore_errors=True)
            if best is None or seconds < best:
                best, best_stats = seconds, stats
        res_timings[mode] = best
        if mode == "off" and best > 0:
            staged = sum(best_stats.stage_seconds.values())
            executor_fraction = max(0.0, (best - staged) / best)
    res_overhead = (res_timings["checkpoint"] / res_timings["off"]
                    if res_timings["off"] > 0 else 1.0)
    say(f"resilience overhead @ {largest} chares: "
        f"off={res_timings['off']:.2f}s "
        f"checkpoint={res_timings['checkpoint']:.2f}s "
        f"({res_overhead:.2f}x, executor {executor_fraction:.1%})")

    record = {
        "schema_version": 1,
        "quick": quick,
        "numpy": HAVE_NUMPY,
        "fig18_iteration_scaling": fig18,
        "fig19_chare_scaling": fig19,
        "backend_ab": {
            "chares": largest,
            "events": len(ab_trace.events),
            "python_seconds": round(timings["python"], 6),
            "columnar_seconds": round(
                timings.get("columnar", timings["python"]), 6),
            "columnar_batched_seconds": round(
                timings.get("columnar_batched", timings["python"]), 6),
            "speedup": round(speedup, 4),
            "speedup_batched": round(speedup_batched, 4),
            "identical": identical,
        },
        "budget": {
            "backend": budget_backend,
            "hot_stages": list(hot_stages),
            "hot_seconds": round(hot_seconds, 6),
            "total_seconds": round(budget_total, 6),
            "hot_fraction": round(hot_fraction, 4),
            "max_hot_fraction": budgets["max_hot_fraction"],
            "within_budget": within_budget,
            **({"million": million_budget}
               if million_budget is not None else {}),
        },
        "repair_overhead": {
            "chares": largest,
            "events": len(ab_trace.events),
            "off_seconds": round(ro_timings["off"], 6),
            "warn_seconds": round(ro_timings["warn"], 6),
            "overhead": round(ro_overhead, 4),
        },
        "resilience_overhead": {
            "chares": largest,
            "events": len(ab_trace.events),
            "off_seconds": round(res_timings["off"], 6),
            "checkpoint_seconds": round(res_timings["checkpoint"], 6),
            "overhead": round(res_overhead, 4),
            "executor_fraction": round(executor_fraction, 4),
        },
    }
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the extraction pipeline; write "
                    "BENCH_pipeline.json",
    )
    parser.add_argument("--quick", action="store_true",
                        help="tiny workloads for smoke tests")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="where to write the JSON record")
    parser.add_argument("--enforce-budget", action="store_true",
                        help="fail if the hot stages exceed the checked-in "
                             "fraction of batched wall time "
                             "(benchmarks/bench_budgets.json)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    record = run_benchmarks(quick=args.quick, verbose=not args.quiet)
    schema = json.loads(SCHEMA_PATH.read_text())
    validate_schema(record, schema)
    if not record["backend_ab"]["identical"]:
        print("ERROR: backends disagree on step/phase assignments",
              file=sys.stderr)
        return 1
    if args.enforce_budget and not record["budget"]["within_budget"]:
        b = record["budget"]
        print(f"ERROR: hot stages {'+'.join(b['hot_stages'])} took "
              f"{b['hot_fraction']:.1%} of {b['backend']} wall time "
              f"(budget {b['max_hot_fraction']:.0%})", file=sys.stderr)
        return 1
    million = record["budget"].get("million")
    if args.enforce_budget and million and not million["within_budget"]:
        print(f"ERROR: million-event row extracted in "
              f"{million['extract_seconds']:.2f}s "
              f"(limit {million['max_extract_seconds']}s) with peak RSS "
              f"{million['peak_rss_mb']} MiB "
              f"(limit {million['max_peak_rss_mb']} MiB)", file=sys.stderr)
        return 1

    out = Path(args.output)
    out.write_text(json.dumps(record, indent=1) + "\n")
    if not args.quiet:
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
