"""Figure 1: logical structure vs physical time for a 9-process NAS BT trace.

The paper's opening figure contrasts the two organizations of the same
trace.  This bench regenerates both renderings and benchmarks the
extraction that produces the logical one.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import nasbt
from repro.core import extract_logical_structure
from repro.viz import render_logical, render_physical


@pytest.fixture(scope="module")
def trace():
    return nasbt.run(ranks=9, iterations=2, seed=1)


def bench_fig01_extraction(benchmark, trace):
    structure = benchmark(extract_logical_structure, trace)
    # Pipelined sweeps give far more logical steps than a flat exchange.
    assert structure.max_step + 1 >= 24
    # Logical view is a dense staircase; physical view is spread over time.
    report(
        "Figure 1: NAS BT (9 processes) logical vs physical",
        [
            f"steps={structure.max_step + 1} phases={len(structure.phases)}",
            "--- logical structure ---",
            render_logical(structure),
            "--- physical time ---",
            render_physical(trace, structure, bins=96),
        ],
    )
