"""Phase-pattern detection utilities."""

from repro.core.patterns import (
    detect_period,
    kind_sequence,
    repeating_unit,
    signature_sequence,
)


def test_detect_period_simple():
    assert detect_period(list("abab" * 3), min_repeats=3)[0] == 2


def test_detect_period_with_prologue():
    items = list("xy") + list("abc" * 4)
    period, start, repeats = detect_period(items, min_repeats=3)
    assert (period, start) == (3, 2)
    assert repeats == 4


def test_detect_period_none():
    assert detect_period(list("abcdefgh"), min_repeats=3) == (0, 0, 0)


def test_detect_period_prefers_smallest_on_tie():
    period, _, _ = detect_period(list("aaaaaaaa"), min_repeats=3)
    assert period == 1


def test_kind_sequence_alternates_for_jacobi(jacobi_structure):
    seq = kind_sequence(jacobi_structure)
    assert seq == "ar" * 3  # 3 iterations: app exchange + runtime reduction


def test_signature_sequence_matches_phases(jacobi_structure):
    sigs = signature_sequence(jacobi_structure)
    assert len(sigs) == len(jacobi_structure.phases)
    # Iterations 1 and 2 share identical application signatures.
    assert sigs[2] == sigs[4]


def test_repeating_unit_jacobi(jacobi_structure):
    unit = repeating_unit(jacobi_structure, min_repeats=2)
    assert unit
    kinds = [u["kind"] for u in unit]
    assert "application" in kinds and "runtime" in kinds
