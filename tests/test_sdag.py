"""WhenCounter (SDAG buffering) semantics."""

import pytest

from repro.sim.charm import WhenCounter


def test_fires_exactly_at_expected_count():
    w = WhenCounter(3)
    assert not w.deposit("it0")
    assert not w.deposit("it0")
    assert w.deposit("it0")


def test_keys_buffer_independently():
    """A fast neighbour's next-iteration message must not complete the
    current iteration's when clause (SDAG reference-number matching)."""
    w = WhenCounter(2)
    assert not w.deposit(0)
    assert not w.deposit(1)  # future iteration
    assert w.deposit(0)
    assert w.deposit(1)


def test_key_reusable_after_completion():
    w = WhenCounter(1)
    assert w.deposit("x")
    assert w.deposit("x")


def test_pending_counts():
    w = WhenCounter(3)
    assert w.pending("k") == 0
    w.deposit("k")
    w.deposit("k")
    assert w.pending("k") == 2
    w.deposit("k")
    assert w.pending("k") == 0


def test_messages_are_retrievable_via_deposit_payloads():
    w = WhenCounter(2)
    w.deposit("k", {"ghost": 1})
    assert w.pending("k") == 1


def test_zero_expected_rejected():
    with pytest.raises(ValueError):
        WhenCounter(0)
