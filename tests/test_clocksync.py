"""Clock-skew injection and timestamp synchronization."""

import pytest

from repro.core import extract_logical_structure
from repro.core.patterns import kind_sequence
from repro.trace import validate_trace
from repro.trace.clocksync import (
    apply_clock_skew,
    count_violations,
    estimate_pe_offsets,
    synchronize_trace,
)
from repro.trace.validate import TraceValidationError


def test_skew_preserves_structure_but_shifts_times(jacobi_trace):
    offsets = [100.0 * pe for pe in range(jacobi_trace.num_pes)]
    skewed = apply_clock_skew(jacobi_trace, offsets)
    assert len(skewed.events) == len(jacobi_trace.events)
    for orig, new in zip(jacobi_trace.events, skewed.events):
        assert new.time == pytest.approx(orig.time + offsets[orig.pe])


def test_skew_creates_violations(jacobi_trace):
    assert count_violations(jacobi_trace) == 0
    offsets = [0.0] * jacobi_trace.num_pes
    offsets[0] = 500.0  # PE 0's clock runs far ahead
    skewed = apply_clock_skew(jacobi_trace, offsets)
    assert count_violations(skewed) > 0
    with pytest.raises(TraceValidationError):
        validate_trace(skewed)


def test_offset_estimation_recovers_constant_skew(jacobi_trace):
    true_offsets = [37.0, 0.0, 12.0, 80.0, 5.0, 0.0, 61.0, 23.0]
    skewed = apply_clock_skew(jacobi_trace, [-o for o in true_offsets])
    est, _rounds = estimate_pe_offsets(skewed, min_latency=0.0)
    # Estimated corrections realign the clocks: violations disappear.
    fixed = apply_clock_skew(skewed, est)
    assert count_violations(fixed) == 0


def test_synchronize_repairs_constant_skew(jacobi_trace):
    skewed = apply_clock_skew(
        jacobi_trace, [-40.0 * pe for pe in range(jacobi_trace.num_pes)]
    )
    fixed, stats = synchronize_trace(skewed)
    assert stats.violations_before > 0
    assert stats.violations_after == 0
    assert count_violations(fixed) == 0
    validate_trace(fixed, check_pe_overlap=False)


def test_synchronize_repairs_drift(jacobi_trace):
    drifts = [0.002 * pe for pe in range(jacobi_trace.num_pes)]
    offsets = [-30.0 if pe == 2 else 0.0 for pe in range(jacobi_trace.num_pes)]
    skewed = apply_clock_skew(jacobi_trace, offsets, drifts=drifts)
    fixed, stats = synchronize_trace(skewed)
    assert stats.violations_after == 0
    # Drift is not a constant offset, so forward amortization kicked in
    # unless offsets alone happened to dominate.
    assert stats.violations_before > 0


def test_synchronized_trace_yields_same_phase_pattern(jacobi_trace):
    baseline = kind_sequence(extract_logical_structure(jacobi_trace))
    skewed = apply_clock_skew(
        jacobi_trace, [-60.0 * pe for pe in range(jacobi_trace.num_pes)]
    )
    fixed, _stats = synchronize_trace(skewed)
    assert kind_sequence(extract_logical_structure(fixed)) == baseline


def test_synchronize_noop_on_clean_trace(jacobi_trace):
    fixed, stats = synchronize_trace(jacobi_trace)
    assert stats.violations_before == 0
    assert stats.amortized_blocks == 0
    for orig, new in zip(jacobi_trace.events, fixed.events):
        assert new.time == pytest.approx(orig.time)


def test_skew_parameter_validation(jacobi_trace):
    with pytest.raises(ValueError, match="offset"):
        apply_clock_skew(jacobi_trace, [0.0])
    with pytest.raises(ValueError, match="drift"):
        apply_clock_skew(jacobi_trace, [0.0] * jacobi_trace.num_pes, drifts=[0.0])
