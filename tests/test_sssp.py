"""Asynchronous SSSP: correctness against networkx, structure shape."""

import pytest

from repro.apps import sssp
from repro.core import extract_logical_structure
from repro.trace import validate_trace


@pytest.fixture(scope="module")
def result():
    return sssp.run(nodes=60, edges=150, parts=8, pes=4, seed=3)


def test_distances_match_dijkstra(result):
    trace, distances = result
    reference = sssp.reference_distances(60, 150, seed=3)
    assert distances == pytest.approx(reference)


def test_trace_valid(result):
    trace, _ = result
    validate_trace(trace)


def test_structure_is_one_irregular_phase_plus_runtime(result):
    trace, _ = result
    structure = extract_logical_structure(trace)
    app = structure.application_phases()
    # The relaxation wave has no internal barriers: one dominant phase.
    biggest = max(app, key=len)
    relax_events = sum(
        1 for ev in range(len(trace.events))
        if trace.events[ev].execution >= 0
        and trace.entry(
            trace.executions[trace.events[ev].execution].entry
        ).name.endswith("relax")
    )
    assert len(biggest) >= 0.9 * relax_events
    # QD appears as runtime phases.
    assert any(
        any("QdManager" in n for n, _ in structure.phase_entry_signature(p.id))
        for p in structure.runtime_phases()
    )


def test_harvest_follows_quiescence(result):
    trace, _ = result
    last_relax = max(x.end for x in trace.executions
                     if trace.entry(x.entry).name.endswith("relax"))
    first_harvest = min(x.start for x in trace.executions
                        if trace.entry(x.entry).name.endswith("harvest"))
    assert first_harvest > last_relax


def test_different_seed_different_graph():
    _, d3 = sssp.run(nodes=40, edges=90, parts=4, pes=2, seed=3)
    _, d4 = sssp.run(nodes=40, edges=90, parts=4, pes=2, seed=4)
    assert d3 != d4
    assert d4 == pytest.approx(sssp.reference_distances(40, 90, seed=4))


def test_every_node_reached(result):
    _, distances = result
    assert sorted(distances) == list(range(60))
