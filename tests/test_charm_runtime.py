"""Behavioural tests of the Charm++ runtime simulator."""

import pytest

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions
from repro.sim.network import ConstantLatency
from repro.trace import validate_trace
from repro.trace.events import NO_ID, EventKind


class Echo(Chare):
    ENTRIES = {"pong": EntrySpec(is_sdag_serial=True, sdag_ordinal=0)}

    def init(self, **kw):
        self.got = []

    def ping(self, payload):
        self.compute(3.0)
        peer = self.array[((self.index[0] + 1) % len(self.array),)]
        self.send(peer, "pong", payload, size=32)

    def pong(self, payload):
        self.got.append(payload)
        self.compute(1.0)


def _run_echo(**kw):
    rt = CharmRuntime(num_pes=2, latency=ConstantLatency(), **kw)
    arr = rt.create_array("Echo", Echo, shape=(4,))
    rt.seed(arr[(0,)], "ping", "hello")
    rt.run()
    return rt, arr


def test_message_delivery_and_trace():
    rt, arr = _run_echo()
    assert arr[(1,)].got == ["hello"]
    trace = rt.finish()
    validate_trace(trace)
    assert len(trace.executions) == 2
    send = [e for e in trace.events if e.kind == EventKind.SEND]
    recv = [e for e in trace.events if e.kind == EventKind.RECV]
    assert len(send) == 1 and len(recv) == 1
    assert recv[0].time > send[0].time


def test_seed_is_untraced():
    rt, arr = _run_echo()
    trace = rt.finish()
    ping_exec = trace.executions[0]
    assert ping_exec.recv_event == NO_ID


def test_block_mapping_contiguous():
    rt = CharmRuntime(num_pes=4)
    arr = rt.create_array("Echo", Echo, shape=(8,))
    pes = [arr[(i,)].pe for i in range(8)]
    assert pes == [0, 0, 1, 1, 2, 2, 3, 3]


def test_round_robin_mapping():
    rt = CharmRuntime(num_pes=3)
    arr = rt.create_array("Echo", Echo, shape=(6,), mapping="round_robin")
    pes = [arr[(i,)].pe for i in range(6)]
    assert pes == [0, 1, 2, 0, 1, 2]


def test_unknown_mapping_rejected():
    rt = CharmRuntime(num_pes=2)
    with pytest.raises(ValueError, match="mapping"):
        rt.create_array("Echo", Echo, shape=(4,), mapping="hilbert")


def test_2d_array_indexing():
    rt = CharmRuntime(num_pes=2)
    arr = rt.create_array("Echo", Echo, shape=(2, 3))
    assert len(arr) == 6
    assert arr[(1, 2)].index == (1, 2)
    assert {c.index for c in arr} == {(i, j) for i in range(2) for j in range(3)}


def test_idle_intervals_recorded():
    rt = CharmRuntime(num_pes=2, latency=ConstantLatency())
    arr = rt.create_array("Echo", Echo, shape=(4,))
    # Chare 1 (PE 0) pings chare 2 (PE 1): PE 1 idles from t=0 until the
    # message arrives.
    rt.seed(arr[(1,)], "ping", "x")
    rt.run()
    trace = rt.finish()
    pe1_idles = [iv for iv in trace.idles if iv.pe == 1]
    assert pe1_idles and pe1_idles[0].start == 0.0
    assert pe1_idles[0].end > 3.0  # covers the sender's compute time


def test_helper_outside_entry_method_raises():
    rt = CharmRuntime(num_pes=1)
    arr = rt.create_array("Echo", Echo, shape=(1,))
    with pytest.raises(RuntimeError, match="outside an entry method"):
        arr[(0,)].compute(1.0)


def test_untraced_send_leaves_no_records():
    class Quiet(Chare):
        def go(self, _):
            self.send(self.array[(1,)], "land", None, traced=False)

        def land(self, _):
            self.compute(1.0)

    rt = CharmRuntime(num_pes=1)
    arr = rt.create_array("Quiet", Quiet, shape=(2,))
    rt.seed(arr[(0,)], "go")
    rt.run()
    trace = rt.finish()
    assert len(trace.executions) == 2  # both ran
    assert trace.events == [] and trace.messages == []


def test_chained_serial_runs_immediately_same_pe():
    class Chainer(Chare):
        ENTRIES = {"second": EntrySpec(is_sdag_serial=True, sdag_ordinal=0)}

        def first(self, _):
            self.compute(2.0)
            self.chain("second", None)

        def second(self, _):
            self.compute(1.0)

    rt = CharmRuntime(num_pes=1)
    arr = rt.create_array("Chainer", Chainer, shape=(1,))
    rt.seed(arr[(0,)], "first")
    rt.run()
    trace = rt.finish()
    first, second = trace.executions
    assert second.start == pytest.approx(first.end)
    assert second.recv_event == NO_ID


def test_queue_pops_have_scheduler_gap():
    class Sink(Chare):
        def go(self, _):
            for target in self.array:
                if target is not self:
                    self.send(target, "hit", None)
                    self.send(target, "hit", None)

        def hit(self, _):
            self.compute(1.0)

    rt = CharmRuntime(num_pes=1, sched_gap=0.25)
    arr = rt.create_array("Sink", Sink, shape=(2,))
    rt.seed(arr[(0,)], "go")
    rt.run()
    trace = rt.finish()
    hits = [x for x in trace.executions
            if trace.entry(x.entry).name.endswith("hit")]
    assert len(hits) == 2
    gap = hits[1].start - hits[0].end
    assert gap == pytest.approx(0.25)


def test_zero_sched_gap_rejected():
    with pytest.raises(ValueError, match="sched_gap"):
        CharmRuntime(num_pes=1, sched_gap=0.0)


def test_tracing_disabled_produces_empty_event_log():
    rt, arr = _run_echo(tracing=TracingOptions(enabled=False))
    trace = rt.finish()
    # Executions are still recorded (they exist), but no messaging events.
    assert trace.events == []


def test_broadcast_single_send_event_many_messages():
    class Bcaster(Chare):
        def go(self, _):
            self.array.broadcast_from(self._ctx(), "hit", None)

        def hit(self, _):
            self.compute(0.5)

    rt = CharmRuntime(num_pes=2)
    arr = rt.create_array("Bcaster", Bcaster, shape=(4,))
    rt.seed(arr[(0,)], "go")
    rt.run()
    trace = rt.finish()
    sends = [e for e in trace.events if e.kind == EventKind.SEND]
    assert len(sends) == 1
    assert len(trace.messages_by_send[sends[0].id]) == 4
    validate_trace(trace)


def test_priority_messages_jump_queue():
    """Lower priority value dequeues first, regardless of arrival order."""

    class Prio(Chare):
        ORDER = []

        def go(self, _):
            sink = self.array[(1,)]
            self.send(sink, "hit", "late-low-prio", priority=5)
            self.send(sink, "hit", "urgent", priority=-1)
            self.send(sink, "hit", "normal", priority=0)

        def hit(self, tag):
            Prio.ORDER.append(tag)
            self.compute(1.0)

    Prio.ORDER = []
    rt = CharmRuntime(num_pes=1, latency=ConstantLatency())
    arr = rt.create_array("Prio", Prio, shape=(2,))
    rt.seed(arr[(0,)], "go")
    rt.run()
    assert Prio.ORDER == ["urgent", "normal", "late-low-prio"]
    trace = rt.finish()
    validate_trace(trace)
