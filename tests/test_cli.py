"""CLI smoke tests (in-process via repro.cli.main)."""

import json

import pytest

from repro.cli import main
from repro.trace import read_trace, write_trace
from repro.trace.clocksync import apply_clock_skew


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "t.jsonl"
    rc = main(["simulate", "jacobi2d", "--chares", "4x4", "--pes", "4",
               "--iterations", "2", "--seed", "1", "-o", str(path)])
    assert rc == 0
    return path


def test_simulate_writes_loadable_trace(trace_file):
    trace = read_trace(trace_file)
    assert trace.num_pes == 4
    assert len(trace.events) > 0


def test_simulate_each_app(tmp_path):
    for app, extra in [
        ("lulesh", ["--chares", "8", "--pes", "2"]),
        ("lulesh", ["--model", "mpi", "--ranks", "8"]),
        ("lassen", ["--chares", "8"]),
        ("pdes", ["--chares", "8", "--pes", "2"]),
        ("mergetree", ["--ranks", "16"]),
        ("nasbt", ["--ranks", "4"]),
    ]:
        out = tmp_path / f"{app}_{len(extra)}.jsonl"
        rc = main(["simulate", app, "--iterations", "2", "-o", str(out)] + extra)
        assert rc == 0
        assert read_trace(out).events


def test_validate_ok(trace_file, capsys):
    assert main(["validate", str(trace_file)]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_catches_skew(trace_file, tmp_path, capsys):
    trace = read_trace(trace_file)
    skewed = apply_clock_skew(trace, [300.0, 0.0, 0.0, 0.0])
    bad = tmp_path / "bad.jsonl"
    write_trace(skewed, bad)
    assert main(["validate", str(bad)]) == 1


def test_analyze_summary_and_render(trace_file, capsys):
    assert main(["analyze", str(trace_file), "--render", "logical"]) == 0
    out = capsys.readouterr().out
    assert "phase kinds: arar" in out
    assert "Jacobi[0, 0]" in out


def test_analyze_json(trace_file, capsys):
    assert main(["analyze", str(trace_file), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["phases"] == 4


def test_analyze_metric_and_exports(trace_file, tmp_path, capsys):
    svg = tmp_path / "s.svg"
    csv = tmp_path / "e.csv"
    rc = main(["analyze", str(trace_file), "--metric", "diffdur",
               "--svg", str(svg), "--csv", str(csv)])
    assert rc == 0
    assert svg.read_text().startswith("<svg")
    header = csv.read_text().splitlines()[0]
    assert "diffdur" in header


def test_analyze_no_infer_flag(trace_file, capsys):
    assert main(["analyze", str(trace_file), "--no-infer"]) == 0


def test_sync_roundtrip(trace_file, tmp_path, capsys):
    trace = read_trace(trace_file)
    skewed = apply_clock_skew(trace, [0.0, 200.0, 0.0, 100.0])
    bad = tmp_path / "bad.jsonl"
    write_trace(skewed, bad)
    fixed = tmp_path / "fixed.jsonl"
    assert main(["sync", str(bad), "-o", str(fixed)]) == 0
    assert main(["validate", str(fixed)]) == 0


def test_cli_profile(trace_file, capsys):
    assert main(["profile", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "entry method" in out and "util%" in out


def test_cli_cluster(trace_file, capsys):
    assert main(["cluster", str(trace_file), "-k", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("cluster ") == 2


def test_cli_html_export(trace_file, tmp_path):
    html = tmp_path / "out.html"
    rc = main(["analyze", str(trace_file), "--metric", "imbalance",
               "--html", str(html)])
    assert rc == 0
    text = html.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "<svg" in text and "Performance report" in text
