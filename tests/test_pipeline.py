"""End-to-end pipeline invariants on real app traces."""

import pytest

from repro.core import PipelineOptions, extract_logical_structure
from repro.core.pipeline import PipelineStats


def _check_invariants(trace, structure):
    # Every event is in exactly one phase and has exactly one step.
    counted = 0
    for phase in structure.phases:
        for ev in phase.events:
            assert structure.phase_of_event[ev] == phase.id
            assert structure.step_of_event[ev] >= 0
            counted += 1
    assert counted == sum(len(p) for p in structure.phases)

    # No two events of one chare share a global step.
    seen = {}
    for ev, step in enumerate(structure.step_of_event):
        if step < 0:
            continue
        key = (trace.events[ev].chare, step)
        assert key not in seen, f"chare-step collision: {key}"
        seen[key] = ev

    # Receives land strictly after their matching sends.
    for msg in trace.messages:
        if not msg.is_complete():
            continue
        s = structure.step_of_event[msg.send_event]
        r = structure.step_of_event[msg.recv_event]
        if s >= 0 and r >= 0:
            assert r >= s + 1

    # The phase DAG is consistent: preds/succs mirror each other and
    # offsets respect the DAG.
    for phase in structure.phases:
        for q in phase.preds:
            assert phase.id in structure.phases[q].succs
            pred = structure.phases[q]
            if pred.max_local_step >= 0:
                assert phase.offset > pred.max_global_step


@pytest.mark.parametrize("order", ["reordered", "physical"])
def test_invariants_jacobi(jacobi_trace, order):
    _check_invariants(jacobi_trace, extract_logical_structure(jacobi_trace, order=order))


@pytest.mark.parametrize("order", ["reordered", "physical"])
def test_invariants_lulesh_charm(lulesh_charm_trace, order):
    _check_invariants(
        lulesh_charm_trace, extract_logical_structure(lulesh_charm_trace, order=order)
    )


@pytest.mark.parametrize("order", ["reordered", "physical"])
def test_invariants_lulesh_mpi(lulesh_mpi_trace, order):
    _check_invariants(
        lulesh_mpi_trace, extract_logical_structure(lulesh_mpi_trace, order=order)
    )


def test_invariants_lassen_both_models(lassen_charm_trace, lassen_mpi_trace):
    _check_invariants(lassen_charm_trace, extract_logical_structure(lassen_charm_trace))
    _check_invariants(lassen_mpi_trace, extract_logical_structure(lassen_mpi_trace))


def test_invariants_pdes(pdes_trace):
    _check_invariants(pdes_trace, extract_logical_structure(pdes_trace))


def test_invariants_mergetree(mergetree_trace):
    for order in ("reordered", "physical"):
        _check_invariants(
            mergetree_trace, extract_logical_structure(mergetree_trace, order=order)
        )


def test_invariants_nasbt(nasbt_trace):
    _check_invariants(nasbt_trace, extract_logical_structure(nasbt_trace))


def test_mode_auto_detects_mpi(lulesh_mpi_trace):
    opts = PipelineOptions(mode="auto")
    assert opts.resolve_mode(lulesh_mpi_trace) == "mpi"


def test_mode_auto_defaults_charm(jacobi_trace):
    assert PipelineOptions().resolve_mode(jacobi_trace) == "charm"


def test_explicit_mode_respected(jacobi_trace):
    assert PipelineOptions(mode="mpi").resolve_mode(jacobi_trace) == "mpi"


def test_bad_order_rejected(jacobi_trace):
    with pytest.raises(ValueError, match="order"):
        extract_logical_structure(jacobi_trace, order="alphabetical")


def test_options_plus_kwargs_rejected(jacobi_trace):
    # Promoted from DeprecationWarning to a hard error: either pass an
    # options object or keywords, never both.
    with pytest.raises(TypeError, match="with_overrides"):
        extract_logical_structure(
            jacobi_trace, options=PipelineOptions(), order="physical"
        )


def test_unknown_kwarg_rejected(jacobi_trace):
    with pytest.raises(TypeError, match="no_such_option"):
        extract_logical_structure(jacobi_trace, no_such_option=True)


def test_stats_collected(jacobi_trace):
    stats = PipelineStats()
    extract_logical_structure(jacobi_trace, stats=stats)
    assert stats.initial_partitions > 0
    assert stats.final_phases > 0
    assert stats.total_seconds > 0
    assert "dependency_merge" in stats.stage_seconds


def test_leap_property_one_after_pipeline(jacobi_trace):
    """DAG property (1): no two phases at one leap share a chare."""
    structure = extract_logical_structure(jacobi_trace)
    seen = set()
    for phase in structure.phases:
        for c in phase.chares:
            key = (phase.leap, c)
            assert key not in seen
            seen.add(key)


def test_phases_sorted_and_dense(jacobi_trace):
    structure = extract_logical_structure(jacobi_trace)
    assert [p.id for p in structure.phases] == list(range(len(structure.phases)))
    leaps = [p.leap for p in structure.phases]
    assert leaps == sorted(leaps)


def test_chare_orders_cover_phase_events(jacobi_trace):
    structure = extract_logical_structure(jacobi_trace)
    for phase in structure.phases:
        ordered = []
        for chare in phase.chares:
            ordered.extend(structure.chare_orders[(phase.id, chare)])
        assert sorted(ordered) == sorted(phase.events)


def test_structure_accessors(jacobi_structure):
    s = jacobi_structure
    assert s.max_step >= 0
    assert len(s.events_at_step(0)) > 0
    summary = s.summary()
    assert summary["phases"] == len(s.phases)
    tl = s.chare_timeline(0)
    steps = [st for st, _ in tl]
    assert steps == sorted(steps)
    assert repr(s).startswith("LogicalStructure(")
