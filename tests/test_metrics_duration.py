"""Sub-block division (Figure 13) and differential duration."""

import pytest

from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import differential_duration, sub_block_durations
from repro.sim.noise import ChareSlowdown
from tests.helpers import SyntheticTrace


def _fig13_structure(with_recv: bool):
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    if with_recv:
        b = st.chare("B", pe=0)
        st.block(b, "starter", 0, 0.0, 1.0, [("send", "in", 0.5)])
        # Block [10, 20]: recv at 10, sends at 13 and 16, leftover 4 -> recv.
        st.block(a, "work", 0, 10.0, 20.0, [
            ("recv", "in", 10.0), ("send", "s1", 13.0), ("send", "s2", 16.0)])
    else:
        # No recorded start event: leftover goes to the last event.
        st.block(a, "work", 0, 10.0, 20.0, [
            ("send", "s1", 13.0), ("send", "s2", 16.0)])
    trace = st.build()
    return extract_logical_structure(trace)


def test_fig13_sub_blocks_with_recorded_start():
    structure = _fig13_structure(with_recv=True)
    durations = sub_block_durations(structure)
    trace = structure.trace
    by_time = {trace.events[e].time: d for e, d in durations.items()
               if trace.events[e].chare == 1 or trace.events[e].time >= 10.0}
    # recv at 10: [10,10] plus leftover [16,20] = 4.
    assert by_time[10.0] == pytest.approx(4.0)
    assert by_time[13.0] == pytest.approx(3.0)
    assert by_time[16.0] == pytest.approx(3.0)


def test_fig13_leftover_to_last_event_without_start():
    structure = _fig13_structure(with_recv=False)
    durations = sub_block_durations(structure)
    trace = structure.trace
    by_time = {trace.events[e].time: d for e, d in durations.items()}
    assert by_time[13.0] == pytest.approx(3.0)   # block start 10 -> 13
    assert by_time[16.0] == pytest.approx(3.0 + 4.0)  # own span + leftover


def test_durations_total_equals_block_span():
    structure = _fig13_structure(with_recv=True)
    durations = sub_block_durations(structure)
    trace = structure.trace
    work_block = next(b for b in structure.blocks
                      if len(b.events) == 3)
    total = sum(durations[e] for e in work_block.events)
    assert total == pytest.approx(work_block.end - work_block.start)


def test_differential_duration_zero_for_uniform_peers(jacobi_structure):
    """Without injected noise, same-step updates cost the same; the
    minimum at each step is zero by construction."""
    result = differential_duration(jacobi_structure)
    assert result.by_event
    assert min(result.by_event.values()) == pytest.approx(0.0)
    # Every (phase, step) group contains at least one zero.
    zeros = {k for k in result.group_min}
    for key in zeros:
        group_events = [e for e in result.by_event
                        if (jacobi_structure.phase_of_event[e],
                            jacobi_structure.step_of_event[e]) == key]
        assert any(result.by_event[e] == pytest.approx(0.0) for e in group_events)


def test_differential_duration_detects_slow_chare():
    """Figure 15: one straggler chare shows high differential duration at
    its update events every iteration."""
    slow = 6  # a chare trace-id inside the array (main chare is created last)
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7,
                         noise=ChareSlowdown([slow], factor=4.0))
    structure = extract_logical_structure(trace)
    result = differential_duration(structure)
    worst = result.max_event()
    assert trace.events[worst].chare == slow
    # The straggler dominates: its excess is the compute-cost difference.
    assert result.by_event[worst] > 100.0


def test_differential_duration_nonnegative(jacobi_structure):
    result = differential_duration(jacobi_structure)
    assert all(v >= 0 for v in result.by_event.values())
