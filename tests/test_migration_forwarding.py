"""Message forwarding across migration, exercised directly."""


from repro.sim.charm import Chare, CharmRuntime
from repro.sim.network import ConstantLatency
from repro.trace import validate_trace


class Mover(Chare):
    """Receives a stream of messages while being migrated mid-stream."""

    GOT = []

    def hit(self, tag):
        Mover.GOT.append((tag, self.pe))
        self.compute(5.0)


class Feeder(Chare):
    def init(self, target=None, **_):
        self.target = target

    def feed(self, count):
        for i in range(count):
            self.send(self.target, "hit", i, size=8.0)


def test_queued_messages_follow_migrated_chare():
    Mover.GOT = []
    rt = CharmRuntime(num_pes=2, latency=ConstantLatency(base=0.5, local=0.2))
    movers = rt.create_array("Mover", Mover, shape=(1,))
    mover = movers[(0,)]
    feeder = rt.create_chare("Feeder", Feeder, pe=1, target=mover).chare
    rt.seed(feeder, "feed", 6)
    # Migrate the mover while messages are queued/processing on PE 0.
    rt.sim.schedule(8.0, lambda: rt._migrate(mover, 1))
    rt.run()
    trace = rt.finish()
    validate_trace(trace)
    # Every message was processed exactly once, in order, and the later
    # ones executed on the new PE.
    assert [tag for tag, _pe in Mover.GOT] == list(range(6))
    pes = [pe for _tag, pe in Mover.GOT]
    assert pes[0] == 0 and pes[-1] == 1


def test_forwarding_keeps_counters_balanced():
    Mover.GOT = []
    rt = CharmRuntime(num_pes=2, latency=ConstantLatency(base=0.5, local=0.2))
    movers = rt.create_array("Mover", Mover, shape=(1,))
    mover = movers[(0,)]
    feeder = rt.create_chare("Feeder", Feeder, pe=1, target=mover).chare
    rt.seed(feeder, "feed", 4)
    rt.sim.schedule(8.0, lambda: rt._migrate(mover, 1))
    rt.run()
    # Forwarded envelopes must not be double-counted for quiescence.
    assert sum(rt.messages_created) == sum(rt.messages_processed)
