"""Chare migration and measurement-based load balancing."""

import pytest

from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import imbalance
from repro.sim.charm import (
    Chare,
    CharmRuntime,
    GreedyBalancer,
    NullBalancer,
)
from repro.sim.noise import ChareSlowdown
from repro.trace import validate_trace


def _hot_corner_run(lb_period, balancer=None, iterations=6):
    """Block mapping puts the four heavy chares (the first grid row) on
    PE 0 — the worst case a balancer should fix."""
    return jacobi2d.run(
        chares=(4, 4), pes=4, iterations=iterations, seed=7,
        noise=ChareSlowdown([0, 1, 2, 3], factor=4.0),
        lb_period=lb_period, balancer=balancer,
    )


def test_greedy_balancer_remap_spreads_load():
    strategy = GreedyBalancer()
    loads = {0: 100.0, 1: 90.0, 2: 10.0, 3: 5.0}
    mapping = strategy.remap(loads, {c: 0 for c in loads}, num_pes=2)
    assert mapping[0] != mapping[1]  # the two heavy chares split


def test_null_balancer_keeps_mapping():
    strategy = NullBalancer()
    current = {0: 1, 1: 0}
    assert strategy.remap({0: 5.0, 1: 1.0}, current, 2) == current


def test_migration_recorded_and_trace_valid():
    trace = _hot_corner_run(lb_period=2)
    validate_trace(trace)
    steps = trace.metadata.get("lb_steps")
    assert steps and steps[0]["migrations"] > 0
    # The load balancer appears as a runtime chare.
    assert any(c.name == "CkLoadBalancer" for c in trace.chares)


def test_load_balancing_reduces_imbalance():
    trace = _hot_corner_run(lb_period=2)
    structure = extract_logical_structure(trace)
    imb = imbalance(structure)
    app = sorted(
        (p for p in structure.application_phases() if len(p) > 8),
        key=lambda p: p.offset,
    )
    before = imb.max_by_phase[app[0].id]
    after = imb.max_by_phase[app[-1].id]
    assert after < before / 2


def test_null_balancer_leaves_imbalance():
    trace = _hot_corner_run(lb_period=2, balancer=NullBalancer())
    structure = extract_logical_structure(trace)
    imb = imbalance(structure)
    app = sorted(
        (p for p in structure.application_phases() if len(p) > 8),
        key=lambda p: p.offset,
    )
    before = imb.max_by_phase[app[0].id]
    after = imb.max_by_phase[app[-1].id]
    assert after > before / 2
    assert trace.metadata["lb_steps"][0]["migrations"] == 0


def test_lb_speeds_up_imbalanced_run():
    balanced = _hot_corner_run(lb_period=2)
    unbalanced = _hot_corner_run(lb_period=0)
    assert balanced.end_time() < unbalanced.end_time()


def test_migrated_chares_execute_on_new_pes():
    trace = _hot_corner_run(lb_period=2)
    moved = 0
    for chare in trace.chares:
        if chare.is_runtime:
            continue
        pes = {trace.executions[x].pe for x in trace.executions_by_chare[chare.id]}
        if len(pes) > 1:
            moved += 1
    assert moved > 0


def test_reductions_follow_migrated_chares():
    """elements_per_pe must track migration or reductions would hang."""
    trace = _hot_corner_run(lb_period=2, iterations=8)
    # The run completed all 8 iterations: 8 reduction broadcasts reached
    # every chare (resume executions).
    resumes = [x for x in trace.executions
               if trace.entry(x.entry).name.endswith("resume")]
    assert len(resumes) == 16 * 8


def test_at_sync_requires_array():
    class Lone(Chare):
        def go(self, _):
            self.at_sync()

    rt = CharmRuntime(num_pes=1)
    lone = rt.create_chare("Lone", Lone)
    rt.seed(lone.chare, "go")
    with pytest.raises(RuntimeError, match="array"):
        rt.run()


def test_structure_analysis_handles_migrated_trace():
    trace = _hot_corner_run(lb_period=2)
    structure = extract_logical_structure(trace)
    # Per-chare step uniqueness survives migration (chare timelines are
    # what matters, not PE timelines).
    seen = set()
    for ev, step in enumerate(structure.step_of_event):
        if step < 0:
            continue
        key = (trace.events[ev].chare, step)
        assert key not in seen
        seen.add(key)


def test_refine_balancer_moves_fewer_chares():
    from repro.sim.charm import RefineBalancer

    greedy_trace = _hot_corner_run(lb_period=2)
    refine_trace = _hot_corner_run(lb_period=2, balancer=RefineBalancer())
    greedy_moves = sum(s["migrations"] for s in greedy_trace.metadata["lb_steps"])
    refine_moves = sum(s["migrations"] for s in refine_trace.metadata["lb_steps"])
    assert 0 < refine_moves < greedy_moves


def test_refine_balancer_still_reduces_imbalance():
    from repro.sim.charm import RefineBalancer

    trace = _hot_corner_run(lb_period=2, balancer=RefineBalancer())
    structure = extract_logical_structure(trace)
    imb = imbalance(structure)
    app = sorted(
        (p for p in structure.application_phases() if len(p) > 8),
        key=lambda p: p.offset,
    )
    before = imb.max_by_phase[app[0].id]
    after = imb.max_by_phase[app[-1].id]
    assert after < before / 2


def test_refine_balancer_validates_tolerance():
    from repro.sim.charm import RefineBalancer

    with pytest.raises(ValueError):
        RefineBalancer(tolerance=0.5)


def test_refine_remap_respects_threshold():
    from repro.sim.charm import RefineBalancer

    strategy = RefineBalancer(tolerance=1.1)
    loads = {0: 50.0, 1: 40.0, 2: 5.0, 3: 5.0}
    current = {0: 0, 1: 0, 2: 0, 3: 1}
    mapping = strategy.remap(loads, current, num_pes=2)
    pe_load = [0.0, 0.0]
    for chare, pe in mapping.items():
        pe_load[pe] += loads[chare]
    assert max(pe_load) <= 1.1 * (sum(loads.values()) / 2) + 1e-9
