"""Critical-path extraction."""

import pytest

from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import critical_path, sub_block_durations
from repro.metrics.critical_path import CriticalPath
from repro.sim.noise import ChareSlowdown
from repro.trace.events import NO_ID, EventKind
from tests.helpers import SyntheticTrace


def test_path_on_linear_chain():
    st = SyntheticTrace(num_pes=1)
    a, b = st.chare("A"), st.chare("B")
    st.block(a, "w", 0, 0.0, 10.0, [("send", "m", 10.0)])
    st.block(b, "r", 0, 12.0, 20.0, [("recv", "m", 12.0), ("send", "n", 20.0)])
    st.block(a, "r2", 0, 22.0, 30.0, [("recv", "n", 22.0)])
    trace = st.build()
    structure = extract_logical_structure(trace)
    path = critical_path(structure)
    # The whole chain is the path; its length is the sum of all sub-blocks.
    durations = sub_block_durations(structure)
    assert path.length == pytest.approx(sum(durations.values()))
    assert len(path.events) == len(trace.events)


def test_path_picks_heavier_branch():
    st = SyntheticTrace(num_pes=2)
    src = st.chare("S", pe=0)
    fast = st.chare("F", pe=1)
    slow = st.chare("L", pe=1)
    st.block(src, "w", 0, 0.0, 1.0, [("send", "f", 0.5), ("send", "l", 1.0)])
    st.block(fast, "rf", 1, 2.0, 3.0, [("recv", "f", 2.0)])
    st.block(slow, "rl", 1, 3.0, 50.0, [("recv", "l", 3.0)])
    trace = st.build()
    structure = extract_logical_structure(trace)
    path = critical_path(structure)
    assert trace.events[path.events[-1]].chare == slow


def test_path_is_dependency_connected(jacobi_structure):
    path = critical_path(jacobi_structure)
    trace = jacobi_structure.trace
    assert path.events
    for a, b in zip(path.events, path.events[1:]):
        # Consecutive path events: serialized on one chare, or a message.
        same_chare = trace.events[a].chare == trace.events[b].chare
        msg_edge = False
        if trace.events[b].kind == EventKind.RECV:
            mid = trace.message_by_recv[b]
            if mid != NO_ID and trace.messages[mid].send_event == a:
                msg_edge = True
        assert same_chare or msg_edge
        assert trace.events[a].time <= trace.events[b].time


def test_attribution_sums_to_length(jacobi_structure):
    path = critical_path(jacobi_structure)
    assert sum(path.by_chare.values()) == pytest.approx(path.length)
    assert sum(path.by_entry.values()) == pytest.approx(path.length)


def test_straggler_dominates_path():
    slow = 6
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7,
                         noise=ChareSlowdown([slow], factor=6.0))
    structure = extract_logical_structure(trace)
    path = critical_path(structure)
    assert max(path.by_chare, key=lambda c: path.by_chare[c]) == slow


def test_empty_structure():
    st = SyntheticTrace(num_pes=1)
    st.chare("A")
    structure = extract_logical_structure(st.build())
    path = critical_path(structure)
    assert path.events == [] and path.length == 0.0
    assert CriticalPath().share_of(0.0) == 0.0
