"""Local step assignment and global phase offsets (Section 3.2)."""

import pytest

from repro.core.stepping import assign_global_offsets, assign_local_steps
from tests.helpers import SyntheticTrace


def _phase_trace():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    b = st.chare("B")
    st.block(a, "w", 0, 0.0, 2.0, [("send", "m1", 0.5), ("send", "m2", 1.0)])
    st.block(b, "r", 0, 3.0, 5.0, [("recv", "m1", 3.0), ("recv", "m2", 4.0),
                                   ("send", "m3", 4.5)])
    st.block(a, "r2", 0, 6.0, 7.0, [("recv", "m3", 6.0)])
    return st.build(), a, b


def test_initial_sources_at_step_zero():
    trace, a, b = _phase_trace()
    events = list(range(len(trace.events)))
    orders = {a: [0, 1, 5], b: [2, 3, 4]}
    steps, max_s = assign_local_steps(trace, events, orders)
    assert steps[0] == 0  # first send


def test_receive_at_least_one_after_send():
    trace, a, b = _phase_trace()
    events = list(range(len(trace.events)))
    orders = {a: [0, 1, 5], b: [2, 3, 4]}
    steps, _ = assign_local_steps(trace, events, orders)
    # m1: send ev0 -> recv ev2; m2: ev1 -> ev3; m3: ev4 -> ev5.
    assert steps[2] >= steps[0] + 1
    assert steps[3] >= steps[1] + 1
    assert steps[5] >= steps[4] + 1


def test_per_chare_steps_strictly_increase():
    trace, a, b = _phase_trace()
    events = list(range(len(trace.events)))
    orders = {a: [0, 1, 5], b: [2, 3, 4]}
    steps, _ = assign_local_steps(trace, events, orders)
    for order in orders.values():
        vals = [steps[e] for e in order]
        assert vals == sorted(vals)
        assert len(set(vals)) == len(vals)


def test_partial_phase_ignores_external_messages():
    trace, a, b = _phase_trace()
    # Only B's events in the phase: its receives' sends are external, so
    # the first receive is an initial event at step 0.
    events = [2, 3, 4]
    steps, max_s = assign_local_steps(trace, events, {b: [2, 3, 4]})
    assert steps[2] == 0
    assert max_s == 2


def test_cycle_fallback_assigns_everything():
    """A pathological chare order (receive placed before its send's
    predecessor) must still terminate with all events stepped."""
    trace, a, b = _phase_trace()
    events = list(range(len(trace.events)))
    # Put ev5 (recv of m3) before ev0/ev1 on A: creates a cycle with B.
    orders = {a: [5, 0, 1], b: [2, 3, 4]}
    steps, _ = assign_local_steps(trace, events, orders)
    assert len(steps) == 6


def test_global_offsets_chain():
    offsets = assign_global_offsets(
        [0, 1, 2],
        {0: set(), 1: {0}, 2: {1}},
        {0: 3, 1: 1, 2: 2},
    )
    assert offsets == {0: 0, 1: 4, 2: 6}


def test_global_offsets_max_over_preds():
    offsets = assign_global_offsets(
        [0, 1, 2],
        {0: set(), 1: set(), 2: {0, 1}},
        {0: 5, 1: 1, 2: 0},
    )
    assert offsets[2] == 6  # bound by the longer predecessor


def test_global_offsets_empty_phase_consumes_nothing():
    offsets = assign_global_offsets(
        [0, 1],
        {0: set(), 1: {0}},
        {0: -1, 1: 2},
    )
    assert offsets == {0: 0, 1: 0}


def test_global_offsets_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        assign_global_offsets([0, 1], {0: {1}, 1: {0}}, {0: 0, 1: 0})
