"""Medium-scale smoke tests: the invariants hold beyond toy sizes."""

import pytest

from repro.apps import lulesh, mergetree
from repro.core import extract_logical_structure
from repro.core.pipeline import PipelineStats


@pytest.fixture(scope="module")
def big_mergetree():
    trace = mergetree.run(ranks=1024, seed=2, imbalance=5.0)
    return trace, extract_logical_structure(trace)


def test_mergetree_1024_invariants(big_mergetree):
    trace, structure = big_mergetree
    assert sum(len(p) for p in structure.phases) == len(trace.events)
    seen = set()
    for ev, step in enumerate(structure.step_of_event):
        key = (trace.events[ev].chare, step)
        assert key not in seen
        seen.add(key)
    for msg in trace.messages:
        if msg.is_complete():
            assert (structure.step_of_event[msg.recv_event]
                    > structure.step_of_event[msg.send_event])


def test_mergetree_1024_ladder(big_mergetree):
    _trace, structure = big_mergetree
    at0 = sum(1 for s in structure.step_of_event if s == 0)
    assert at0 == 512  # all leaf sends at step 0


def test_lulesh_512_chares_extracts_consistently():
    trace = lulesh.run_charm(chares=512, pes=8, iterations=2, seed=3)
    stats = PipelineStats()
    structure = extract_logical_structure(trace, stats=stats)
    # Setup (2) + 2 iterations x (2 exchange + 1 reduction), allowing the
    # occasional split the paper also observes.
    assert 8 <= len(structure.phases) <= 14
    assert stats.initial_partitions > 5000
    seen = set()
    for ev, step in enumerate(structure.step_of_event):
        key = (trace.events[ev].chare, step)
        assert key not in seen
        seen.add(key)
