"""Edge cases and option combinations not covered elsewhere."""

import pytest

from repro.core import PipelineOptions, extract_logical_structure
from repro.core.patterns import detect_period, kind_sequence
from repro.trace.model import TraceBuilder
from tests.helpers import SyntheticTrace


# -- degenerate traces --------------------------------------------------------
def test_empty_trace_pipeline():
    trace = TraceBuilder(num_pes=1).build()
    structure = extract_logical_structure(trace)
    assert structure.phases == []
    assert structure.max_step == -1
    assert structure.summary()["events"] == 0


def test_trace_with_executions_but_no_events():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "compute_only", 0, 0.0, 5.0)
    structure = extract_logical_structure(st.build())
    # Pure-compute blocks carry no dependency events: nothing to place.
    assert structure.phases == []


def test_single_event_trace():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "w", 0, 0.0, 1.0, [("send", "out", 0.5)])
    structure = extract_logical_structure(st.build())
    assert len(structure.phases) == 1
    assert structure.max_step == 0


def test_all_runtime_trace():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("Mgr0", is_runtime=True)
    b = st.chare("Mgr1", is_runtime=True)
    st.block(a, "w", 0, 0.0, 1.0, [("send", "m", 0.5)])
    st.block(b, "r", 0, 2.0, 3.0, [("recv", "m", 2.0)])
    structure = extract_logical_structure(st.build())
    assert structure.application_phases() == []
    assert len(structure.runtime_phases()) == 1


# -- pipeline options ---------------------------------------------------------
def test_tie_break_index_changes_order():
    """With reversed chare-id vs index order, the two tie-breaks disagree."""
    st = SyntheticTrace(num_pes=1)
    arr = st.array("A", (2,))
    # Chare ids run opposite to array indices.
    hi = st.chare("A[1]", array_id=arr, index=(1,))   # id 0, index 1
    lo = st.chare("A[0]", array_id=arr, index=(0,))   # id 1, index 0
    sink = st.chare("S", array_id=arr, index=(2,))    # id 2
    st.block(hi, "s", 0, 0.0, 1.0, [("send", "from_hi", 0.5)])
    st.block(lo, "s", 0, 0.0, 1.0, [("send", "from_lo", 0.5)])
    st.block(sink, "r1", 0, 2.0, 3.0, [("recv", "from_lo", 2.0)])
    st.block(sink, "r2", 0, 4.0, 5.0, [("recv", "from_hi", 4.0)])
    trace = st.build()
    by_id = extract_logical_structure(trace, tie_break="chare_id")
    by_index = extract_logical_structure(trace, tie_break="index")

    def sink_order(structure):
        return [ev for step, ev in structure.chare_timeline(sink)]

    assert sink_order(by_id) != sink_order(by_index)


def test_bad_tie_break_rejected(jacobi_trace):
    with pytest.raises(ValueError, match="tie_break"):
        extract_logical_structure(jacobi_trace, tie_break="coin_flip")


def test_enforce_properties_forced_on_mpi(lulesh_mpi_trace):
    forced = extract_logical_structure(
        lulesh_mpi_trace,
        options=PipelineOptions(order="physical", enforce_properties=True),
    )
    # Still a valid assignment with per-chare uniqueness.
    seen = set()
    for ev, step in enumerate(forced.step_of_event):
        if step < 0:
            continue
        key = (lulesh_mpi_trace.events[ev].chare, step)
        assert key not in seen
        seen.add(key)


def test_mpi_mode_forced_on_charm_trace(jacobi_trace):
    """Treating a chare trace as message-passing still terminates and
    yields a consistent (if less structured) assignment."""
    structure = extract_logical_structure(
        jacobi_trace, options=PipelineOptions(mode="mpi", order="physical")
    )
    assert sum(len(p) for p in structure.phases) == len(jacobi_trace.events)


# -- patterns edge cases ------------------------------------------------------
def test_detect_period_short_sequences():
    assert detect_period([], min_repeats=2) == (0, 0, 0)
    assert detect_period([1], min_repeats=2) == (0, 0, 0)
    assert detect_period([1, 1], min_repeats=2)[0] == 1


def test_kind_sequence_empty():
    trace = TraceBuilder(num_pes=1).build()
    assert kind_sequence(extract_logical_structure(trace)) == ""


# -- CLI error paths ----------------------------------------------------------
def test_cli_unknown_metric(tmp_path, jacobi_trace):
    from repro.cli import main
    from repro.trace import write_trace

    path = tmp_path / "t.jsonl"
    write_trace(jacobi_trace, path)
    with pytest.raises(SystemExit):
        main(["analyze", str(path), "--metric", "bogus"])


def test_cli_unknown_app():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["simulate", "doom"])
