"""Streaming chunked ingestion is a pure implementation detail.

``read_trace_chunked`` must produce a trace bit-identical (as a
:class:`~repro.trace.model.Trace`) to the eager ``read_trace`` on the
same file — same records, same extraction results — at every chunk
size, for every bundled app, for MPI traces, and for the fault corpus
under ingestion repair.  These are the differential twins the streaming
operators (:mod:`repro.core.streaming`) and the turbo chunk parser
promise; this file holds them to it, and pins the redesigned
:func:`repro.api.open_trace` front door, the structured
:class:`TraceFormatError` fields, the bounded-memory property of the
reader, and pickling of the lazy columnar containers.
"""

from __future__ import annotations

import io
import pickle

import pytest

from repro.api import PipelineOptions, extract
from repro.apps import (
    btsweep,
    jacobi2d,
    lassen,
    lulesh,
    mergetree,
    multigrid,
    nasbt,
    pdes,
    sssp,
)
from repro.batch import trace_digest
from repro.trace.columns import ColumnarTrace
from repro.trace.faults import FAULT_KINDS, inject_fault
from repro.trace.model import Trace
from repro.trace.reader import (
    DEFAULT_CHUNK_BYTES,
    HAVE_NUMPY,
    ReaderStats,
    TraceFormatError,
    read_trace,
    read_trace_chunked,
)
from repro.trace.source import (
    FileTraceSource,
    MemoryTraceSource,
    StreamTraceSource,
    open_trace,
    resolve_ingest,
)
from repro.trace.validate import validate_trace
from repro.trace.writer import write_trace

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")

APPS = {
    "jacobi2d": lambda: jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=7),
    "lulesh": lambda: lulesh.run_charm(chares=8, pes=4, iterations=2, seed=3),
    "lassen": lambda: lassen.run_charm(chares=8, pes=4, iterations=3, seed=1),
    "pdes": lambda: pdes.run(chares=8, pes=4, seed=5),
    "mergetree": lambda: mergetree.run(ranks=8, seed=2),
    "nasbt": lambda: nasbt.run(ranks=9, iterations=2, seed=4),
    "btsweep": lambda: btsweep.run(tiles=(3, 3), pes=4, iterations=2, seed=6),
    "multigrid": lambda: multigrid.run(fine=(8, 8), pes=4, cycles=2, seed=8),
    "sssp": lambda: sssp.run(nodes=40, edges=120, parts=8, pes=4, seed=9)[0],
}


def _write(trace: Trace, tmp_path) -> str:
    path = tmp_path / "trace.jsonl"
    write_trace(trace, path)
    return str(path)


def assert_traces_equal(a: Trace, b: Trace) -> None:
    """Record-level equality across every field the pipeline observes."""
    assert a.num_pes == b.num_pes
    assert a.metadata == b.metadata
    assert list(a.chares) == list(b.chares)
    assert list(a.entries) == list(b.entries)
    assert list(a.arrays) == list(b.arrays)
    assert a.events == b.events
    assert a.executions == b.executions
    assert a.messages == b.messages
    assert a.idles == b.idles


def assert_structures_equal(a, b) -> None:
    assert a.step_of_event == b.step_of_event
    assert a.phase_of_event == b.phase_of_event
    assert a.local_step_of_event == b.local_step_of_event
    assert len(a.phases) == len(b.phases)


# ---------------------------------------------------------------------------
# Differential twins: chunked vs eager, records and extractions.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app", sorted(APPS))
def test_chunked_bit_identical(app, tmp_path):
    path = _write(APPS[app](), tmp_path)
    eager = read_trace(path)
    chunked = read_trace_chunked(path)
    assert isinstance(chunked, ColumnarTrace)
    assert_traces_equal(eager, chunked)
    assert_structures_equal(extract(eager), extract(chunked))


@pytest.mark.parametrize("app", ["lulesh", "lassen"])
def test_chunked_bit_identical_mpi(app, tmp_path):
    run = lulesh.run_mpi if app == "lulesh" else lassen.run_mpi
    path = _write(run(ranks=8, iterations=2, seed=3), tmp_path)
    eager = read_trace(path)
    chunked = read_trace_chunked(path)
    assert_traces_equal(eager, chunked)
    assert_structures_equal(extract(eager), extract(chunked))


@pytest.mark.faults
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_chunked_bit_identical_on_fault_corpus(kind, tmp_path):
    path = _write(inject_fault(APPS["jacobi2d"](), kind, seed=11), tmp_path)
    eager = read_trace(path)
    chunked = read_trace_chunked(path)
    assert_traces_equal(eager, chunked)
    opts = PipelineOptions(repair="fix")
    assert_structures_equal(extract(eager, opts), extract(chunked, opts))


@pytest.mark.parametrize(
    "chunk_bytes", [1, 7, 256, 4096, DEFAULT_CHUNK_BYTES])
def test_chunk_size_invariance(chunk_bytes, tmp_path):
    """Every chunk size yields the same records — including chunks so
    small every line straddles a boundary (torn-line reassembly)."""
    path = _write(APPS["jacobi2d"](), tmp_path)
    eager = read_trace(path)
    assert_traces_equal(eager, read_trace_chunked(path,
                                                  chunk_bytes=chunk_bytes))


def test_chunked_digest_matches_eager(tmp_path):
    """The vectorized column digest equals the per-record digest."""
    path = _write(APPS["jacobi2d"](), tmp_path)
    assert (trace_digest(MemoryTraceSource(read_trace_chunked(path)))
            == trace_digest(MemoryTraceSource(read_trace(path))))


def test_columnar_trace_pickle_roundtrip(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    chunked = read_trace_chunked(path)
    revived = pickle.loads(pickle.dumps(chunked))
    assert_traces_equal(chunked, revived)
    assert_structures_equal(extract(chunked), extract(revived))


# ---------------------------------------------------------------------------
# Bounded memory: staging footprint depends on chunk_bytes, not length.
# ---------------------------------------------------------------------------
def test_reader_staging_is_bounded_by_chunk_size(tmp_path):
    chunk_bytes = 16 << 10
    peaks = {}
    for iters in (1, 4):
        trace = jacobi2d.run(chares=(4, 4), pes=4, iterations=iters, seed=7)
        path = tmp_path / f"trace{iters}.jsonl"
        write_trace(trace, path)
        stats = ReaderStats()
        read_trace_chunked(path, chunk_bytes=chunk_bytes, stats=stats)
        longest = max(len(line) for line in
                      path.read_bytes().splitlines(keepends=True))
        # readlines(hint) stops after the line that crosses the hint, so
        # one chunk stages at most hint + one full line.
        assert stats.peak_chunk_bytes <= chunk_bytes + longest
        assert stats.chunks > 1
        peaks[iters] = (stats.peak_chunk_bytes, stats.peak_chunk_records)
    # Quadrupling the trace leaves the staging peak untouched (within
    # one line of slack for where the final chunk boundary lands).
    assert peaks[4][0] <= peaks[1][0] + longest
    assert peaks[4][1] <= peaks[1][1] * 2


def test_reader_stats_counts(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    stats = ReaderStats()
    trace = read_trace_chunked(path, stats=stats)
    with open(path, "rb") as fh:
        n_lines = sum(1 for _ in fh)
    assert stats.lines == stats.records == n_lines
    assert stats.chunks >= 1
    total = (len(trace.events) + len(trace.executions) + len(trace.messages)
             + len(trace.idles) + len(trace.chares) + len(trace.entries)
             + len(trace.arrays) + 1)  # + header
    assert stats.records == total


# ---------------------------------------------------------------------------
# Malformed inputs: structured errors with kind / line / byte offset.
# ---------------------------------------------------------------------------
def _lines_of(path) -> list:
    with open(path, "rb") as fh:
        return fh.readlines()


@pytest.mark.parametrize("chunk_bytes", [64, DEFAULT_CHUNK_BYTES])
def test_unknown_kind_reports_line_and_offset(chunk_bytes, tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    lines = _lines_of(path)
    victim = len(lines) // 2
    offset = sum(len(ln) for ln in lines[:victim])
    lines.insert(victim, b'{"t": "bogus", "id": 0}\n')
    bad = tmp_path / "bad.jsonl"
    bad.write_bytes(b"".join(lines))
    with pytest.raises(TraceFormatError) as exc:
        read_trace_chunked(bad, chunk_bytes=chunk_bytes)
    assert exc.value.kind == "bogus"
    assert exc.value.line == victim + 1
    assert exc.value.offset == offset


@pytest.mark.parametrize("chunk_bytes", [64, DEFAULT_CHUNK_BYTES])
def test_torn_final_line_is_an_error(chunk_bytes, tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    blob = open(path, "rb").read()
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(blob[:-9])  # truncate inside the final record
    with pytest.raises(TraceFormatError):
        read_trace_chunked(torn, chunk_bytes=chunk_bytes)


def test_missing_field_is_an_error(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    lines = _lines_of(path)
    for i, ln in enumerate(lines):
        if ln.startswith(b'{"t": "event"'):
            lines[i] = ln.replace(b', "tm": ', b', "zz": ')
            break
    bad = tmp_path / "bad.jsonl"
    bad.write_bytes(b"".join(lines))
    with pytest.raises(TraceFormatError, match="missing field") as exc:
        read_trace_chunked(bad, chunk_bytes=128)
    assert exc.value.kind == "event"


def test_non_dense_ids_are_an_error(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    lines = [ln for ln in _lines_of(path)
             if not ln.startswith(b'{"t": "event", "id": 0,')]
    bad = tmp_path / "bad.jsonl"
    bad.write_bytes(b"".join(lines))
    with pytest.raises(TraceFormatError, match="dense"):
        read_trace_chunked(bad)


def test_chunk_bytes_must_be_positive(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    with pytest.raises(ValueError):
        read_trace_chunked(path, chunk_bytes=0)


# ---------------------------------------------------------------------------
# open_trace: one front door over paths, streams, traces, and sources.
# ---------------------------------------------------------------------------
def test_open_trace_path(tmp_path):
    trace = APPS["jacobi2d"]()
    path = _write(trace, tmp_path)
    src = open_trace(path)
    assert isinstance(src, FileTraceSource)
    assert str(src.path) == path and src.label == path
    assert_traces_equal(trace, src.trace())


def test_open_trace_memory_preserves_identity():
    trace = APPS["jacobi2d"]()
    src = open_trace(trace)
    assert isinstance(src, MemoryTraceSource)
    assert src.trace() is trace
    assert src.path is None


def test_open_trace_stream_consumed_once(tmp_path):
    trace = APPS["jacobi2d"]()
    path = _write(trace, tmp_path)
    stream = io.StringIO(open(path).read())
    src = open_trace(stream, ingest="chunked")
    assert isinstance(src, StreamTraceSource)
    first = src.trace()
    assert src.trace() is first  # cached; the stream is gone
    assert_traces_equal(trace, first)


def test_open_trace_source_passthrough(tmp_path):
    src = FileTraceSource(_write(APPS["jacobi2d"](), tmp_path))
    assert open_trace(src) is src

    class DuckSource:
        label = "duck"
        path = None

        def trace(self):  # pragma: no cover - never called here
            raise AssertionError

    duck = DuckSource()
    assert open_trace(duck) is duck


def test_open_trace_rejects_junk():
    with pytest.raises(TypeError, match="trace source"):
        open_trace(42)


def test_ingest_mode_selects_reader(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    assert isinstance(open_trace(path, ingest="chunked").trace(),
                      ColumnarTrace)
    eager = open_trace(path, ingest="eager").trace()
    assert isinstance(eager, Trace)
    assert not isinstance(eager, ColumnarTrace)
    assert resolve_ingest("auto") == ("chunked" if HAVE_NUMPY else "eager")
    with pytest.raises(ValueError, match="ingest"):
        resolve_ingest("bogus")


def test_extract_accepts_path_and_source(tmp_path):
    trace = APPS["jacobi2d"]()
    path = _write(trace, tmp_path)
    base = extract(trace)
    assert_structures_equal(base, extract(path))
    assert_structures_equal(base, extract(open_trace(path)))


def test_validate_accepts_source(tmp_path):
    path = _write(APPS["jacobi2d"](), tmp_path)
    validate_trace(open_trace(path))  # chunked columnar view; no raise


# ---------------------------------------------------------------------------
# Windowed kernels equal their whole-array twins at every window size.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("window", [1, 3, 64, 100000])
def test_windowed_kernels_match_batch(window):
    np = pytest.importorskip("numpy")
    from repro.core.columnar import _absorb_flags
    from repro.core.streaming import absorb_flags_windowed, fold_partition_runs

    rng = np.random.RandomState(13)
    n = 257
    serial = rng.rand(n) < 0.5
    pe = rng.randint(0, 4, n)
    start = np.sort(rng.rand(n) * 100)
    end = start + rng.rand(n) * 1e-6
    first_positions = np.unique(rng.randint(0, n, 10))
    batch = _absorb_flags(serial, pe, start, end, first_positions, 1e-9)
    windowed = absorb_flags_windowed(
        serial, pe, start, end, first_positions, 1e-9, window)
    assert np.array_equal(batch, windowed)

    block_seq = np.repeat(np.arange(40), rng.randint(1, 12, 40))[:n]
    rt_seq = rng.rand(len(block_seq)) < 0.3
    boundary, newblock = fold_partition_runs(block_seq, rt_seq, window)
    ref_new = np.empty(len(block_seq), np.bool_)
    ref_new[0] = True
    ref_new[1:] = block_seq[1:] != block_seq[:-1]
    ref_bound = ref_new.copy()
    ref_bound[1:] |= rt_seq[1:] != rt_seq[:-1]
    assert np.array_equal(newblock, ref_new)
    assert np.array_equal(boundary, ref_bound)


@pytest.mark.parametrize("window", [1, 7, 1000])
def test_extraction_window_invariant(window, tmp_path):
    """The ingest window size never shows in the extracted structure."""
    trace = APPS["jacobi2d"]()
    base = extract(trace)
    chunked = read_trace_chunked(_write(trace, tmp_path))
    chunked.ingest_window = window
    assert_structures_equal(base, extract(chunked))
