"""Mutation battery for the batched merge rounds and PE shard plans.

Two claims are load-bearing for the ``columnar_batched`` backend and
deserve adversarial tests rather than just the happy-path differential:

* *Merge rounds are order-independent at the membership level.*  The
  candidate order determines the representatives (and the batch kernel
  replays it bit-for-bit), but the fixed-point *partition of events*
  must not depend on it — shuffling a round's candidate columns must
  reach the same membership partition.
* *Any whole-chare shard plan is result-neutral.*  Serial-block
  absorption only looks at adjacent executions of one chare, so every
  plan that covers each chare exactly once — one giant shard, one chare
  per shard, reversed PE groups — must build a bit-identical
  InitialStructure, and invalid plans must fail loudly.
"""

from __future__ import annotations

import random

import pytest

from repro.api import PipelineOptions, extract
from repro.apps import jacobi2d, lulesh
from repro.core.columnar import (
    HAVE_NUMPY,
    build_initial_batched,
    pe_shard_plan,
)
from repro.core.merges import dependency_merge, repair_merge

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")


def _trace():
    return jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=7)


def _membership(state):
    """The partition as a set of member-sets — representative-agnostic."""
    return frozenset(frozenset(m) for m in state.members().values())


def _shuffling(columns_fn, seed):
    """Wrap a candidate-columns method to return its pairs shuffled."""
    def shuffled():
        a, b = columns_fn()
        pairs = list(zip(a.tolist(), b.tolist()))
        random.Random(seed).shuffle(pairs)
        return ([x for x, _ in pairs], [y for _, y in pairs])
    return shuffled


# ---------------------------------------------------------------------------
# Shuffled candidate orders: same fixed-point membership partition
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_shuffled_message_candidates_reach_same_partition(seed):
    trace = _trace()
    baseline = build_initial_batched(trace)
    dependency_merge(baseline.state)

    mutated = build_initial_batched(trace)
    mutated.state.message_merge_arrays = _shuffling(
        mutated.state.message_merge_arrays, seed)
    dependency_merge(mutated.state)

    assert _membership(mutated.state) == _membership(baseline.state)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_shuffled_repair_candidates_reach_same_partition(seed):
    trace = _trace()
    baseline = build_initial_batched(trace)
    dependency_merge(baseline.state)
    repair_merge(baseline)

    mutated = build_initial_batched(trace)
    dependency_merge(mutated.state)
    mutated.state.block_repair_arrays = _shuffling(
        mutated.state.block_repair_arrays, seed)
    repair_merge(mutated)

    assert _membership(mutated.state) == _membership(baseline.state)


def test_reversed_candidates_reach_same_partition():
    # The extreme shuffle: process every round's candidates backwards.
    trace = _trace()
    baseline = build_initial_batched(trace)
    dependency_merge(baseline.state)

    mutated = build_initial_batched(trace)
    columns_fn = mutated.state.message_merge_arrays

    def reverse():
        a, b = columns_fn()
        return a[::-1], b[::-1]

    mutated.state.message_merge_arrays = reverse
    dependency_merge(mutated.state)
    assert _membership(mutated.state) == _membership(baseline.state)


# ---------------------------------------------------------------------------
# Adversarial shard plans: any whole-chare cover is bit-identical
# ---------------------------------------------------------------------------
def _assert_initial_identical(a, b):
    assert a.blocks == b.blocks
    assert a.block_of_event == b.block_of_event
    assert a.block_of_exec == b.block_of_exec
    assert a.state.init_events == b.state.init_events
    assert a.state.init_runtime == b.state.init_runtime
    assert a.state.init_block == b.state.init_block
    assert a.state.event_init == b.state.event_init
    assert a.state.edges == b.state.edges


def _adversarial_plans(trace):
    slots = len(trace.executions_by_chare)
    grouped = pe_shard_plan(trace)
    return {
        "single_shard": [list(range(slots))],
        "one_chare_per_shard": [[i] for i in range(slots)],
        "reversed_groups": [list(reversed(s)) for s in reversed(grouped)],
    }


@pytest.mark.parametrize("plan_name",
                         ["single_shard", "one_chare_per_shard",
                          "reversed_groups"])
def test_adversarial_shard_plans_bit_identical(plan_name):
    trace = lulesh.run_charm(chares=8, pes=4, iterations=2, seed=3)
    default = build_initial_batched(trace)
    plan = _adversarial_plans(trace)[plan_name]
    sharded = build_initial_batched(trace, shard_plan=plan)
    _assert_initial_identical(default, sharded)


def test_shard_plan_duplicate_chare_rejected():
    trace = _trace()
    slots = len(trace.executions_by_chare)
    plan = [list(range(slots)), [0]]  # chare 0 appears in two shards
    with pytest.raises(ValueError, match="multiple shards"):
        build_initial_batched(trace, shard_plan=plan)


def test_shard_plan_missing_chare_rejected():
    trace = _trace()
    slots = len(trace.executions_by_chare)
    plan = [list(range(slots - 1))]  # last chare uncovered
    with pytest.raises(ValueError, match="cover every chare"):
        build_initial_batched(trace, shard_plan=plan)


# ---------------------------------------------------------------------------
# Strict verify mode stays green on the batched backend
# ---------------------------------------------------------------------------
def test_strict_verify_green_on_batched_backend():
    trace = _trace()
    structure = extract(trace, PipelineOptions(
        backend="columnar_batched", verify=True))
    assert structure.max_step >= 0


def test_strict_verify_green_on_batched_backend_sharded():
    trace = _trace()
    structure = extract(trace, PipelineOptions(
        backend="columnar_batched", verify=True, shard_workers=2))
    assert structure.max_step >= 0
