"""Quiescence detection service."""

import pytest

from repro.core import extract_logical_structure
from repro.sim.charm import Chare, CharmRuntime
from repro.trace import validate_trace


class Worker(Chare):
    """Bounces messages around for a while, then goes quiet."""

    DONE_AT = {}

    def init(self, hops=6, **_):
        self.hops = hops

    def start(self, _):
        self.compute(3.0)
        peer = self.array[((self.index[0] + 1) % len(self.array),)]
        self.send(peer, "bounce", self.hops)

    def bounce(self, hops):
        self.compute(5.0)
        if hops > 0:
            peer = self.array[((self.index[0] + 1) % len(self.array),)]
            self.send(peer, "bounce", hops - 1)

    def quiet(self, _):
        Worker.DONE_AT[self.index] = self.now


def _run(hops=6, pes=2, workers=4):
    Worker.DONE_AT = {}
    rt = CharmRuntime(num_pes=pes)
    arr = rt.create_array("Worker", Worker, shape=(workers,), hops=hops)
    rt.start_quiescence_detection(arr[(0,)], "quiet", at=1.0)
    for c in arr:
        rt.seed(c, "start")
    rt.run()
    return rt, rt.finish()


def test_quiescence_fires_after_all_work():
    rt, trace = _run(hops=6)
    assert Worker.DONE_AT  # the client was notified
    validate_trace(trace)
    # Notification comes after the last application message was processed.
    last_app = max(
        ex.end for ex in trace.executions
        if trace.entry(ex.entry).name.startswith("Worker::bounce")
    )
    assert list(Worker.DONE_AT.values())[0] >= last_app


def test_counters_balanced_at_end():
    rt, _trace = _run(hops=4)
    assert sum(rt.messages_created) == sum(rt.messages_processed)


def test_qd_managers_are_runtime_chares():
    _rt, trace = _run(hops=3)
    mgrs = [c for c in trace.chares if c.name.startswith("CkQdMgr")]
    assert len(mgrs) == 2
    assert all(c.is_runtime for c in mgrs)


def test_qd_phases_visible_and_separate():
    _rt, trace = _run(hops=8, pes=4, workers=8)
    structure = extract_logical_structure(trace)
    qd_phases = [
        p for p in structure.runtime_phases()
        if any("QdManager" in n for n, _ in structure.phase_entry_signature(p.id))
    ]
    assert qd_phases
    # QD never absorbs application work: the only application events in
    # its phases are the final client notification ("quiet").
    for p in qd_phases:
        for ev in p.events:
            if not trace.is_runtime_chare(trace.events[ev].chare):
                ex = trace.executions[trace.events[ev].execution]
                assert trace.entry(ex.entry).name.endswith("quiet")


def test_double_start_rejected():
    rt = CharmRuntime(num_pes=1)
    arr = rt.create_array("Worker", Worker, shape=(1,))
    rt.start_quiescence_detection(arr[(0,)], "quiet")
    with pytest.raises(RuntimeError, match="already started"):
        rt.start_quiescence_detection(arr[(0,)], "quiet")
