"""Shared fixtures: app traces are expensive, so they are session-scoped."""

from __future__ import annotations

import pytest

from repro.apps import jacobi2d, lassen, lulesh, mergetree, nasbt, pdes
from repro.core import extract_logical_structure


@pytest.fixture(scope="session")
def jacobi_trace():
    return jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7)


@pytest.fixture(scope="session")
def jacobi_structure(jacobi_trace):
    return extract_logical_structure(jacobi_trace)


@pytest.fixture(scope="session")
def lulesh_charm_trace():
    return lulesh.run_charm(chares=8, pes=2, iterations=3, seed=3)


@pytest.fixture(scope="session")
def lulesh_mpi_trace():
    return lulesh.run_mpi(ranks=8, iterations=3, seed=3)


@pytest.fixture(scope="session")
def lassen_charm_trace():
    return lassen.run_charm(chares=8, pes=8, iterations=4, seed=1)


@pytest.fixture(scope="session")
def lassen_mpi_trace():
    return lassen.run_mpi(ranks=8, iterations=4, seed=1)


@pytest.fixture(scope="session")
def pdes_trace():
    return pdes.run(chares=16, pes=4, seed=1)


@pytest.fixture(scope="session")
def mergetree_trace():
    return mergetree.run(ranks=64, seed=2, imbalance=5.0)


@pytest.fixture(scope="session")
def nasbt_trace():
    return nasbt.run(ranks=9, iterations=2, seed=1)
