"""Over-decomposed BT-style sweep workload."""

import pytest

from repro.apps import btsweep
from repro.core import extract_logical_structure
from repro.trace import validate_trace
from repro.trace.events import EventKind


@pytest.fixture(scope="module")
def trace():
    return btsweep.run(tiles=(6, 6), pes=6, iterations=2, seed=1)


@pytest.fixture(scope="module")
def structure(trace):
    return extract_logical_structure(trace)


def test_trace_valid(trace):
    validate_trace(trace)


def test_every_tile_solves_each_iteration(trace):
    xruns = [x for x in trace.executions
             if trace.entry(x.entry).name.endswith("xrun")]
    yruns = [x for x in trace.executions
             if trace.entry(x.entry).name.endswith("yrun")]
    assert len(xruns) == 36 * 2
    assert len(yruns) == 36 * 2


def test_x_wavefront_steps_increase_along_row(trace, structure):
    """The pipelined sweep shows as a staircase: logical steps of a row's
    xrun sends grow with the tile's column."""
    by_col = {}
    for ev in trace.events:
        if ev.kind != EventKind.SEND:
            continue
        ex = trace.executions[ev.execution]
        if not trace.entry(ex.entry).name.endswith("xrun"):
            continue
        chare = trace.chares[ev.chare]
        if chare.index[1] != 0:
            continue  # one row suffices
        step = structure.step_of_event[ev.id]
        by_col.setdefault(chare.index[0], []).append(step)
    cols = sorted(by_col)
    assert len(cols) >= 5
    firsts = [min(by_col[c]) for c in cols]
    assert firsts == sorted(firsts)
    assert firsts[-1] > firsts[0]


def test_sweep_depth_in_leaps(structure):
    # Two pipelined dimensions x two iterations give a deep phase DAG.
    assert max(p.leap for p in structure.phases) >= 10


def test_reduction_per_iteration(trace):
    resumes = [x for x in trace.executions
               if trace.entry(x.entry).name.endswith("resume")]
    assert len(resumes) == 36 * 2


def test_y_requires_own_x(trace):
    """No tile's yrun begins before its xrun finished (same iteration)."""
    per_chare = {}
    for x in trace.executions:
        name = trace.entry(x.entry).name
        if name.endswith(("xrun", "yrun")):
            per_chare.setdefault(x.chare, []).append((x.start, name[-4:]))
    for chare, rows in per_chare.items():
        rows.sort()
        kinds = [k for _, k in rows]
        # Alternating xrun / yrun per iteration.
        assert kinds == ["xrun", "yrun"] * (len(kinds) // 2)
