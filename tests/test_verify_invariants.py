"""Mutation tests for the invariant checkers (``repro.verify``).

Each test corrupts one aspect of a clean :class:`LogicalStructure` and
asserts that exactly the targeted checker reports it, by its stable
invariant name.  This demonstrates every checker live — a checker that
never fires on a corruption it claims to guard against is a tautology.
"""

import copy

import pytest

from repro.core.pipeline import extract_logical_structure
from repro.core.reorder import _assign_w
from repro.verify import (
    ALL_CHECKERS,
    InvariantViolationError,
    check_chare_step_uniqueness,
    check_dag_acyclic,
    check_leap_consistency,
    check_p1_leap_disjoint,
    check_p2_successor_cover,
    check_partition_totality,
    check_reorder_clocks,
    check_step_monotonicity,
    check_step_offsets,
    check_structure,
    verify_structure,
)
from tests.helpers import random_trace

pytestmark = pytest.mark.verify

EXPECTED_NAMES = {
    "dag-acyclic",
    "leap-consistency",
    "p1-leap-disjoint",
    "p2-successor-cover",
    "partition-totality",
    "step-happened-before",
    "step-offset",
    "chare-step-unique",
    "reorder-clocks",
}


@pytest.fixture(scope="module")
def clean():
    trace = random_trace(seed=11, chares=6, pes=3, rounds=3, fanout=2,
                         runtime=True)
    return extract_logical_structure(trace)


@pytest.fixture()
def mutant(clean):
    return copy.deepcopy(clean)


def only(violations, name):
    assert violations, f"expected {name} violations, got none"
    assert {v.invariant for v in violations} == {name}
    return violations


def test_registry_is_complete():
    assert set(ALL_CHECKERS) == EXPECTED_NAMES


def test_clean_structure_passes_every_checker(clean):
    assert check_structure(clean) == []
    verify_structure(clean)  # must not raise
    # the fixture is non-trivial enough to exercise the checkers
    assert len(clean.phases) >= 2
    assert any(p.succs for p in clean.phases)


def test_dag_cycle_detected(mutant):
    a = next(p for p in mutant.phases if p.succs)
    b = mutant.phases[next(iter(a.succs))]
    # close the loop b -> a (mirrors kept consistent: pure cycle, no
    # mirror violation — Kahn's algorithm must find it)
    b.succs.add(a.id)
    a.preds.add(b.id)
    vs = only(check_dag_acyclic(mutant), "dag-acyclic")
    flagged = set()
    for v in vs:
        flagged.update(v.subjects)
    assert {a.id, b.id} <= flagged


def test_broken_succ_pred_mirror_detected(mutant):
    a = next(p for p in mutant.phases if p.succs)
    q = next(iter(a.succs))
    mutant.phases[q].preds.discard(a.id)
    only(check_dag_acyclic(mutant), "dag-acyclic")


def test_leap_mismatch_detected(mutant):
    p = max(mutant.phases, key=lambda p: p.leap)
    p.leap += 5
    vs = only(check_leap_consistency(mutant), "leap-consistency")
    assert any(p.id in v.subjects for v in vs)


def test_p1_chare_overlap_detected(mutant):
    a, b = mutant.phases[0], mutant.phases[-1]
    assert a.id != b.id
    b.leap = a.leap
    b.chares.add(next(iter(a.chares)))
    only(check_p1_leap_disjoint(mutant), "p1-leap-disjoint")


def test_p2_missing_successor_detected(mutant):
    last_leap = {}
    for p in mutant.phases:
        for c in p.chares:
            last_leap[c] = max(last_leap.get(c, -1), p.leap)
    p = next(
        p for p in mutant.phases
        if any(last_leap[c] > p.leap for c in p.chares)
    )
    for q in p.succs:
        mutant.phases[q].preds.discard(p.id)
    p.succs.clear()
    vs = only(check_p2_successor_cover(mutant), "p2-successor-cover")
    assert any(p.id in v.subjects for v in vs)


def test_p2_exempts_chare_that_never_reappears(clean):
    # every final phase of a chare lacks that chare in its successors and
    # the clean structure still passes: the exemption is live
    last_leap = {}
    for p in clean.phases:
        for c in p.chares:
            last_leap[c] = max(last_leap.get(c, -1), p.leap)
    finals = [
        (p, c)
        for p in clean.phases
        for c in p.chares
        if last_leap[c] == p.leap
    ]
    assert finals  # exemption actually exercised
    assert check_p2_successor_cover(clean) == []


def test_partition_duplicate_event_detected(mutant):
    a = next(p for p in mutant.phases if p.events)
    b = next(p for p in mutant.phases if p.id != a.id)
    b.events.append(a.events[0])
    only(check_partition_totality(mutant), "partition-totality")


def test_partition_dropped_event_detected(mutant):
    p = next(p for p in mutant.phases if p.events)
    ev = p.events.pop()
    vs = only(check_partition_totality(mutant), "partition-totality")
    assert any(ev in v.subjects for v in vs)


def test_message_step_inversion_detected(mutant):
    step = mutant.step_of_event
    msg = next(
        m for m in mutant.trace.messages
        if m.is_complete() and step[m.send_event] >= 0 and step[m.recv_event] >= 0
    )
    step[msg.recv_event] = step[msg.send_event]
    vs = check_step_monotonicity(mutant)
    assert any(
        v.invariant == "step-happened-before" and msg.id in v.subjects
        for v in vs
    )


def test_block_step_inversion_detected(mutant):
    step = mutant.step_of_event
    block = next(
        b for b in mutant.blocks
        if len(b.events) >= 2 and all(step[e] >= 0 for e in b.events)
    )
    a, b = block.events[0], block.events[1]
    step[b] = step[a] - 1
    vs = check_step_monotonicity(mutant)
    assert any(
        v.invariant == "step-happened-before" and block.id in v.subjects
        for v in vs
    )


def test_offset_corruption_detected(mutant):
    p = next(p for p in mutant.phases if p.events)
    p.offset += 1  # steps no longer equal offset + local step
    only(check_step_offsets(mutant), "step-offset")


def test_chare_step_collision_detected(mutant):
    step = mutant.step_of_event
    events = mutant.trace.events
    by_chare = {}
    pair = None
    for ev in range(len(events)):
        if step[ev] < 0:
            continue
        c = events[ev].chare
        if c in by_chare and step[by_chare[c]] != step[ev]:
            pair = (by_chare[c], ev)
            break
        by_chare.setdefault(c, ev)
    assert pair is not None
    step[pair[1]] = step[pair[0]]
    vs = only(check_chare_step_uniqueness(mutant), "chare-step-unique")
    assert any(set(pair) <= set(v.subjects) for v in vs)


def test_reorder_clock_corruption_detected(clean):
    phase = max(clean.phases, key=lambda p: len(p.events))
    assert len(phase.events) >= 2
    w = _assign_w(
        clean.trace, phase.events, set(phase.events), clean.block_of_event
    )
    assert check_reorder_clocks(clean, w_override={phase.id: dict(w)}) == []
    victim = phase.events[-1]
    w[victim] += 7
    vs = only(
        check_reorder_clocks(clean, w_override={phase.id: w}),
        "reorder-clocks",
    )
    assert any(victim in v.subjects for v in vs)


def test_reorder_clock_missing_value_detected(clean):
    phase = max(clean.phases, key=lambda p: len(p.events))
    w = _assign_w(
        clean.trace, phase.events, set(phase.events), clean.block_of_event
    )
    w.pop(phase.events[0])
    vs = only(
        check_reorder_clocks(clean, w_override={phase.id: w}),
        "reorder-clocks",
    )
    assert any("no clock value" in v.message for v in vs)


def test_verify_structure_raises_with_named_invariants(mutant):
    a = next(p for p in mutant.phases if p.succs)
    b = mutant.phases[next(iter(a.succs))]
    b.succs.add(a.id)
    a.preds.add(b.id)
    with pytest.raises(InvariantViolationError) as exc:
        verify_structure(mutant)
    assert "dag-acyclic" in exc.value.invariants()
    assert exc.value.violations


def test_checker_subset_selection(clean):
    assert check_structure(clean, checkers=["dag-acyclic"]) == []
    with pytest.raises(ValueError):
        check_structure(clean, checkers=["no-such-invariant"])
