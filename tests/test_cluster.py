"""Timeline clustering."""

import pytest

from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import differential_duration
from repro.sim.noise import ChareSlowdown
from repro.viz import cluster_timelines, render_clustered


@pytest.fixture(scope="module")
def straggler_setup():
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7,
                         noise=ChareSlowdown([6], factor=4.0))
    structure = extract_logical_structure(trace)
    metric = differential_duration(structure).by_event
    return structure, metric


def test_straggler_isolated(straggler_setup):
    structure, metric = straggler_setup
    clusters = cluster_timelines(structure, metric, k=3, seed=0)
    lone = [ci for ci in range(clusters.k) if clusters.members(ci) == [6]]
    assert lone, "the slow chare must form its own cluster"


def test_partition_is_total_and_disjoint(straggler_setup):
    structure, metric = straggler_setup
    clusters = cluster_timelines(structure, metric, k=3)
    app = structure.trace.application_chares()
    assert sorted(clusters.assignment) == sorted(app)
    for ci in range(clusters.k):
        assert clusters.medoids[ci] in clusters.members(ci)


def test_k_capped_at_population(straggler_setup):
    structure, metric = straggler_setup
    clusters = cluster_timelines(structure, metric, k=100)
    assert clusters.k == len(structure.trace.application_chares())


def test_deterministic(straggler_setup):
    structure, metric = straggler_setup
    a = cluster_timelines(structure, metric, k=3, seed=1)
    b = cluster_timelines(structure, metric, k=3, seed=1)
    assert a.assignment == b.assignment and a.medoids == b.medoids


def test_render_clustered(straggler_setup):
    structure, metric = straggler_setup
    clusters = cluster_timelines(structure, metric, k=3)
    text = render_clustered(structure, metric, clusters, max_steps=30)
    assert text.count("cluster ") == 3
    assert "medoid" in text


def test_bad_k_rejected(straggler_setup):
    structure, metric = straggler_setup
    with pytest.raises(ValueError):
        cluster_timelines(structure, metric, k=0)


def test_explicit_chare_subset(straggler_setup):
    structure, metric = straggler_setup
    subset = [0, 1, 2, 6]
    clusters = cluster_timelines(structure, metric, k=2, chares=subset)
    assert sorted(clusters.assignment) == subset
