"""Chaos suite: injected faults at every durability seam (``-m chaos``).

Proves the service's crash-safety story *under* failure instead of
around it: a seeded :class:`~repro.chaos.FaultPlan` schedules
``ENOSPC``/``EIO``/torn writes at the exact open/write/fsync/replace
fault points of the journal, the artifact store, and the upload path —
then the suite asserts no torn entry is ever served, exactly-once job
completion survives ``kill -9`` + restart, and degraded mode is
entered *and exited* correctly.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.chaos import ChaosCrash, FaultPlan, FaultSpec
from repro.cli import main as cli_main
from repro.resilience.journal import JournalWriter, read_journal
from repro.serve import ArtifactStore, JobService, read_job_ledger

pytestmark = pytest.mark.chaos

POLL_DEADLINE = 120.0


# ----------------------------------------------------------------------
# Fixtures: three distinct traces and their CLI-rendered documents
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """[(path, expected `repro analyze --json` output), ...] x3."""
    out = []
    root = tmp_path_factory.mktemp("chaos")
    for seed in (1, 2, 3):
        path = root / f"t{seed}.jsonl"
        rc = cli_main(["simulate", "jacobi2d", "--chares", "4x4", "--pes",
                       "4", "--iterations", "2", "--seed", str(seed),
                       "-o", str(path)])
        assert rc == 0
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert cli_main(["analyze", str(path), "--json"]) == 0
        out.append((path, buf.getvalue()))
    return out


def drain_until(service, predicate, deadline=POLL_DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ----------------------------------------------------------------------
# The fault plan itself
# ----------------------------------------------------------------------
def test_faultplan_explicit_schedule_is_deterministic():
    for _ in range(2):  # identical across constructions
        plan = FaultPlan(specs=["s.op:eio:at=2,at=4"])
        outcomes = []
        for _ in range(5):
            try:
                plan.trip("s.op")
                outcomes.append("ok")
            except OSError:
                outcomes.append("eio")
        assert outcomes == ["ok", "eio", "ok", "eio", "ok"]


def test_faultplan_rate_faults_reproducible_by_seed():
    def schedule(seed):
        plan = FaultPlan(specs=["s.op:eio:rate=0.5"], seed=seed)
        fired = []
        for call in range(40):
            try:
                plan.trip("s.op")
            except OSError:
                fired.append(call)
        return fired

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)  # astronomically unlikely to match


def test_faultspec_parse_forms_and_errors():
    spec = FaultSpec.parse("store.*:latency:delay=0.5,times=2")
    assert spec.site == "store.*" and spec.kind == "latency"
    assert spec.delay == 0.5 and spec.times == 2
    assert spec.matches("store.fsync") and not spec.matches("ledger.fsync")
    assert FaultSpec.parse("a.b:crash:at=1,at=3").at == (1, 3)
    assert FaultSpec.parse("*:eio").matches("anything.at.all")
    for bad in ("nokind", "s.op:frobnicate", "s.op:eio:at=0",
                "s.op:eio:rate=2", "s.op:eio:bogus=1"):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)


def test_faultplan_times_cap_and_event_log():
    plan = FaultPlan(specs=["s.op:eio:times=2"])
    failures = 0
    for _ in range(5):
        try:
            plan.trip("s.op")
        except OSError:
            failures += 1
    assert failures == 2
    assert plan.fired("s.op") == 2 and plan.calls("s.op") == 5
    assert plan.summary()["by_site"] == {"s.op": 2}


def test_faultplan_crash_and_skewed_clock():
    plan = FaultPlan(specs=["w.run:crash:at=1", "tick:skew:skew=10"])
    with pytest.raises(ChaosCrash):
        plan.trip("w.run")
    before = plan.clock()
    plan.trip("tick")
    assert plan.clock() - before >= 10.0


# ----------------------------------------------------------------------
# JournalWriter under filesystem faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("site,kind,d3_may_survive", [
    ("ledger.write", "enospc", False),
    ("ledger.write", "eio", False),
    ("ledger.write", "torn", False),
    ("ledger.fsync", "enospc", True),   # written but never made durable
    ("ledger.fsync", "torn", True),
])
def test_journal_fault_never_leaves_unparseable_state(tmp_path, site, kind,
                                                      d3_may_survive):
    path = tmp_path / "j.jsonl"
    with JournalWriter(path, append=True) as writer:
        writer.record("done", digest="d1", summary={})
        writer.record("done", digest="d2", summary={})

    plan = FaultPlan(specs=[f"{site}:{kind}:at=1"])
    writer = JournalWriter(path, append=True, fs=plan.fs("ledger"))
    with pytest.raises(OSError):
        writer.record("done", digest="d3", summary={})
    writer.close()
    assert plan.fired(site) == 1

    state = read_journal(path)
    assert {"d1", "d2"} <= set(state.done)
    if not d3_may_survive:
        assert "d3" not in state.done
    # At most the one torn fragment; every parsed entry is complete.
    assert state.corrupt_lines <= 1

    # Recovery: a plain append-mode writer terminates any torn tail and
    # the journal keeps accepting complete entries.
    with JournalWriter(path, append=True) as writer:
        writer.record("done", digest="d4", summary={})
    state = read_journal(path)
    assert {"d1", "d2", "d4"} <= set(state.done)
    assert state.corrupt_lines <= 1


def test_journal_open_fault_is_loud_not_corrupting(tmp_path):
    path = tmp_path / "j.jsonl"
    with JournalWriter(path, append=True) as writer:
        writer.record("done", digest="d1", summary={})
    plan = FaultPlan(specs=["ledger.open:enospc"])
    with pytest.raises(OSError):
        JournalWriter(path, append=True, fs=plan.fs("ledger"))
    assert set(read_journal(path).done) == {"d1"}


# ----------------------------------------------------------------------
# Artifact store under filesystem faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("site,kind", [
    ("store.open", "enospc"),
    ("store.write", "eio"),
    ("store.write", "torn"),
    ("store.fsync", "enospc"),
    ("store.fsync", "torn"),
    ("store.replace", "eio"),
    ("store.replace", "torn"),
])
def test_store_put_fault_leaves_no_torn_entry(tmp_path, site, kind):
    plan = FaultPlan(specs=[f"{site}:{kind}:at=2"])
    store = ArtifactStore(tmp_path / "a", fs=plan.fs("store"))
    store.put("aa11", {"doc": 1})

    # Second put hits the fault at whichever op `site` names.
    plan2 = FaultPlan(specs=[f"{site}:{kind}:at=1"])
    faulty = ArtifactStore(tmp_path / "a", fs=plan2.fs("store"))
    with pytest.raises(OSError):
        faulty.put("bb22", {"doc": 2})

    # A fresh reader sees the committed entry, never a torn one, and no
    # temp-file litter remains anywhere in the store.
    reader = ArtifactStore(tmp_path / "a")
    assert reader.get("aa11") == {"doc": 1}
    assert reader.get("bb22") is None  # fault aborted before the rename
    leftovers = [p for p in (tmp_path / "a").rglob("*.tmp")]
    assert leftovers == []

    # The store recovers: the same key writes cleanly afterwards.
    reader.put("bb22", {"doc": 2})
    assert ArtifactStore(tmp_path / "a").get("bb22") == {"doc": 2}


def test_upload_fault_is_contained_and_retryable(tmp_path, traces):
    trace_path, _ = traces[0]
    data = trace_path.read_bytes()
    plan = FaultPlan(specs=["upload.fsync:enospc:at=1"])
    service = JobService(tmp_path / "d", workers=0, chaos=plan)
    try:
        with pytest.raises(OSError):
            service.upload(data)
        # Same bytes again: the fault was one-shot; content addressing
        # converges on the identical reference.
        ref = service.upload(data)["trace"]
        assert ref.startswith("upload:")
        assert service.upload(data)["trace"] == ref
    finally:
        service.stop()


# ----------------------------------------------------------------------
# Service degradation: enter AND exit
# ----------------------------------------------------------------------
def test_store_write_failure_serves_inline_then_recovers(tmp_path, traces):
    (trace1, doc1), (trace2, doc2) = traces[0], traces[1]
    plan = FaultPlan(specs=["store.fsync:enospc:at=1"])
    service = JobService(tmp_path / "d", workers=1, chaos=plan)
    service.start()
    try:
        job1 = service.submit(service.upload(trace1.read_bytes())["trace"])
        assert drain_until(service,
                           lambda: service.job(job1.id).status == "done")
        # The artifact write failed: result served inline, uncached,
        # and /healthz says degraded with the reason.
        assert service.result(job1.id) == doc1
        health = service.health()
        assert health["status"] == "degraded"
        assert "artifact-store" in health["reasons"]
        assert service.stats()["store"]["write_failures"] == 1

        # Next job's write succeeds -> degraded mode exits.
        job2 = service.submit(service.upload(trace2.read_bytes())["trace"])
        assert drain_until(service,
                           lambda: service.job(job2.id).status == "done")
        assert service.result(job2.id) == doc2
        assert service.health() == {"status": "ok", "reasons": {}}
    finally:
        service.stop()

    # After restart the inline-served artifact is genuinely absent
    # (410-equivalent), while the stored one survives.
    service = JobService(tmp_path / "d", workers=0)
    try:
        assert service.job(job1.id).status == "done"
        assert service.result(job1.id) is None
        assert service.result(job2.id) == doc2
    finally:
        service.stop()


def test_ledger_write_failure_falls_back_to_memory_only(tmp_path, traces):
    trace1, _ = traces[0]
    # Ledger fsync call 1 is the meta line; call 2 the first submit.
    plan = FaultPlan(specs=["ledger.fsync:enospc:at=2"])
    service = JobService(tmp_path / "d", workers=0, chaos=plan)
    try:
        ref = service.upload(trace1.read_bytes())["trace"]
        with pytest.warns(RuntimeWarning, match="memory-only"):
            job = service.submit(ref)
        # The submission was accepted despite the ledger failure...
        assert job.status == "queued"
        assert service.job(job.id) is not None
        stats = service.stats()
        assert stats["ledger"] == {"mode": "memory-only", "failures": 1}
        assert service.health()["status"] == "degraded"
        assert "ledger" in service.health()["reasons"]
        # ...and later submissions do not warn again (already degraded).
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            service.submit(ref, {"order": "physical"})
    finally:
        service.stop()


def test_torn_ledger_submit_line_is_not_replayed(tmp_path, traces):
    trace1, doc1 = traces[0]
    # Write call 1 = meta, call 2 = submit #1, call 3 = submit #2 (torn).
    plan = FaultPlan(specs=["ledger.write:torn:at=3"])
    service = JobService(tmp_path / "d", workers=0, chaos=plan)
    ref = service.upload(trace1.read_bytes())["trace"]
    with pytest.warns(RuntimeWarning):
        job1 = service.submit(ref)
        job2 = service.submit(ref, {"order": "physical"})
    assert service.job(job2.id) is not None  # accepted, memory-only
    service.stop()

    # Restart: the torn submit line is discarded whole — job1 replays
    # exactly once, the half-written job2 never resurrects as garbage.
    service = JobService(tmp_path / "d", workers=1)
    try:
        assert service.recovered == 1
        assert service.job(job1.id) is not None
        assert service.job(job2.id) is None
        service.start()
        assert drain_until(service,
                           lambda: service.job(job1.id).status == "done")
        assert service.result(job1.id) == doc1
    finally:
        service.stop()
    ledger = read_job_ledger(tmp_path / "d" / "jobs.jsonl")
    assert ledger[job1.id].status == "done"


def test_latency_faults_only_slow_never_corrupt(tmp_path, traces):
    trace1, doc1 = traces[0]
    plan = FaultPlan(specs=["store.*:latency:delay=0.01",
                            "ledger.*:latency:delay=0.01"])
    service = JobService(tmp_path / "d", workers=1, chaos=plan)
    service.start()
    try:
        job = service.submit(service.upload(trace1.read_bytes())["trace"])
        assert drain_until(service,
                           lambda: service.job(job.id).status == "done")
        assert service.result(job.id) == doc1
        assert service.health()["status"] == "ok"
        assert plan.fired() > 0  # the latency sites really ran
    finally:
        service.stop()


# ----------------------------------------------------------------------
# The acceptance differential: chaos + kill -9 + restart, byte-identical
# ----------------------------------------------------------------------
def _repo_src():
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _http(port, method, path, data=None):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def test_chaos_kill9_restart_exactly_once_byte_identical(tmp_path, traces):
    data_dir = tmp_path / "data"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [_repo_src(), env.get("PYTHONPATH", "")] if p)

    def start(workers, chaos=()):
        cmd = [sys.executable, "-m", "repro", "serve", "--data-dir",
               str(data_dir), "--port", "0", "--workers", str(workers)]
        for spec in chaos:
            cmd += ["--chaos", spec]
        proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                stderr=subprocess.DEVNULL, env=env)
        line = proc.stdout.readline().decode()
        assert "listening on http://127.0.0.1:" in line, line
        return proc, int(line.split("http://127.0.0.1:")[1].split()[0])

    # Accept + journal one job per trace on a queue-only server, SIGKILL.
    proc, port = start(0)
    jobs = {}
    try:
        for path, expected in traces:
            _, body = _http(port, "POST", "/v1/traces", path.read_bytes())
            ref = json.loads(body)["trace"]
            status, body = _http(port, "POST", "/v1/jobs",
                                 json.dumps({"trace": ref}).encode())
            assert status == 202
            jobs[json.loads(body)["job"]] = expected
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

    # Restart under a seeded fault plan over the fs fault points: the
    # first artifact fsync fails (inline-served result) and every store
    # write is slowed, yet the backlog completes exactly once and every
    # result is byte-identical to `repro analyze --json`.
    proc, port = start(2, chaos=("store.fsync:enospc:at=1",
                                 "store.write:latency:delay=0.005",
                                 "ledger.write:latency:delay=0.005"))
    try:
        deadline = time.monotonic() + POLL_DEADLINE
        while time.monotonic() < deadline:
            stats = json.loads(_http(port, "GET", "/v1/stats")[1])
            if stats["jobs"]["done"] == len(jobs):
                break
            time.sleep(0.2)
        assert stats["jobs"]["done"] == len(jobs)
        assert stats["recovered"] == len(jobs)
        assert stats["store"]["write_failures"] == 1
        assert stats["chaos"]["fired"] >= 1
        for job_id, expected in jobs.items():
            status, body = _http(port, "GET", f"/v1/jobs/{job_id}/result")
            assert status == 200
            assert body.decode("utf-8") == expected
        # Degraded mode exited: later store writes succeeded.
        health = json.loads(_http(port, "GET", "/healthz")[1])
        assert health["ok"] is True and health["status"] == "ok"
    finally:
        proc.terminate()
        proc.wait()

    # Exactly once: one "done" ledger line per job, no extras.
    with open(data_dir / "jobs.jsonl") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    done = sorted(e["job"] for e in lines if e.get("kind") == "done")
    assert done == sorted(jobs)
