"""Trace subsetting and usage profiles."""

import pytest

from repro.core import extract_logical_structure
from repro.metrics import profile_table, usage_profile
from repro.trace import validate_trace
from repro.trace.events import NO_ID
from repro.trace.filter import filter_application, filter_chares, slice_time


# -- slicing ------------------------------------------------------------------
def test_slice_time_keeps_window(jacobi_trace):
    mid = jacobi_trace.end_time() / 2
    part = slice_time(jacobi_trace, 0.0, mid)
    validate_trace(part)
    assert 0 < len(part.executions) < len(jacobi_trace.executions)
    assert all(ex.start <= mid for ex in part.executions)
    assert all(iv.end <= mid + 1e-9 for iv in part.idles)


def test_slice_halves_cover_everything(jacobi_trace):
    mid = jacobi_trace.end_time() / 2
    first = slice_time(jacobi_trace, 0.0, mid)
    second = slice_time(jacobi_trace, mid, jacobi_trace.end_time())
    # Executions straddling the cut appear in both halves; none vanish.
    assert len(first.executions) + len(second.executions) >= len(
        jacobi_trace.executions
    )


def test_sliced_trace_still_analyzable(jacobi_trace):
    mid = jacobi_trace.end_time() / 2
    part = slice_time(jacobi_trace, 0.0, mid)
    structure = extract_logical_structure(part)
    assert structure.max_step >= 0
    assert sum(len(p) for p in structure.phases) == len(part.events)


def test_cut_sends_leave_untraced_receives(jacobi_trace):
    late = slice_time(jacobi_trace, jacobi_trace.end_time() / 2,
                      jacobi_trace.end_time())
    halves = [m for m in late.messages if m.send_event == NO_ID]
    assert halves  # messages from the first half arrive untraced


def test_filter_chares(jacobi_trace):
    keep = jacobi_trace.application_chares()[:4]
    part = filter_chares(jacobi_trace, keep)
    assert {ex.chare for ex in part.executions} <= set(keep)
    with pytest.raises(ValueError, match="unknown chare"):
        filter_chares(jacobi_trace, [9999])


def test_filter_application_drops_runtime(jacobi_trace):
    part = filter_application(jacobi_trace)
    assert all(not part.is_runtime_chare(ex.chare) for ex in part.executions)
    structure = extract_logical_structure(part)
    assert structure.runtime_phases() == []


def test_bad_window_rejected(jacobi_trace):
    with pytest.raises(ValueError, match=">= start"):
        slice_time(jacobi_trace, 10.0, 5.0)


# -- profile ---------------------------------------------------------------------
def test_profile_counts(jacobi_trace):
    profile = usage_profile(jacobi_trace)
    update = profile.entries["JacobiBlock::update"]
    assert update.calls == 16 * 3  # 16 chares x 3 iterations
    assert update.mean_time == pytest.approx(update.total_time / update.calls)
    assert update.max_time >= update.mean_time


def test_profile_totals_match_trace(jacobi_trace):
    profile = usage_profile(jacobi_trace)
    total = sum(ep.total_time for ep in profile.entries.values())
    by_exec = sum(ex.duration() for ex in jacobi_trace.executions)
    assert total == pytest.approx(by_exec)


def test_pe_utilization_bounds(jacobi_trace):
    profile = usage_profile(jacobi_trace)
    assert len(profile.pes) == jacobi_trace.num_pes
    for util in profile.pes:
        assert 0.0 <= util.utilization <= 1.0
        assert util.overhead <= util.busy


def test_profile_table_renders(jacobi_trace):
    text = profile_table(usage_profile(jacobi_trace))
    assert "JacobiBlock::update" in text
    assert "util%" in text
