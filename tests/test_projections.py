"""Projections-format round trip and error handling."""

import pytest

from repro.core import extract_logical_structure
from repro.core.patterns import kind_sequence
from repro.trace.projections import (
    ProjectionsFormatError,
    read_projections,
    write_projections,
)


@pytest.fixture()
def roundtripped(tmp_path, jacobi_trace):
    files = write_projections(jacobi_trace, tmp_path / "jac")
    assert len(files) == 1 + jacobi_trace.num_pes
    return read_projections(tmp_path / "jac.sts")


def test_counts_preserved(jacobi_trace, roundtripped):
    back = roundtripped
    assert back.num_pes == jacobi_trace.num_pes
    assert len(back.executions) == len(jacobi_trace.executions)
    # Application chares and runtime chares survive with their classes.
    assert len(back.application_chares()) == len(jacobi_trace.application_chares())
    assert len(back.runtime_chares()) == len(jacobi_trace.runtime_chares())


def test_messages_rematched(jacobi_trace, roundtripped):
    orig_complete = sum(m.is_complete() for m in jacobi_trace.messages)
    back_complete = sum(m.is_complete() for m in roundtripped.messages)
    assert back_complete == orig_complete


def test_sdag_metadata_survives(jacobi_trace, roundtripped):
    orig = {e.sdag_ordinal for e in jacobi_trace.entries if e.is_sdag_serial}
    back = {e.sdag_ordinal for e in roundtripped.entries if e.is_sdag_serial}
    assert back == orig


def test_idle_preserved(jacobi_trace, roundtripped):
    assert len(roundtripped.idles) == len(jacobi_trace.idles)


def test_same_logical_structure(jacobi_trace, roundtripped):
    original = kind_sequence(extract_logical_structure(jacobi_trace))
    back = kind_sequence(extract_logical_structure(roundtripped))
    assert back == original


def test_untraced_invocations_survive(tmp_path, pdes_trace):
    files = write_projections(pdes_trace, tmp_path / "pdes")
    back = read_projections(tmp_path / "pdes.sts")
    orig_untraced = sum(1 for x in pdes_trace.executions if x.recv_event < 0)
    back_untraced = sum(1 for x in back.executions if x.recv_event < 0)
    assert back_untraced == orig_untraced
    # The Figure 24 concurrency survives the format.
    structure = extract_logical_structure(back)
    app = structure.application_phases()
    rt = structure.runtime_phases()
    assert {p.leap for p in app} & {p.leap for p in rt}


def test_missing_log_rejected(tmp_path, jacobi_trace):
    write_projections(jacobi_trace, tmp_path / "jac")
    (tmp_path / "jac.3.log").unlink()
    with pytest.raises(ProjectionsFormatError, match="missing log"):
        read_projections(tmp_path / "jac.sts")


def test_bad_sts_rejected(tmp_path):
    sts = tmp_path / "bad.sts"
    sts.write_text("MACHINE x\nEND\n")
    with pytest.raises(ProjectionsFormatError, match="PROCESSORS"):
        read_projections(sts)


def test_unknown_record_rejected(tmp_path, jacobi_trace):
    write_projections(jacobi_trace, tmp_path / "jac")
    log = tmp_path / "jac.0.log"
    log.write_text(log.read_text() + "42 1 2 3\n")
    with pytest.raises(ProjectionsFormatError, match="unknown record"):
        read_projections(tmp_path / "jac.sts")
