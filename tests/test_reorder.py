"""Idealized-replay reordering (Section 3.2.1, Figures 7 and 9)."""

from repro.core.initial import build_initial
from repro.core.reorder import (
    _assign_w,
    physical_order,
    reordered_order_mp,
    reordered_order_task,
)
from repro.trace.events import EventKind
from tests.helpers import SyntheticTrace


def test_physical_order_sorted_by_time():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "w", 0, 0.0, 5.0, [("send", "x", 3.0), ("send", "y", 1.0)])
    trace = st.build()
    orders = physical_order(trace, [0, 1])
    times = [trace.events[e].time for e in orders[a]]
    assert times == sorted(times)


def _w_for(trace, initial):
    events = [e.id for e in trace.events]
    return _assign_w(trace, events, set(events), initial.block_of_event)


def test_w_initial_sends_count_up():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "w", 0, 0.0, 3.0,
             [("send", "x", 0.5), ("send", "y", 1.0), ("send", "z", 1.5)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    w = _w_for(trace, initial)
    assert [w[e] for e in range(3)] == [0, 1, 2]


def test_w_receive_is_send_plus_one():
    st = SyntheticTrace(num_pes=1)
    a, b = st.chare("A"), st.chare("B")
    st.block(a, "w", 0, 0.0, 2.0, [("send", "x", 0.5), ("send", "y", 1.0)])
    st.block(b, "r", 0, 3.0, 6.0, [("recv", "y", 3.0), ("send", "z", 4.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    w = _w_for(trace, initial)
    assert w[2] == w[1] + 1  # recv of y
    assert w[3] == w[2] + 1  # send after the receive counts up from it


def test_fig7_tie_break_by_invoking_chare():
    """Figure 7: two blocks on the gray chare arrive with equal w; the one
    invoked by the lower-id chare sorts first."""
    st = SyntheticTrace(num_pes=1)
    blue = st.chare("blue")    # id 0
    white = st.chare("white")  # id 1
    gray = st.chare("gray")    # id 2
    st.block(blue, "s", 0, 0.0, 1.0, [("send", "from_blue", 0.5)])
    st.block(white, "s", 0, 0.0, 1.0, [("send", "from_white", 0.5)])
    # Physically, white's message lands first — reordering must still put
    # blue's block first (tie on w, then invoker chare id).
    st.block(gray, "sink", 0, 2.0, 3.0, [("recv", "from_white", 2.0)])
    st.block(gray, "sink", 0, 4.0, 5.0, [("recv", "from_blue", 4.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    events = [e.id for e in trace.events]
    orders = reordered_order_task(trace, events, initial.block_of_event)
    gray_order = orders[gray]
    invokers = []
    for ev in gray_order:
        mid = trace.message_by_recv[ev]
        send = trace.messages[mid].send_event
        invokers.append(trace.events[send].chare)
    assert invokers == [blue, white]


def test_task_reorder_keeps_within_block_order():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "w", 0, 0.0, 3.0,
             [("send", "x", 0.5), ("send", "y", 1.0), ("send", "z", 1.5)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    orders = reordered_order_task(trace, [0, 1, 2], initial.block_of_event)
    assert orders[a] == [0, 1, 2]


def test_fig9_mp_send_pinned_receives_reorder():
    """Figure 9 analogue: receives with w 3,7,1 precede a send (w=8); a
    late receive with w=5 moves before the send; receives sort 1,3,5,7 and
    the send stays last."""
    st = SyntheticTrace(num_pes=2)
    p = st.chare("P", pe=0)

    def chain(label, depth, t0):
        """A dedicated sender chare whose self-chain gives P's receive of
        ``label`` the w value 2*depth - 1."""
        q = st.chare(f"Q_{label}", pe=1)
        prev = None
        t = t0
        for d in range(depth):
            evs = []
            if prev is not None:
                evs.append(("recv", prev, t))
            lbl = f"{label}_{d}" if d < depth - 1 else label
            evs.append(("send", lbl, t + 0.1))
            st.block(q, "hop", 1, t, t + 0.2, evs)
            prev = lbl
            t += 0.3

    chain("w3", 2, 0.0)
    chain("w7", 4, 10.0)
    chain("w1", 1, 20.0)
    chain("w5", 3, 30.0)
    # P: receives in physical order w3, w7, w1, then a send, then w5 late.
    st.block(p, "MPI_Recv", 0, 40.0, 41.0, [("recv", "w3", 40.0)])
    st.block(p, "MPI_Recv", 0, 41.0, 42.0, [("recv", "w7", 41.0)])
    st.block(p, "MPI_Recv", 0, 42.0, 43.0, [("recv", "w1", 42.0)])
    st.block(p, "MPI_Send", 0, 43.0, 44.0, [("send", "out", 43.0)])
    st.block(p, "MPI_Recv", 0, 45.0, 46.0, [("recv", "w5", 45.0)])
    trace = st.build()
    initial = build_initial(trace, mode="mpi")
    events = [e.id for e in trace.events]
    orders = reordered_order_mp(trace, events, initial.block_of_event)
    p_events = orders[p]
    kinds = [trace.events[e].kind for e in p_events]
    # The send stays last: every receive has smaller w than the send.
    assert kinds == [EventKind.RECV] * 4 + [EventKind.SEND]
    # Receives sort by w (1, 3, 5, 7), i.e. physical times 42, 40, 45, 41.
    times = [trace.events[e].time for e in p_events[:4]]
    assert times == [42.0, 40.0, 45.0, 41.0]


def test_mp_send_w_counts_past_preceding_receives():
    st = SyntheticTrace(num_pes=2)
    p = st.chare("P", pe=0)
    q = st.chare("Q", pe=1)
    st.block(q, "MPI_Send", 1, 0.0, 1.0, [("send", "a", 0.0)])
    st.block(p, "MPI_Recv", 0, 2.0, 3.0, [("recv", "a", 2.0)])
    st.block(p, "MPI_Send", 0, 3.0, 4.0, [("send", "b", 3.0)])
    trace = st.build()
    initial = build_initial(trace, mode="mpi")
    events = [e.id for e in trace.events]
    # Verify via ordering: the send stays after the receive.
    orders = reordered_order_mp(trace, events, initial.block_of_event)
    assert [trace.events[e].kind for e in orders[p]] == [EventKind.RECV, EventKind.SEND]
