"""Dependency merge, cycle merge, and serial-block repair (Algorithms 1-2)."""

from repro.core.initial import build_initial
from repro.core.merges import cycle_merge, dependency_merge, repair_merge
from repro.core.partition import EdgeKind
from tests.helpers import SyntheticTrace


def _ring_trace(n=4):
    """Figure 3: each chare invokes recvResult on its neighbour."""
    st = SyntheticTrace(num_pes=1)
    chares = [st.chare(f"C{i}") for i in range(n)]
    for i, c in enumerate(chares):
        st.block(c, "serial_0", 0, i * 1.0, i * 1.0 + 0.5,
                 [("send", f"m{i}", i * 1.0)], sdag=True, ordinal=0)
    for i, c in enumerate(chares):
        src = (i - 1) % n
        st.block(c, "recvResult", 0, 10.0 + i, 10.5 + i,
                 [("recv", f"m{src}", 10.0 + i)], sdag=True, ordinal=1)
    return st.build()


def test_fig3_ring_dependency_and_cycle_merge():
    """The ring of invocations collapses into a single phase (Figure 3d)."""
    trace = _ring_trace()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    assert state.num_partitions() == 8
    dependency_merge(state)
    assert state.num_partitions() == 1


def test_dependency_merge_without_cycle_keeps_chain():
    """A linear pipeline merges endpoint pairs but stays multiple phases."""
    st = SyntheticTrace(num_pes=1)
    a, b, c = st.chare("A"), st.chare("B"), st.chare("C")
    st.block(a, "s", 0, 0.0, 1.0, [("send", "ab", 0.5)])
    st.block(b, "r", 0, 2.0, 4.0, [("recv", "ab", 2.0), ("send", "bc", 3.0)])
    st.block(c, "r2", 0, 5.0, 6.0, [("recv", "bc", 5.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    dependency_merge(state)
    # A+B's recv merge; B's send and C merge; but B's block keeps all its
    # events in one piece, so everything is transitively one partition.
    assert state.num_partitions() == 1


def test_dependency_merge_does_not_cross_app_runtime():
    """A contribute-style call into a runtime chare stays an edge."""
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    b = st.chare("B")
    mgr = st.chare("Mgr", is_runtime=True)
    st.block(a, "w", 0, 0.0, 2.0, [("send", "app", 0.5), ("send", "rt", 1.0)])
    st.block(b, "r", 0, 3.0, 4.0, [("recv", "app", 3.0)])
    st.block(mgr, "c", 0, 3.0, 4.0, [("recv", "rt", 3.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    dependency_merge(state)
    # App partition (A's app piece + B) and runtime partition (A's rt
    # piece + Mgr) remain distinct.
    assert state.num_partitions() == 2
    roots = state.roots()
    flags = sorted(state.is_runtime(r) for r in roots)
    assert flags == [False, True]


def test_cycle_merge_contracts_scc_only():
    st = SyntheticTrace(num_pes=1)
    chares = [st.chare(f"C{i}") for i in range(3)]
    blocks = []
    for i, c in enumerate(chares):
        blocks.append(st.block(c, "w", 0, i * 1.0, i * 1.0 + 0.5,
                               [("send", f"x{i}", i * 1.0)]))
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    # Construct a 2-cycle between partitions 0 and 1; partition 2 dangles.
    state.add_edge(0, 1, EdgeKind.INFERRED)
    state.add_edge(1, 0, EdgeKind.INFERRED)
    state.add_edge(1, 2, EdgeKind.INFERRED)
    eliminated = cycle_merge(state)
    assert eliminated == 1
    assert state.num_partitions() == 2


def test_cycle_merge_noop_on_dag():
    trace = _ring_trace()
    initial = build_initial(trace, mode="charm")
    assert cycle_merge(initial.state) == 0


def test_repair_merge_preserves_sandwich_split():
    """A block split app|runtime|app keeps three phases: rejoining the
    outer app pieces would force a cycle through the runtime piece and
    wrongly collapse the runtime phase into the application phase."""
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    b = st.chare("B")
    c = st.chare("C")
    mgr = st.chare("Mgr", is_runtime=True)
    st.block(a, "w", 0, 0.0, 4.0, [
        ("send", "to_b", 1.0),
        ("send", "to_mgr", 2.0),
        ("send", "to_c", 3.0),
    ])
    st.block(b, "rb", 0, 5.0, 6.0, [("recv", "to_b", 5.0)])
    st.block(mgr, "rm", 0, 5.0, 6.0, [("recv", "to_mgr", 5.0)])
    st.block(c, "rc", 0, 7.0, 8.0, [("recv", "to_c", 7.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    assert state.num_partitions() == 6  # 3 pieces of A + 3 receivers
    dependency_merge(state)
    # {A1+B}, {A2+Mgr}, {A3+C} = 3 partitions.
    assert state.num_partitions() == 3
    repair_merge(initial)
    assert state.num_partitions() == 3


def test_repair_merge_groups_successors_by_entry_fig4():
    """Figure 4: runtime phase followed per-chare by the same serial entry
    -> those application partitions merge even without messages."""
    st = SyntheticTrace(num_pes=1)
    mgr = st.chare("Mgr", is_runtime=True)
    chares = [st.chare(f"C{i}") for i in range(3)]
    # Manager broadcasts a result to each chare (runtime-related recvs).
    st.block(mgr, "deliver", 0, 0.0, 1.0,
             [("send", f"d{i}", 0.5) for i in range(3)])
    # Each chare: a block whose recv is runtime-related and whose local
    # sends go... nowhere shared — only the entry type links them.
    for i, c in enumerate(chares):
        st.block(c, "resume", 0, 2.0 + i, 3.0 + i,
                 [("recv", f"d{i}", 2.0 + i), ("send", f"self{i}", 2.5 + i)],
                 sdag=True, ordinal=0)
    for i, c in enumerate(chares):
        st.block(c, "next", 0, 6.0 + i, 7.0 + i,
                 [("recv", f"self{i}", 6.0 + i)], sdag=True, ordinal=1)
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    dependency_merge(state)
    before = state.num_partitions()
    repair_merge(initial)
    after = state.num_partitions()
    assert after < before
    # All three chares' app phases are now one partition plus the runtime
    # partition: exactly two.
    assert after == 2
