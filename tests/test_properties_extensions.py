"""Property-based tests for the extension subsystems."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import extract_logical_structure
from repro.trace import validate_trace
from repro.trace.clocksync import (
    apply_clock_skew,
    count_violations,
    synchronize_trace,
)
from repro.trace.filter import filter_chares, slice_time
from repro.trace.projections import read_projections, write_projections
from tests.test_properties import _random_trace


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    offsets=st.lists(st.floats(-200.0, 200.0), min_size=5, max_size=5),
)
def test_synchronize_always_repairs(seed, offsets):
    trace = _random_trace(seed, 8, 30, 0.1)
    skewed = apply_clock_skew(trace, offsets[: trace.num_pes]
                              + [0.0] * max(0, trace.num_pes - len(offsets)))
    fixed, stats = synchronize_trace(skewed)
    assert stats.violations_after == 0
    assert count_violations(fixed) == 0
    # Repair never loses records.
    assert len(fixed.events) == len(trace.events)
    assert len(fixed.executions) == len(trace.executions)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    lo=st.floats(0.0, 0.5),
    width=st.floats(0.1, 1.0),
)
def test_slice_is_consistent_subtrace(seed, lo, width):
    trace = _random_trace(seed, 6, 25, 0.2)
    end = trace.end_time() or 1.0
    part = slice_time(trace, lo * end, min(end, (lo + width) * end))
    validate_trace(part)
    # Kept executions are a subset (by coordinates).
    orig = {(ex.chare, ex.pe, ex.start, ex.end) for ex in trace.executions}
    assert all((ex.chare, ex.pe, ex.start, ex.end) in orig
               for ex in part.executions)
    # The slice stays analyzable.
    structure = extract_logical_structure(part)
    assert sum(len(p) for p in structure.phases) == len(part.events)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), pick=st.integers(1, 5))
def test_filter_chares_subset(seed, pick):
    trace = _random_trace(seed, 8, 25, 0.2)
    keep = list(range(min(pick, len(trace.chares))))
    part = filter_chares(trace, keep)
    assert {ex.chare for ex in part.executions} <= set(keep)
    validate_trace(part)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_projections_roundtrip_random_traces(seed, tmp_path_factory):
    trace = _random_trace(seed, 6, 25, 0.3)
    base = tmp_path_factory.mktemp("proj") / "trace"
    write_projections(trace, base)
    back = read_projections(str(base) + ".sts")
    assert back.num_pes == trace.num_pes
    assert len(back.executions) == len(trace.executions)
    assert (sum(m.is_complete() for m in back.messages)
            == sum(m.is_complete() for m in trace.messages))
    validate_trace(back, check_pe_overlap=False)
