"""Each structural invariant of validate_trace fires on the right input."""

import pytest

from repro.trace.events import EventKind
from repro.trace.model import TraceBuilder
from repro.trace.validate import TraceValidationError, validate_trace


def _base():
    b = TraceBuilder(num_pes=2)
    c = b.add_chare("A")
    e = b.add_entry("go")
    return b, c, e


def test_valid_trace_passes(jacobi_trace):
    validate_trace(jacobi_trace)


def test_exec_end_before_start():
    b, c, e = _base()
    b.add_execution(c, e, 0, 5.0, 1.0)
    with pytest.raises(TraceValidationError, match="end"):
        validate_trace(b.build())


def test_event_outside_execution_span():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    b.add_event(EventKind.SEND, c, 0, 9.0, x)
    with pytest.raises(TraceValidationError, match="outside"):
        validate_trace(b.build())


def test_event_chare_mismatch():
    b, c, e = _base()
    other = b.add_chare("B")
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    b.add_event(EventKind.SEND, other, 0, 0.5, x)
    with pytest.raises(TraceValidationError, match="chare"):
        validate_trace(b.build())


def test_recv_before_send_rejected():
    b, c, e = _base()
    other = b.add_chare("B", home_pe=1)
    x1 = b.add_execution(c, e, 0, 5.0, 6.0)
    send = b.add_event(EventKind.SEND, c, 0, 5.5, x1)
    x2 = b.add_execution(other, e, 1, 0.0, 1.0)
    recv = b.add_event(EventKind.RECV, other, 1, 0.5, x2)
    b.add_message(send_event=send, recv_event=recv)
    with pytest.raises(TraceValidationError, match="precedes"):
        validate_trace(b.build())


def test_reused_recv_event_rejected():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    recv = b.add_event(EventKind.RECV, c, 0, 0.5, x)
    b.add_message(recv_event=recv)
    b.add_message(recv_event=recv)
    with pytest.raises(TraceValidationError, match="reused"):
        validate_trace(b.build())


def test_message_endpoint_kind_checked():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 2.0)
    ev1 = b.add_event(EventKind.RECV, c, 0, 0.5, x)
    ev2 = b.add_event(EventKind.RECV, c, 0, 1.0, x)
    b.add_message(send_event=ev1, recv_event=ev2)
    with pytest.raises(TraceValidationError, match="not a SEND"):
        validate_trace(b.build())


def test_pe_overlap_detected():
    b, c, e = _base()
    other = b.add_chare("B")
    b.add_execution(c, e, 0, 0.0, 10.0)
    b.add_execution(other, e, 0, 5.0, 6.0)
    with pytest.raises(TraceValidationError, match="overlaps"):
        validate_trace(b.build())
    validate_trace(b.build(), check_pe_overlap=False)


def test_bad_idle_pe_rejected():
    b, c, e = _base()
    b.add_idle(7, 0.0, 1.0)
    with pytest.raises(TraceValidationError, match="bad pe"):
        validate_trace(b.build())


def test_recv_event_exec_linkage_checked():
    b, c, e = _base()
    x1 = b.add_execution(c, e, 0, 0.0, 1.0)
    x2 = b.add_execution(c, e, 0, 2.0, 3.0)
    recv = b.add_event(EventKind.RECV, c, 0, 0.5, x1)
    b.add_message(recv_event=recv)
    b.set_execution_recv(x2, recv)
    with pytest.raises(TraceValidationError, match="belongs to exec"):
        validate_trace(b.build())
