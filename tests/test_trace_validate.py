"""Each structural invariant of validate_trace fires on the right input."""

import pytest

from repro.core.pipeline import extract_logical_structure
from repro.trace.events import EventKind
from repro.trace.model import TraceBuilder
from repro.trace.validate import (
    TraceValidationError,
    collect_trace_problems,
    validate_trace,
)
from repro.verify import check_structure


def _base():
    b = TraceBuilder(num_pes=2)
    c = b.add_chare("A")
    e = b.add_entry("go")
    return b, c, e


def test_valid_trace_passes(jacobi_trace):
    validate_trace(jacobi_trace)


def test_exec_end_before_start():
    b, c, e = _base()
    b.add_execution(c, e, 0, 5.0, 1.0)
    with pytest.raises(TraceValidationError, match="end"):
        validate_trace(b.build())


def test_event_outside_execution_span():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    b.add_event(EventKind.SEND, c, 0, 9.0, x)
    with pytest.raises(TraceValidationError, match="outside"):
        validate_trace(b.build())


def test_event_chare_mismatch():
    b, c, e = _base()
    other = b.add_chare("B")
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    b.add_event(EventKind.SEND, other, 0, 0.5, x)
    with pytest.raises(TraceValidationError, match="chare"):
        validate_trace(b.build())


def test_recv_before_send_rejected():
    b, c, e = _base()
    other = b.add_chare("B", home_pe=1)
    x1 = b.add_execution(c, e, 0, 5.0, 6.0)
    send = b.add_event(EventKind.SEND, c, 0, 5.5, x1)
    x2 = b.add_execution(other, e, 1, 0.0, 1.0)
    recv = b.add_event(EventKind.RECV, other, 1, 0.5, x2)
    b.add_message(send_event=send, recv_event=recv)
    with pytest.raises(TraceValidationError, match="precedes"):
        validate_trace(b.build())


def test_reused_recv_event_rejected():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    recv = b.add_event(EventKind.RECV, c, 0, 0.5, x)
    b.add_message(recv_event=recv)
    b.add_message(recv_event=recv)
    with pytest.raises(TraceValidationError, match="reused"):
        validate_trace(b.build())


def test_message_endpoint_kind_checked():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 2.0)
    ev1 = b.add_event(EventKind.RECV, c, 0, 0.5, x)
    ev2 = b.add_event(EventKind.RECV, c, 0, 1.0, x)
    b.add_message(send_event=ev1, recv_event=ev2)
    with pytest.raises(TraceValidationError, match="not a SEND"):
        validate_trace(b.build())


def test_pe_overlap_detected():
    b, c, e = _base()
    other = b.add_chare("B")
    b.add_execution(c, e, 0, 0.0, 10.0)
    b.add_execution(other, e, 0, 5.0, 6.0)
    with pytest.raises(TraceValidationError, match="overlaps"):
        validate_trace(b.build())
    validate_trace(b.build(), check_pe_overlap=False)


def test_bad_idle_pe_rejected():
    b, c, e = _base()
    b.add_idle(7, 0.0, 1.0)
    with pytest.raises(TraceValidationError, match="bad pe"):
        validate_trace(b.build())


def test_recv_event_exec_linkage_checked():
    b, c, e = _base()
    x1 = b.add_execution(c, e, 0, 0.0, 1.0)
    x2 = b.add_execution(c, e, 0, 2.0, 3.0)
    recv = b.add_event(EventKind.RECV, c, 0, 0.5, x1)
    b.add_message(recv_event=recv)
    b.set_execution_recv(x2, recv)
    with pytest.raises(TraceValidationError, match="belongs to exec"):
        validate_trace(b.build())


# ---------------------------------------------------------------------------
# Edge cases: degenerate but legal traces must validate and verify cleanly
# ---------------------------------------------------------------------------
def test_empty_trace_validates():
    trace = TraceBuilder(num_pes=1).build()
    assert collect_trace_problems(trace) == []
    validate_trace(trace)
    structure = extract_logical_structure(trace)
    assert structure.phases == []
    assert check_structure(structure) == []


def test_zero_pe_trace_tolerates_pe_zero_idle():
    # num_pes=0 is degenerate; pe 0 is still accepted (clamped to 1 PE)
    # but anything beyond that is a bad id.
    b = TraceBuilder(num_pes=0)
    b.add_idle(0, 0.0, 1.0)
    validate_trace(b.build())
    b2 = TraceBuilder(num_pes=0)
    b2.add_idle(5, 0.0, 1.0)
    with pytest.raises(TraceValidationError, match="bad pe"):
        validate_trace(b2.build())


def test_single_event_trace_validates():
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    b.add_event(EventKind.SEND, c, 0, 0.5, x)
    trace = b.build()
    assert collect_trace_problems(trace) == []
    structure = extract_logical_structure(trace)
    assert len(structure.phases) == 1
    assert structure.max_step == 0
    assert check_structure(structure) == []


def test_out_of_range_event_chare_does_not_crash():
    # Reported as a bad id, without indexing past the chare table.
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    b.add_event(EventKind.SEND, 99, 0, 0.5, x)
    problems = collect_trace_problems(b.build())
    assert any(p.invariant == "event-ids" for p in problems)


def test_out_of_range_message_endpoint_does_not_crash():
    # The builder indexes endpoints at build time, so corruption can only
    # arrive post-construction (e.g. a buggy transform); the validator
    # must flag it instead of crashing on the lookup.
    b, c, e = _base()
    x = b.add_execution(c, e, 0, 0.0, 2.0)
    send = b.add_event(EventKind.SEND, c, 0, 0.5, x)
    recv = b.add_event(EventKind.RECV, c, 0, 1.0, x)
    b.add_message(send_event=send, recv_event=recv)
    trace = b.build()
    trace.messages[0].send_event = 12345
    problems = collect_trace_problems(trace)
    assert any(p.invariant == "message-ids" for p in problems)


def test_chare_never_reappearing_is_p2_exempt():
    # B acts only at the start; its phase legitimately has no successor
    # holding B — the P2 exemption, not a violation.
    b = TraceBuilder(num_pes=2)
    e = b.add_entry("go")
    ca = b.add_chare("A")
    cb = b.add_chare("B", home_pe=1)
    xb = b.add_execution(cb, e, 1, 0.0, 1.0)
    send = b.add_event(EventKind.SEND, cb, 1, 0.5, xb)
    xa1 = b.add_execution(ca, e, 0, 2.0, 3.0)
    recv = b.add_event(EventKind.RECV, ca, 0, 2.1, xa1)
    b.add_message(send_event=send, recv_event=recv)
    s2 = b.add_event(EventKind.SEND, ca, 0, 2.5, xa1)
    xa2 = b.add_execution(ca, e, 0, 4.0, 5.0)
    r2 = b.add_event(EventKind.RECV, ca, 0, 4.1, xa2)
    b.add_message(send_event=s2, recv_event=r2)
    trace = b.build()
    validate_trace(trace)
    structure = extract_logical_structure(trace)
    assert check_structure(structure) == []
    # B really does disappear after its first (and only) phase
    b_phases = [p for p in structure.phases if cb in p.chares]
    assert len(b_phases) == 1
