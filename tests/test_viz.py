"""ASCII rendering and structured export."""

import csv
import json

from repro.metrics import differential_duration
from repro.viz import (
    render_logical,
    render_metric,
    render_physical,
    structure_to_json,
    structure_to_rows,
    write_csv,
)


def test_render_logical_dimensions(jacobi_structure):
    out = render_logical(jacobi_structure)
    lines = out.splitlines()
    assert len(lines) == len(jacobi_structure.trace.chares)
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # rectangular grid
    # Grid width covers all steps.
    assert lines[0].endswith("|")


def test_render_logical_runtime_rows_last(jacobi_structure):
    out = render_logical(jacobi_structure)
    lines = out.splitlines()
    trace = jacobi_structure.trace
    n_rt = len(trace.runtime_chares())
    assert n_rt > 0
    for line in lines[-n_rt:]:
        assert "CkReductionMgr" in line or "Main" not in line


def test_render_logical_max_steps_truncates(jacobi_structure):
    out = render_logical(jacobi_structure, max_steps=5)
    label_width = out.splitlines()[0].index("|")
    assert all(len(l) <= label_width + 7 for l in out.splitlines())


def test_render_metric_symbols(jacobi_structure):
    metric = differential_duration(jacobi_structure).by_event
    out = render_metric(jacobi_structure, metric)
    body = "".join(l.split("|", 1)[1] for l in out.splitlines())
    assert set(body) <= set(" .|0123456789")


def test_render_physical_shows_executions(jacobi_trace, jacobi_structure):
    out = render_physical(jacobi_trace, jacobi_structure, bins=60)
    assert out
    # Without a structure, executions show as '#'.
    plain = render_physical(jacobi_trace, bins=60)
    assert "#" in plain


def test_structure_rows_complete(jacobi_structure):
    rows = structure_to_rows(jacobi_structure)
    stepped = sum(1 for s in jacobi_structure.step_of_event if s >= 0)
    assert len(rows) == stepped
    assert all(r["step"] >= 0 for r in rows)
    steps = [r["step"] for r in rows]
    assert steps == sorted(steps)


def test_structure_json_parses(jacobi_structure):
    doc = json.loads(structure_to_json(jacobi_structure))
    assert doc["summary"]["phases"] == len(jacobi_structure.phases)
    assert len(doc["phases"]) == len(jacobi_structure.phases)
    assert doc["events"]


def test_json_includes_metrics(jacobi_structure):
    metric = differential_duration(jacobi_structure).by_event
    doc = json.loads(structure_to_json(jacobi_structure, {"diff": metric}))
    assert all("diff" in row for row in doc["events"])


def test_write_csv(tmp_path, jacobi_structure):
    path = tmp_path / "out.csv"
    write_csv(jacobi_structure, path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert rows and "step" in rows[0]


def test_render_physical_pe(jacobi_trace, jacobi_structure):
    from repro.viz import render_physical_pe

    out = render_physical_pe(jacobi_trace, jacobi_structure, bins=60)
    lines = out.splitlines()
    assert len(lines) == jacobi_trace.num_pes
    assert lines[0].strip().startswith("PE 0")
    body = "".join(l.split("|", 1)[1] for l in lines)
    assert "-" in body  # idle shows up


def test_render_html(jacobi_structure):
    from repro.viz import render_html

    doc = render_html(jacobi_structure, title="t<42>")
    assert doc.startswith("<!DOCTYPE html>")
    assert "t&lt;42&gt;" in doc
    assert "Usage profile" in doc
