"""Array sections: multicast and section reductions."""

import pytest

from repro.core import extract_logical_structure
from repro.sim.charm import Chare, CharmRuntime
from repro.trace import validate_trace
from repro.trace.events import EventKind


class Grid(Chare):
    """Members of `row_section` sum (column index + 1) to a single client."""

    RESULTS = []

    def init(self, **kw):
        self.row_section = None

    def go(self, section):
        section.multicast_from(self._ctx(), "row_work", None, size=32)

    def row_work(self, _msg):
        self.compute(2.0)
        self.row_section.contribute(
            self, float(self.index[1] + 1), "sum",
            ("send", self.array[(0, 0)], "row_done"),
        )

    def row_done(self, total):
        Grid.RESULTS.append(total)


class BcastGrid(Chare):
    """Like Grid, but the section reduction broadcasts to the section."""

    RESULTS = []

    def init(self, **kw):
        self.row_section = None

    def go(self, section):
        section.multicast_from(self._ctx(), "row_work", None, size=32)

    def row_work(self, _msg):
        self.compute(1.0)
        self.row_section.contribute(self, 1.0, "sum",
                                    ("broadcast", "bcast_back"))

    def bcast_back(self, total):
        BcastGrid.RESULTS.append((self.index, total))


def _grid(cls=Grid, pes=3, shape=(3, 3)):
    cls.RESULTS = []
    rt = CharmRuntime(num_pes=pes)
    arr = rt.create_array("Grid", cls, shape=shape)
    return rt, arr


def _wire(arr, section):
    for c in arr:
        c.row_section = section


def test_multicast_reaches_only_members():
    rt, arr = _grid()
    row0 = arr.section([(0, j) for j in range(3)])
    _wire(arr, row0)
    rt.seed(arr[(0, 0)], "go", row0)
    rt.run()
    trace = rt.finish()
    validate_trace(trace)
    workers = {trace.chares[x.chare].name for x in trace.executions
               if trace.entry(x.entry).name.endswith("row_work")}
    assert workers == {"Grid[0, 0]", "Grid[0, 1]", "Grid[0, 2]"}


def test_multicast_single_send_event():
    rt, arr = _grid()
    row0 = arr.section([(0, j) for j in range(3)])
    _wire(arr, row0)
    rt.seed(arr[(0, 0)], "go", row0)
    rt.run()
    trace = rt.finish()
    go_exec = next(x for x in trace.executions
                   if trace.entry(x.entry).name.endswith("go"))
    sends = [e for e in trace.events_of(go_exec.id)
             if trace.events[e].kind == EventKind.SEND]
    assert len(sends) == 1
    assert len(trace.messages_by_send[sends[0]]) == 3


def test_section_reduction_value():
    rt, arr = _grid()
    row0 = arr.section([(0, j) for j in range(3)])
    _wire(arr, row0)
    rt.seed(arr[(0, 0)], "go", row0)
    rt.run()
    assert Grid.RESULTS == [6.0]  # 1 + 2 + 3


def test_section_reduction_broadcast_target():
    rt, arr = _grid(cls=BcastGrid)
    row1 = arr.section([(1, j) for j in range(3)])
    _wire(arr, row1)
    rt.seed(arr[(1, 0)], "go", row1)
    rt.run()
    got = sorted(BcastGrid.RESULTS)
    assert got == [((1, 0), 3.0), ((1, 1), 3.0), ((1, 2), 3.0)]


def test_two_sections_reduce_independently():
    rt, arr = _grid(pes=2, shape=(2, 4))
    top = arr.section([(0, j) for j in range(4)])
    bottom = arr.section([(1, j) for j in range(4)])
    for c in arr:
        c.row_section = top if c.index[0] == 0 else bottom
    rt.seed(arr[(0, 0)], "go", top)
    rt.seed(arr[(1, 0)], "go", bottom)
    rt.run()
    # Each row sums 1+2+3+4 = 10, delivered to (0, 0) twice.
    assert sorted(Grid.RESULTS) == [10.0, 10.0]


def test_section_member_validation():
    rt, arr = _grid()
    row0 = arr.section([(0, 0), (0, 1)])
    with pytest.raises(ValueError, match="not a member"):
        row0.contribute(arr[(2, 2)], 1.0, "sum", None)


def test_duplicate_members_rejected():
    rt, arr = _grid()
    with pytest.raises(ValueError, match="duplicate"):
        arr.section([(0, 0), (0, 0)])


def test_empty_section_rejected():
    rt, arr = _grid()
    with pytest.raises(ValueError, match="at least one"):
        arr.section([])


def test_section_phase_spans_only_members():
    rt, arr = _grid(pes=3, shape=(3, 3))
    row2 = arr.section([(2, j) for j in range(3)])
    _wire(arr, row2)
    rt.seed(arr[(2, 0)], "go", row2)
    rt.run()
    trace = rt.finish()
    structure = extract_logical_structure(trace)
    members = {arr[(2, j)].trace_id for j in range(3)}
    for phase in structure.application_phases():
        app_chares = {c for c in phase.chares
                      if not trace.is_runtime_chare(c)}
        assert app_chares <= members
