"""Concurrent StructureCache stress: get/put/prune must never tear.

The cache (and the serve-side ArtifactStore built on it) is hit from
many threads and processes at once — CLI batch runs, service worker
threads, and a pruning `repro cache` invocation can all share one
directory.  The invariants under fire:

* no operation ever raises, even when entries vanish mid-scan
  (the TOCTOU window between ``glob`` and ``stat``/``unlink``);
* a ``get`` returns either ``None`` or a **complete** payload — a torn
  or half-written entry is never served (atomic tmp + ``os.replace``);
* quota pruning converges under contention instead of crashing on
  files another racer already removed.

Every payload carries an internal checksum so tearing is detectable:
``sum(payload["fill"]) == payload["sum"]`` must hold for every hit.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading

import pytest

from repro.batch import StructureCache

pytestmark = pytest.mark.faults


def _key(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


def _payload(i: int) -> dict:
    fill = [i] * 64
    return {"entry": i, "fill": fill, "sum": sum(fill)}


def _check(payload: dict) -> None:
    assert sum(payload["fill"]) == payload["sum"], "torn cache entry served"


def _hammer(directory: str, seed: int, rounds: int = 120,
            keyspace: int = 24) -> int:
    """One racer: interleaved put/get/prune over a shared directory.

    Deterministic per seed (no RNG: the schedule interleaving is the
    randomness).  Returns the number of hits, so callers can assert the
    cache actually served traffic during the race.
    """
    cache = StructureCache(directory, max_entries=keyspace // 2,
                           max_bytes=64 * 1024, shard_prefix=2,
                           max_shard_bytes=16 * 1024)
    hits = 0
    for step in range(rounds):
        i = (step * 7 + seed * 13) % keyspace
        cache.put(_key(i), _payload(i))
        got = cache.get(_key((step * 5 + seed) % keyspace))
        if got is not None:
            _check(got)
            hits += 1
        if step % 17 == seed % 17:
            cache.prune(max_entries=keyspace // 3)
        if step % 23 == seed % 23:
            cache.stats()
    return hits


def test_threaded_racers_share_one_cache_object(tmp_path):
    cache = StructureCache(tmp_path / "cache", max_entries=12,
                           max_bytes=64 * 1024, shard_prefix=2,
                           max_shard_bytes=16 * 1024)
    errors = []

    def racer(seed: int) -> None:
        try:
            for step in range(150):
                i = (step * 11 + seed * 3) % 24
                cache.put(_key(i), _payload(i))
                got = cache.get(_key((step + seed * 7) % 24))
                if got is not None:
                    _check(got)
                if step % 19 == seed % 19:
                    cache.prune(max_entries=8)
        except Exception as exc:  # propagated to the assertion below
            errors.append(f"racer {seed}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=racer, args=(s,)) for s in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    stats = cache.stats()
    assert stats["disk_entries"] <= 12
    for shard in stats["shards"].values():
        assert shard["bytes"] <= 16 * 1024


def test_threaded_racers_with_separate_cache_objects(tmp_path):
    """Distinct cache instances over one directory (the service + a
    concurrent `repro cache prune` look exactly like this)."""
    directory = str(tmp_path / "cache")
    errors = []
    hits = []

    def racer(seed: int) -> None:
        try:
            hits.append(_hammer(directory, seed))
        except Exception as exc:
            errors.append(f"racer {seed}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=racer, args=(s,)) for s in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert sum(hits) > 0  # the race actually exercised the read path


def test_process_racers_never_tear(tmp_path):
    directory = str(tmp_path / "cache")
    with multiprocessing.Pool(4) as pool:
        hits = pool.starmap(_hammer, [(directory, seed) for seed in range(4)])
    # _hammer raises (failing the worker, and so starmap) on any torn
    # entry or unexpected exception; surviving means the invariant held.
    assert sum(hits) > 0
    # Every surviving entry must still be complete, valid JSON.
    cache = StructureCache(directory)
    for i in range(24):
        got = cache.get(_key(i))
        if got is not None:
            _check(got)


def test_prune_tolerates_entries_vanishing_midway(tmp_path):
    """The TOCTOU fix: a file deleted between scan and stat/unlink is
    treated as already-evicted, not an error."""
    cache = StructureCache(tmp_path / "cache", shard_prefix=2)
    for i in range(8):
        cache.put(_key(i), _payload(i))
    # Pull the rug out from under half the entries.
    victims = [path for j, path in
               enumerate(sorted(cache.directory.glob("*/*.json"))) if j % 2]
    for path in victims:
        path.unlink()
    cache.prune(max_entries=2)  # must not raise
    assert cache.stats()["disk_entries"] <= 2

    # The stat fallback itself: a missing path sorts as LRU-oldest.
    assert StructureCache._mtime_or_oldest(
        tmp_path / "cache" / "nope.json") == 0.0
