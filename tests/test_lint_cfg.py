"""repro.lint.cfg / repro.lint.dataflow: the flow-aware analysis core.

The CFG tests pin the *edge shapes* the rules depend on — branch
true/false edges, loop back edges, return/break routing through
``finally``, exception edges into dispatch nodes — because every rule
bug so far has really been a graph-shape bug.  The dataflow tests pin
the four analyses (dominance, post-dominance, reaching definitions,
obligation tracking) against hand-checkable graphs.
"""

import ast
import textwrap

import pytest

from repro.lint import (
    build_cfg,
    dominators,
    path_with_await,
    postdominators,
    reaching_definitions,
    track_obligations,
)
from repro.lint.dataflow import await_before_kill

pytestmark = pytest.mark.lint


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return build_cfg(node)
    raise AssertionError(f"no function {name!r} in fixture")


def node_at(cfg, line, kind=None):
    """The unique CFG node anchored at ``line`` (optionally by kind)."""
    matches = [n for n in cfg.nodes.values()
               if n.line == line and (kind is None or n.kind == kind)]
    assert len(matches) == 1, f"line {line}: {matches}"
    return matches[0]


def edge_kinds(cfg, src, dst):
    return sorted(e.kind for e in cfg.out_edges(src) if e.dst == dst)


# ---------------------------------------------------------------------------
# Graph shapes
# ---------------------------------------------------------------------------
def test_linear_body_chains_next_edges():
    cfg = cfg_of(
        """
        def f():
            a = 1
            b = a
        """
    )
    first = node_at(cfg, 3)
    second = node_at(cfg, 4)
    assert edge_kinds(cfg, cfg.entry, first.id) == ["next"]
    assert edge_kinds(cfg, first.id, second.id) == ["next"]
    assert edge_kinds(cfg, second.id, cfg.exit) == ["next"]


def test_if_header_owns_test_and_branches_rejoin():
    cfg = cfg_of(
        """
        def f(cond):
            if cond:
                a = 1
            else:
                a = 2
            b = a
        """
    )
    test = node_at(cfg, 3, kind="test")
    assert [ast.dump(e) for e in test.exprs] == [
        ast.dump(ast.parse("cond", mode="eval").body)]
    then = node_at(cfg, 4)
    other = node_at(cfg, 6)
    join = node_at(cfg, 7)
    assert edge_kinds(cfg, test.id, then.id) == ["true"]
    assert edge_kinds(cfg, test.id, other.id) == ["false"]
    assert edge_kinds(cfg, then.id, join.id) == ["next"]
    assert edge_kinds(cfg, other.id, join.id) == ["next"]


def test_if_without_else_falls_through_on_false():
    cfg = cfg_of(
        """
        def f(cond):
            if cond:
                a = 1
            b = 2
        """
    )
    test = node_at(cfg, 3, kind="test")
    after = node_at(cfg, 5)
    assert edge_kinds(cfg, test.id, after.id) == ["false"]


def test_while_loop_back_edge_and_exit():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n = n - 1
            done = True
        """
    )
    header = node_at(cfg, 3, kind="loop")
    body = node_at(cfg, 4)
    after = node_at(cfg, 5)
    assert edge_kinds(cfg, header.id, body.id) == ["true"]
    assert header.id in set(cfg.successors(body.id))  # back edge
    assert edge_kinds(cfg, header.id, after.id) == ["false"]


def test_break_skips_loop_continue_returns_to_header():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                if item:
                    break
                continue
            done = True
        """
    )
    header = node_at(cfg, 3, kind="loop")
    brk = node_at(cfg, 5)
    cont = node_at(cfg, 6)
    after = node_at(cfg, 7)
    assert set(cfg.successors(brk.id)) == {after.id}
    assert set(cfg.successors(cont.id)) == {header.id}


def test_return_routes_to_exit_and_orphans_dead_code():
    cfg = cfg_of(
        """
        def f():
            return 1
            unreachable = True
        """
    )
    ret = node_at(cfg, 3)
    assert set(cfg.successors(ret.id)) == {cfg.exit}
    dead = node_at(cfg, 4)
    assert dead.id not in cfg.reachable()


def test_raise_routes_to_raise_exit():
    cfg = cfg_of(
        """
        def f():
            raise ValueError("no")
        """
    )
    raise_node = node_at(cfg, 3)
    assert cfg.raise_exit in set(cfg.successors(raise_node.id))
    # The raise edge is exceptional flow, not normal flow.
    assert cfg.raise_exit not in set(cfg.normal_successors(raise_node.id))


def test_call_gets_exception_edge_into_dispatch():
    cfg = cfg_of(
        """
        def f(work):
            try:
                work()
            except ValueError:
                handled = True
        """
    )
    call = node_at(cfg, 4)
    dispatch = node_at(cfg, 3, kind="dispatch")
    handler = node_at(cfg, 5, kind="except")
    assert edge_kinds(cfg, call.id, dispatch.id) == ["exc"]
    assert edge_kinds(cfg, dispatch.id, handler.id) == ["exc"]
    # A ValueError handler is not a catch-all: unmatched exceptions
    # keep propagating from the dispatch node.
    assert cfg.raise_exit in set(cfg.successors(dispatch.id))


def test_catch_all_handler_stops_propagation():
    cfg = cfg_of(
        """
        def f(work):
            try:
                work()
            except Exception:
                handled = True
        """
    )
    dispatch = node_at(cfg, 3, kind="dispatch")
    assert cfg.raise_exit not in set(cfg.successors(dispatch.id))


def test_return_in_try_flows_through_finally():
    cfg = cfg_of(
        """
        def f(work):
            try:
                return work()
            finally:
                cleanup = True
        """
    )
    ret = node_at(cfg, 4)
    fin = node_at(cfg, 6)
    # The return does not shortcut to exit: it enters the finally body,
    # whose exit then re-dispatches the captured return.
    assert set(cfg.successors(ret.id)) == {fin.id}
    assert cfg.exit in set(cfg.successors(fin.id))


def test_exception_reaches_raise_exit_via_finally():
    cfg = cfg_of(
        """
        def f(work):
            try:
                work()
            finally:
                cleanup = True
        """
    )
    call = node_at(cfg, 4)
    fin = node_at(cfg, 6)
    assert fin.id in set(cfg.successors(call.id))
    assert edge_kinds(cfg, fin.id, cfg.raise_exit) == ["exc"]


def test_with_header_owns_items_and_may_raise():
    cfg = cfg_of(
        """
        def f(path):
            with open(path) as fh:
                data = fh.read()
        """
    )
    header = node_at(cfg, 3, kind="with")
    assert any(isinstance(e, ast.Call) for e in header.exprs)
    assert cfg.raise_exit in set(cfg.successors(header.id))


def test_await_marks_node_not_a_separate_node():
    cfg = cfg_of(
        """
        async def f(q):
            before = 1
            item = await q.get()
            async with q.lock:
                pass
        """
    )
    assert not node_at(cfg, 3).awaits
    assert node_at(cfg, 4).awaits
    assert node_at(cfg, 5, kind="with").awaits  # __aenter__ awaits


def test_nested_functions_are_opaque():
    cfg = cfg_of(
        """
        def outer():
            def inner():
                await_free = open("x")
            return inner
        """,
        name="outer",
    )
    # The inner body contributes no nodes and no exception edges: the
    # def statement is one opaque node with a single normal out-edge.
    assert all(node.line != 4 for node in cfg.nodes.values())
    inner_def = node_at(cfg, 3)
    assert [e.kind for e in cfg.out_edges(inner_def.id)] == ["next"]


# ---------------------------------------------------------------------------
# Dataflow analyses
# ---------------------------------------------------------------------------
def test_dominators_branch_vs_header():
    cfg = cfg_of(
        """
        def f(cond):
            if cond:
                a = 1
            else:
                a = 2
            b = a
        """
    )
    test = node_at(cfg, 3, kind="test")
    then = node_at(cfg, 4)
    join = node_at(cfg, 7)
    dom = dominators(cfg)
    assert test.id in dom[join.id]
    assert then.id not in dom[join.id]


def test_postdominators_cover_exception_outcomes():
    cfg = cfg_of(
        """
        def f(work):
            try:
                work()
            finally:
                cleanup = True
            after = True
        """
    )
    call = node_at(cfg, 4)
    fin = node_at(cfg, 6)
    after = node_at(cfg, 7)
    pdom = postdominators(cfg)
    # The finally body is on every outcome of the call — normal and
    # exceptional — so it post-dominates; the statement after the try
    # is skipped when the call raises, so it does not.
    assert fin.id in pdom[call.id]
    assert after.id not in pdom[call.id]


def test_reaching_definitions_merge_at_join():
    cfg = cfg_of(
        """
        def f(cond):
            x = 1
            if cond:
                x = 2
            use = x
        """
    )
    first = node_at(cfg, 3)
    second = node_at(cfg, 5)
    use = node_at(cfg, 6)
    reaching = reaching_definitions(
        cfg, {first.id: ["x"], second.id: ["x"]})
    assert ("x", first.id) in reaching[use.id]   # via the false branch
    assert ("x", second.id) in reaching[use.id]  # via the true branch


def test_reaching_definitions_kill_on_straight_line():
    cfg = cfg_of(
        """
        def f():
            x = 1
            x = 2
            use = x
        """
    )
    first = node_at(cfg, 3)
    second = node_at(cfg, 4)
    use = node_at(cfg, 5)
    reaching = reaching_definitions(
        cfg, {first.id: ["x"], second.id: ["x"]})
    assert reaching[use.id] == {("x", second.id)}


def test_track_obligations_leaks_only_unkilled_paths():
    cfg = cfg_of(
        """
        def f(cond):
            res = acquire()
            if cond:
                release(res)
        """
    )
    gen = node_at(cfg, 3)
    kill = node_at(cfg, 5)
    leaked_normal, _ = track_obligations(
        cfg, {gen.id: ["res"]}, {kill.id: ["res"]})
    assert (gen.id, "res") in leaked_normal


def test_track_obligations_discharged_on_all_paths():
    cfg = cfg_of(
        """
        def f(cond):
            res = acquire()
            if cond:
                release(res)
            else:
                release(res)
        """
    )
    gen = node_at(cfg, 3)
    kills = {node_at(cfg, 5).id: ["res"], node_at(cfg, 7).id: ["res"]}
    leaked_normal, _ = track_obligations(cfg, {gen.id: ["res"]}, kills)
    assert leaked_normal == set()


def test_obligation_not_generated_on_creators_own_exception_edge():
    cfg = cfg_of(
        """
        def f():
            res = acquire()
        """
    )
    gen = node_at(cfg, 3)
    leaked_normal, leaked_exc = track_obligations(
        cfg, {gen.id: ["res"]}, {})
    # Never discharged, so the normal path leaks — but acquire()
    # raising means the resource never existed, so the creator's own
    # exception edge carries no obligation.
    assert leaked_normal == {(gen.id, "res")}
    assert leaked_exc == set()


def test_path_with_await_positive_and_negative():
    cfg = cfg_of(
        """
        async def f(q):
            before = self.n
            await q.get()
            self.n = before + 1
            after = self.n
        """
    )
    read = node_at(cfg, 3)
    write = node_at(cfg, 5)
    after = node_at(cfg, 6)
    assert path_with_await(cfg, read.id, write.id)
    assert not path_with_await(cfg, write.id, after.id)


def test_await_before_kill_release_order():
    cfg = cfg_of(
        """
        async def f(lock, q):
            lock.acquire()
            lock.release()
            await q.get()
        """
    )
    acquire = node_at(cfg, 3)
    release = node_at(cfg, 4)
    assert not await_before_kill(cfg, acquire.id, {release.id})
    assert await_before_kill(cfg, acquire.id, set())
