"""Section 3.1.4: source inference, leap merge, ordering, chare paths."""

from repro.core.inference import (
    enforce_chare_paths,
    infer_source_dependencies,
    leap_merge,
    order_overlapping,
    partition_initial_events,
)
from repro.core.initial import build_initial
from repro.core.leaps import compute_leaps
from repro.core.merges import dependency_merge
from repro.core.partition import EdgeKind
from tests.helpers import SyntheticTrace


def _disconnected_rounds(rounds=3, chares=3):
    """Each chare starts a partition per round; no messages connect the
    rounds — the situation where control flowed through the runtime."""
    st = SyntheticTrace(num_pes=1)
    ids = [st.chare(f"C{i}") for i in range(chares)]
    for r in range(rounds):
        for i, c in enumerate(ids):
            peer = ids[(i + 1) % chares]
            st.block(c, f"round", 0, r * 10.0 + i, r * 10.0 + i + 0.4,
                     [("send", f"m{r}_{i}", r * 10.0 + i)])
            st.block(peer, f"recv", 0, r * 10.0 + i + 5, r * 10.0 + i + 5.4,
                     [("recv", f"m{r}_{i}", r * 10.0 + i + 5)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    dependency_merge(initial.state)
    return initial.state


def test_partition_initial_events_first_per_chare():
    state = _disconnected_rounds(rounds=1)
    init = partition_initial_events(state)
    for root, by_chare in init.items():
        events = state.partition_events()[root]
        for chare, ev in by_chare.items():
            earlier = [e for e in events
                       if state.trace.events[e].chare == chare
                       and state.trace.events[e].time < state.trace.events[ev].time]
            assert not earlier


def test_fig5_source_inference_orders_rounds():
    """Figure 5(a-b): physical order of partition-starting sends per chare
    becomes happened-before edges between the rounds."""
    state = _disconnected_rounds(rounds=3)
    assert max(compute_leaps(state).values()) == 0  # fully concurrent
    infer_source_dependencies(state)
    leaps = compute_leaps(state)
    assert max(leaps.values()) == 2  # rounds now sequence


def test_fig5c_leap_merge_unifies_overlapping():
    """Figure 5(c): same-leap partitions with overlapping chares merge."""
    state = _disconnected_rounds(rounds=3)
    infer_source_dependencies(state)
    before = state.num_partitions()
    leap_merge(state)
    after = state.num_partitions()
    assert after <= before
    # One phase per round.
    assert after == 3
    # Property 1 holds: no chare overlap within a leap.
    leaps = compute_leaps(state)
    chares = state.partition_chares()
    by_leap = {}
    for root, k in leaps.items():
        for c in chares[root]:
            assert (k, c) not in by_leap
            by_leap[(k, c)] = root


def test_order_overlapping_app_runtime_by_time():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    mgr = st.chare("Mgr", is_runtime=True)
    # Two unconnected partitions sharing chare A: one app, one runtime.
    st.block(a, "app_work", 0, 0.0, 1.0, [("send", "x", 0.5)])
    st.block(a, "rt_touch", 0, 5.0, 6.0, [("send", "y", 5.5)])
    st.block(a, "sink", 0, 7.0, 8.0, [("recv", "x", 7.0)])
    st.block(mgr, "m", 0, 9.0, 10.0, [("recv", "y", 9.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    dependency_merge(state)
    leaps = compute_leaps(state)
    assert len(set(leaps.values())) == 1  # overlapping at leap 0
    order_overlapping(state, cross_class_only=True)
    leaps = compute_leaps(state)
    # Now ordered: the earlier (app) partition precedes the runtime one.
    roots = state.roots()
    app = [r for r in roots if not state.is_runtime(r)][0]
    rt = [r for r in roots if state.is_runtime(r)][0]
    assert leaps[app] < leaps[rt]


def test_order_overlapping_all_when_inference_disabled():
    """The Figure 17 mode: overlaps are sequenced by physical time; where
    the pairwise orders conflict (a cycle), the partitions merge — the
    paper's "inability to order suggests we should merge" principle."""
    state = _disconnected_rounds(rounds=2)
    order_overlapping(state, cross_class_only=False)
    # Within each round the three pair-partitions conflict cyclically and
    # merge; the two rounds are sequenced.
    assert state.num_partitions() == 2
    leaps = compute_leaps(state)
    chares = state.partition_chares()
    seen = set()
    for root, k in leaps.items():
        for c in chares[root]:
            assert (k, c) not in seen
            seen.add((k, c))


def test_fig6_enforce_chare_paths_adds_edge():
    """Figure 6: phase X's successors must span its chares; the gray chare
    reappearing in phase S two leaps later gets an X->S edge."""
    st = SyntheticTrace(num_pes=1)
    gray = st.chare("gray")
    blue = st.chare("blue")
    # Four hand-wired partitions (receives untraced so messages don't
    # merge them): X{gray,blue} -> Q{blue} -> S{gray,blue}.
    st.block(gray, "x", 0, 0.0, 1.0, [("send", "gx", 0.0)])
    st.block(blue, "x", 0, 1.5, 2.0, [("recv", "gx", 1.5)])
    st.block(blue, "q", 0, 3.0, 3.5, [("recv", "uq", 3.0)])
    st.block(blue, "s", 0, 4.0, 5.0, [("recv", "us", 4.0)])
    st.block(gray, "s", 0, 4.0, 5.0, [("recv", "ug", 4.5)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    dependency_merge(state)
    roots = state.roots()
    chares = state.partition_chares()
    x = next(r for r in roots if chares[r] == {gray, blue})
    q = next(r for r in roots if chares[r] == {blue}
             and 3.0 <= state.trace.events[state.partition_events()[r][0]].time < 4.0)
    s_blue = next(r for r in roots if chares[r] == {blue} and r != q
                  and state.trace.events[state.partition_events()[r][0]].time >= 4.0)
    s_gray = next(r for r in roots if chares[r] == {gray} and r != x)
    state.add_edge(x, q, EdgeKind.INFERRED)
    state.add_edge(q, s_blue, EdgeKind.INFERRED)
    state.add_edge(q, s_gray, EdgeKind.INFERRED)

    succs_before, _ = state.adjacency()
    covered = set()
    for child in succs_before[x]:
        covered |= chares[child]
    assert gray not in covered  # X's direct successors miss gray

    added = enforce_chare_paths(state)
    assert added >= 1
    succs_after, _ = state.adjacency()
    covered = set()
    for child in succs_after[x]:
        covered |= chares[child]
    assert gray in covered


def test_enforce_chare_paths_no_op_when_covered():
    state = _disconnected_rounds(rounds=2)
    infer_source_dependencies(state)
    leap_merge(state)
    order_overlapping(state, cross_class_only=True)
    first = enforce_chare_paths(state)
    again = enforce_chare_paths(state)
    assert again == 0 or again <= first
