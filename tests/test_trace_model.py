"""Unit tests for the trace data model and its derived indexes."""

import pytest

from repro.trace.events import EventKind
from repro.trace.model import TraceBuilder
from tests.helpers import SyntheticTrace


def _two_chare_trace():
    st = SyntheticTrace(num_pes=2)
    a = st.chare("A", pe=0)
    b = st.chare("B", pe=1)
    mgr = st.chare("Mgr", pe=0, is_runtime=True)
    st.block(a, "work", 0, 0.0, 5.0, [("send", "m1", 1.0), ("send", "r1", 2.0)])
    st.block(b, "work", 1, 6.0, 8.0, [("recv", "m1", 6.0)])
    st.block(mgr, "collect", 0, 7.0, 9.0, [("recv", "r1", 7.0)])
    return st.build(), a, b, mgr


def test_events_by_execution_sorted_by_time():
    trace, a, b, mgr = _two_chare_trace()
    evs = trace.events_of(0)
    times = [trace.events[e].time for e in evs]
    assert times == sorted(times)
    assert len(evs) == 2


def test_message_indexes():
    trace, a, b, mgr = _two_chare_trace()
    for msg in trace.messages:
        assert msg.is_complete()
        assert trace.message_by_recv[msg.recv_event] == msg.id
        assert msg.id in trace.messages_by_send[msg.send_event]


def test_partner_chares_send_and_recv():
    trace, a, b, mgr = _two_chare_trace()
    send_to_b = trace.events_of(0)[0]
    assert trace.partner_chares(send_to_b) == [b]
    recv_on_b = trace.events_of(1)[0]
    assert trace.partner_chares(recv_on_b) == [a]


def test_runtime_related_classification():
    trace, a, b, mgr = _two_chare_trace()
    send_to_b, send_to_mgr = trace.events_of(0)
    assert not trace.event_is_runtime_related(send_to_b)
    assert trace.event_is_runtime_related(send_to_mgr)
    recv_on_mgr = trace.events_of(2)[0]
    assert trace.event_is_runtime_related(recv_on_mgr)


def test_chare_partitioning_helpers():
    trace, a, b, mgr = _two_chare_trace()
    assert set(trace.application_chares()) == {a, b}
    assert trace.runtime_chares() == [mgr]
    assert trace.is_runtime_chare(mgr)
    assert not trace.is_runtime_chare(a)


def test_end_time_and_executions_by_pe():
    trace, *_ = _two_chare_trace()
    assert trace.end_time() == pytest.approx(9.0)
    assert len(trace.executions_by_pe[0]) == 2
    assert len(trace.executions_by_pe[1]) == 1


def test_executions_by_chare_time_ordered():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "late", 0, 10.0, 11.0)
    st.block(a, "early", 0, 0.0, 1.0)
    trace = st.build()
    names = [trace.entry(trace.executions[x].entry).name
             for x in trace.executions_by_chare[a]]
    assert names == ["early", "late"]


def test_unmatched_recv_has_no_partner():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "work", 0, 0.0, 1.0, [("recv", "never_sent", 0.0)])
    trace = st.build()
    ev = trace.events_of(0)[0]
    assert trace.partner_chares(ev) == []
    mid = trace.message_by_recv[ev]
    assert not trace.messages[mid].is_complete()


def test_builder_broadcast_shares_send_event():
    b = TraceBuilder(num_pes=1)
    c = b.add_chare("A")
    e = b.add_entry("go")
    x = b.add_execution(c, e, 0, 0.0, 1.0)
    send = b.add_event(EventKind.SEND, c, 0, 0.5, x)
    m1 = b.add_message(send_event=send)
    m2 = b.add_message(send_event=send)
    trace = b.build()
    assert trace.messages_by_send[send] == [m1, m2]


def test_idles_sorted_per_pe():
    st = SyntheticTrace(num_pes=1)
    st.chare("A")
    st.idle(0, 5.0, 6.0)
    st.idle(0, 1.0, 2.0)
    trace = st.build()
    starts = [iv.start for iv in trace.idles_by_pe[0]]
    assert starts == [1.0, 5.0]


def test_zero_length_idle_dropped():
    b = TraceBuilder(num_pes=1)
    b.add_idle(0, 3.0, 3.0)
    assert b.build().idles == []
