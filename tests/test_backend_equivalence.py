"""The columnar backends are pure implementation details.

For every bundled proxy app, extracting with ``backend="python"``,
``backend="columnar"``, and ``backend="columnar_batched"`` must assign
bit-identical steps and phases — not merely equivalent partitions.  The
columnar kernels go out of their way to replay the python
implementation's insertion and tie-break orders, and the batched
union-find kernel replays the sequential union-by-size decision stream;
this is the test that holds them to it, including on the fault corpus
under ingestion repair and under PE-sharded multi-core partition builds.
"""

from __future__ import annotations

import pytest

from repro.api import PipelineOptions, PipelineStats, extract
from repro.apps import (
    btsweep,
    jacobi2d,
    lassen,
    lulesh,
    mergetree,
    multigrid,
    nasbt,
    pdes,
    sssp,
)
from repro.core.columnar import HAVE_NUMPY
from repro.trace.faults import FAULT_KINDS, inject_fault

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")

#: The non-reference backends; each must be bit-identical to "python".
COLUMNAR_FAMILY = ("columnar", "columnar_batched")

APPS = {
    "jacobi2d": lambda: jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=7),
    "lulesh": lambda: lulesh.run_charm(chares=8, pes=4, iterations=2, seed=3),
    "lassen": lambda: lassen.run_charm(chares=8, pes=4, iterations=3, seed=1),
    "pdes": lambda: pdes.run(chares=8, pes=4, seed=5),
    "mergetree": lambda: mergetree.run(ranks=8, seed=2),
    "nasbt": lambda: nasbt.run(ranks=9, iterations=2, seed=4),
    "btsweep": lambda: btsweep.run(tiles=(3, 3), pes=4, iterations=2, seed=6),
    "multigrid": lambda: multigrid.run(fine=(8, 8), pes=4, cycles=2, seed=8),
    "sssp": lambda: sssp.run(nodes=40, edges=120, parts=8, pes=4, seed=9)[0],
}


@pytest.mark.parametrize("backend", COLUMNAR_FAMILY)
@pytest.mark.parametrize("app", sorted(APPS))
def test_backends_bit_identical(app, backend):
    trace = APPS[app]()
    py = extract(trace, PipelineOptions(backend="python"))
    col = extract(trace, PipelineOptions(backend=backend))
    assert py.step_of_event == col.step_of_event
    assert py.phase_of_event == col.phase_of_event
    assert py.local_step_of_event == col.local_step_of_event


@pytest.mark.parametrize("backend", COLUMNAR_FAMILY)
@pytest.mark.parametrize("app", ["lulesh", "lassen"])
def test_backends_bit_identical_mpi(app, backend):
    run = lulesh.run_mpi if app == "lulesh" else lassen.run_mpi
    trace = run(ranks=8, iterations=2, seed=3)
    py = extract(trace, PipelineOptions(backend="python"))
    col = extract(trace, PipelineOptions(backend=backend))
    assert py.step_of_event == col.step_of_event
    assert py.phase_of_event == col.phase_of_event


@pytest.mark.parametrize("backend", COLUMNAR_FAMILY)
@pytest.mark.parametrize("overrides", [
    {"order": "physical"},
    {"infer": False},
    {"tie_break": "index"},
])
def test_backends_bit_identical_under_options(overrides, backend):
    trace = APPS["jacobi2d"]()
    py = extract(trace, PipelineOptions(backend="python"), **overrides)
    col = extract(trace, PipelineOptions(backend=backend), **overrides)
    assert py.step_of_event == col.step_of_event
    assert py.phase_of_event == col.phase_of_event


# ---------------------------------------------------------------------------
# Fault corpus: bit-identity must survive damaged inputs under repair.
# The repaired trace feeds repair_merge's rule paths, which the batched
# kernel accelerates — exactly where a divergence would hide.
# ---------------------------------------------------------------------------
@pytest.mark.faults
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_backends_bit_identical_on_fault_corpus(kind):
    trace = inject_fault(APPS["jacobi2d"](), kind, seed=11)
    results = {
        backend: extract(trace, PipelineOptions(backend=backend, repair="fix"))
        for backend in ("python",) + COLUMNAR_FAMILY
    }
    py = results["python"]
    for backend in COLUMNAR_FAMILY:
        other = results[backend]
        assert py.step_of_event == other.step_of_event, (kind, backend)
        assert py.phase_of_event == other.phase_of_event, (kind, backend)
        assert py.local_step_of_event == other.local_step_of_event, (
            kind, backend)


# ---------------------------------------------------------------------------
# Multi-core partition build: sharding is result-neutral by construction.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_shard_workers_bit_identical(workers):
    trace = APPS["lulesh"]()
    base = extract(trace, PipelineOptions(backend="columnar_batched"))
    sharded = extract(trace, PipelineOptions(
        backend="columnar_batched", shard_workers=workers))
    assert base.step_of_event == sharded.step_of_event
    assert base.phase_of_event == sharded.phase_of_event
    assert base.local_step_of_event == sharded.local_step_of_event


# ---------------------------------------------------------------------------
# Stage reporting: stats must name the backend that actually ran per stage.
# ---------------------------------------------------------------------------
def test_stage_backend_stats_shape(jacobi_trace):
    stats = PipelineStats()
    extract(jacobi_trace, PipelineOptions(backend="columnar_batched"),
            stats=stats)
    assert stats.backend == "columnar_batched"
    assert set(stats.stage_backends) == set(stats.stage_seconds)
    assert set(stats.stage_backends.values()) == {"columnar_batched"}


def test_stage_backend_stats_python(jacobi_trace):
    stats = PipelineStats()
    extract(jacobi_trace, PipelineOptions(backend="python"), stats=stats)
    assert set(stats.stage_backends.values()) == {"python"}


def test_auto_backend_selects_columnar(jacobi_trace):
    structure = extract(jacobi_trace, PipelineOptions(backend="auto"))
    assert structure.options.resolve_backend() == "columnar_batched"
