"""The columnar backend is a pure implementation detail.

For every bundled proxy app, extracting with ``backend="python"`` and
``backend="columnar"`` must assign bit-identical steps and phases — not
merely equivalent partitions.  The columnar kernels go out of their way
to replay the python implementation's insertion and tie-break orders;
this is the test that holds them to it.
"""

from __future__ import annotations

import pytest

from repro.api import PipelineOptions, extract
from repro.apps import (
    btsweep,
    jacobi2d,
    lassen,
    lulesh,
    mergetree,
    multigrid,
    nasbt,
    pdes,
    sssp,
)
from repro.core.columnar import HAVE_NUMPY

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")

APPS = {
    "jacobi2d": lambda: jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=7),
    "lulesh": lambda: lulesh.run_charm(chares=8, pes=4, iterations=2, seed=3),
    "lassen": lambda: lassen.run_charm(chares=8, pes=4, iterations=3, seed=1),
    "pdes": lambda: pdes.run(chares=8, pes=4, seed=5),
    "mergetree": lambda: mergetree.run(ranks=8, seed=2),
    "nasbt": lambda: nasbt.run(ranks=9, iterations=2, seed=4),
    "btsweep": lambda: btsweep.run(tiles=(3, 3), pes=4, iterations=2, seed=6),
    "multigrid": lambda: multigrid.run(fine=(8, 8), pes=4, cycles=2, seed=8),
    "sssp": lambda: sssp.run(nodes=40, edges=120, parts=8, pes=4, seed=9)[0],
}


@pytest.mark.parametrize("app", sorted(APPS))
def test_backends_bit_identical(app):
    trace = APPS[app]()
    py = extract(trace, PipelineOptions(backend="python"))
    col = extract(trace, PipelineOptions(backend="columnar"))
    assert py.step_of_event == col.step_of_event
    assert py.phase_of_event == col.phase_of_event
    assert py.local_step_of_event == col.local_step_of_event


@pytest.mark.parametrize("app", ["lulesh", "lassen"])
def test_backends_bit_identical_mpi(app):
    run = lulesh.run_mpi if app == "lulesh" else lassen.run_mpi
    trace = run(ranks=8, iterations=2, seed=3)
    py = extract(trace, PipelineOptions(backend="python"))
    col = extract(trace, PipelineOptions(backend="columnar"))
    assert py.step_of_event == col.step_of_event
    assert py.phase_of_event == col.phase_of_event


@pytest.mark.parametrize("overrides", [
    {"order": "physical"},
    {"infer": False},
    {"tie_break": "index"},
])
def test_backends_bit_identical_under_options(overrides):
    trace = APPS["jacobi2d"]()
    py = extract(trace, PipelineOptions(backend="python"), **overrides)
    col = extract(trace, PipelineOptions(backend="columnar"), **overrides)
    assert py.step_of_event == col.step_of_event
    assert py.phase_of_event == col.phase_of_event


def test_auto_backend_selects_columnar(jacobi_trace):
    structure = extract(jacobi_trace, PipelineOptions(backend="auto"))
    assert structure.options.resolve_backend() == "columnar"
