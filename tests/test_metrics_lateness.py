"""Traditional lateness baseline."""

import pytest

from repro.metrics import lateness


def test_lateness_nonnegative_and_zero_min_per_step(jacobi_structure):
    late = lateness(jacobi_structure)
    assert late
    assert all(v >= 0 for v in late.values())
    by_step = {}
    for ev, v in late.items():
        by_step.setdefault(jacobi_structure.step_of_event[ev], []).append(v)
    for values in by_step.values():
        assert min(values) == pytest.approx(0.0)


def test_lateness_measures_time_spread(jacobi_structure):
    late = lateness(jacobi_structure)
    trace = jacobi_structure.trace
    by_step = {}
    for ev, v in late.items():
        by_step.setdefault(jacobi_structure.step_of_event[ev], []).append((ev, v))
    for step, pairs in by_step.items():
        times = [trace.events[e].time for e, _ in pairs]
        lo = min(times)
        for ev, v in pairs:
            assert v == pytest.approx(trace.events[ev].time - lo)
