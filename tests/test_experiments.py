"""Experiment registry and runner."""

import pytest

from repro.cli import main
from repro.experiments import (
    Claim,
    Experiment,
    all_experiments,
    get,
    run_experiment,
)


def test_registry_covers_every_figure():
    ids = {e.id for e in all_experiments()}
    assert ids == {"fig01", "fig08", "fig10", "fig12-15", "fig16", "fig17",
                   "fig18-19", "fig20", "fig23", "fig24"}


def test_get_unknown_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get("fig99")


def test_run_small_experiments_pass():
    for exp_id in ("fig08", "fig16", "fig24"):
        report = run_experiment(get(exp_id))
        assert report.passed, report.summary()
        assert report.results
        assert report.seconds > 0


def test_failing_claim_reported():
    exp = Experiment(
        id="synthetic", title="always fails", paper="-",
        build=lambda: {"x": 1},
        claims=[Claim("x is two", lambda a: a["x"] == 2),
                Claim("x is one", lambda a: a["x"] == 1)],
    )
    report = run_experiment(exp)
    assert not report.passed
    assert report.results == [("x is two", False), ("x is one", True)]
    assert "FAIL" in report.summary()


def test_raising_claim_is_a_failure():
    exp = Experiment(
        id="synthetic", title="raises", paper="-",
        build=lambda: {},
        claims=[Claim("boom", lambda a: a["missing"])],
    )
    report = run_experiment(exp)
    assert not report.passed
    assert "KeyError" in report.results[0][0]


def test_broken_build_reported():
    exp = Experiment(
        id="synthetic", title="bad build", paper="-",
        build=lambda: 1 / 0,
        claims=[],
    )
    report = run_experiment(exp)
    assert not report.passed
    assert "ZeroDivisionError" in report.error


def test_cli_list(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig16" in out and "fig24" in out


def test_cli_run_selected(capsys):
    assert main(["experiments", "fig08"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "1/1 experiments passed" in out
