"""The repro.api facade: one flat namespace, one extract entry point."""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.api as api
from repro.core.pipeline import extract_logical_structure
from repro.verify import StageHook, StageRecorder


def test_all_names_importable():
    for name in api.__all__:
        assert hasattr(api, name), name


def test_package_reexports_facade():
    assert repro.extract is api.extract
    assert repro.PipelineOptions is api.PipelineOptions
    assert repro.BatchExtractor is api.BatchExtractor


def test_extract_accepts_trace_and_path(jacobi_trace, tmp_path):
    path = tmp_path / "t.jsonl"
    api.write_trace(jacobi_trace, path)
    from_obj = api.extract(jacobi_trace)
    from_path = api.extract(str(path))
    assert from_obj.step_of_event == from_path.step_of_event
    assert from_obj.phase_of_event == from_path.phase_of_event


def test_extract_overrides_compose_with_options(jacobi_trace):
    base = api.PipelineOptions(order="physical")
    structure = api.extract(jacobi_trace, base, tie_break="index")
    assert structure.options.order == "physical"
    assert structure.options.tie_break == "index"
    # The caller's options object is never mutated.
    assert base.tie_break == "chare_id"


def test_extract_rejects_unknown_override(jacobi_trace):
    with pytest.raises(TypeError, match="definitely_not_an_option"):
        api.extract(jacobi_trace, definitely_not_an_option=1)


def test_extract_emits_no_warnings(jacobi_trace):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        api.extract(jacobi_trace, api.PipelineOptions(), order="physical")


def test_options_plus_kwargs_rejected(jacobi_trace):
    # The deprecated dual path is gone: combining an options object with
    # keyword overrides is a hard error (use with_overrides, or extract).
    with pytest.raises(TypeError, match="with_overrides"):
        extract_logical_structure(
            jacobi_trace, options=api.PipelineOptions(), order="physical"
        )


def test_hooks_accept_single_and_list(jacobi_trace):
    single = StageRecorder()
    api.extract(jacobi_trace, hooks=single)
    assert single.records

    a, b = StageRecorder(), StageRecorder()
    api.extract(jacobi_trace, hooks=[a, b])
    assert [r.stage for r in a.records] == [r.stage for r in b.records]
    assert [r.stage for r in a.records] == [r.stage for r in single.records]


def test_stagehook_protocol_is_structural():
    class Custom:
        def __init__(self):
            self.stages = []

        def on_stage(self, stage, *, state=None, structure=None, seconds=0.0):
            self.stages.append(stage)

    hook = Custom()
    assert isinstance(hook, StageHook)

    trace = __import__("repro.apps", fromlist=["jacobi2d"]).jacobi2d.run(
        chares=(4, 4), pes=4, iterations=2, seed=1
    )
    api.extract(trace, hooks=hook)
    assert hook.stages[0] == "initial"
    assert hook.stages[-1] == "finalize"


def test_stats_threaded_through(jacobi_trace):
    stats = api.PipelineStats()
    api.extract(jacobi_trace, stats=stats)
    assert stats.total_seconds > 0
    assert stats.backend in ("python", "columnar", "columnar_batched")
