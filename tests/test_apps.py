"""Proxy applications: trace validity and the paper's structure claims."""

import pytest

from repro.apps import lassen, lulesh, mergetree, nasbt, pdes
from repro.core import extract_logical_structure
from repro.core.patterns import detect_period, kind_sequence, signature_sequence
from repro.sim.charm import TracingOptions
from repro.trace import validate_trace


# -- validity ---------------------------------------------------------------
def test_all_charm_traces_validate(jacobi_trace, lulesh_charm_trace,
                                   lassen_charm_trace, pdes_trace):
    for trace in (jacobi_trace, lulesh_charm_trace, lassen_charm_trace, pdes_trace):
        validate_trace(trace)


def test_all_mpi_traces_validate(lulesh_mpi_trace, lassen_mpi_trace,
                                 mergetree_trace, nasbt_trace):
    for trace in (lulesh_mpi_trace, lassen_mpi_trace, mergetree_trace, nasbt_trace):
        validate_trace(trace, check_pe_overlap=False)


# -- Jacobi (Figure 8) --------------------------------------------------------
def test_jacobi_alternating_phases(jacobi_structure):
    assert kind_sequence(jacobi_structure) == "ararar"


def test_jacobi_runtime_phases_contain_reduction(jacobi_structure):
    for phase in jacobi_structure.runtime_phases():
        names = dict(jacobi_structure.phase_entry_signature(phase.id))
        assert any("contribute_local" in n for n in names)


def test_jacobi_reordering_compacts_steps(jacobi_trace):
    """Figure 8: reordered step assignment is at least as compact as the
    recorded-order assignment."""
    re = extract_logical_structure(jacobi_trace, order="reordered")
    ph = extract_logical_structure(jacobi_trace, order="physical")
    assert re.max_step <= ph.max_step


def test_jacobi_interior_chares_have_four_neighbors(jacobi_trace):
    # 4x4 grid: the 4 interior chares send 4 ghosts per iteration.
    sends_per_chare = {}
    for ev in jacobi_trace.events:
        if ev.kind.name == "SEND":
            sends_per_chare[ev.chare] = sends_per_chare.get(ev.chare, 0) + 1
    counts = sorted(sends_per_chare.values(), reverse=True)
    assert max(counts) >= 12  # 4 neighbours x 3 iterations (+ contribute)


# -- LULESH (Figures 16/17) ---------------------------------------------------
def test_fig16_lulesh_charm_two_phases_plus_allreduce(lulesh_charm_trace):
    structure = extract_logical_structure(lulesh_charm_trace)
    sigs = signature_sequence(structure)
    period, start, repeats = detect_period(sigs, min_repeats=2)
    assert period == 3 and repeats >= 2
    order = structure.phase_sequence()
    unit = [structure.phase(order[start + i]) for i in range(period)]
    kinds = ["runtime" if p.is_runtime else "application" for p in unit]
    assert kinds == ["application", "application", "runtime"]


def test_fig16_lulesh_mpi_three_phases_plus_allreduce(lulesh_mpi_trace):
    # The paper computes MPI structures with the Isaacs et al. algorithm
    # unmodified, i.e. without reordering (Section 6).
    structure = extract_logical_structure(lulesh_mpi_trace, order="physical")
    sigs = signature_sequence(structure)
    period, start, repeats = detect_period(sigs, min_repeats=2)
    assert period == 4 and repeats >= 2
    order = structure.phase_sequence()
    unit_sigs = [dict(sigs[start + i]) for i in range(period)]
    p2p = [s for s in unit_sigs if "MPI_Send" in s]
    coll = [s for s in unit_sigs if "MPI_Allreduce" in s]
    assert len(p2p) == 3 and len(coll) == 1


def test_fig16_lulesh_setup_phase_first(lulesh_charm_trace):
    structure = extract_logical_structure(lulesh_charm_trace)
    first = structure.phase(structure.phase_sequence()[0])
    names = dict(structure.phase_entry_signature(first.id))
    assert any("setup" in n for n in names)


def test_fig17_without_inference_structure_shatters():
    trace = lulesh.run_charm(chares=8, pes=2, iterations=3, seed=3,
                             tracing=TracingOptions(record_sdag=False))
    with_inf = extract_logical_structure(trace, infer=True)
    without = extract_logical_structure(trace, infer=False)
    # Without Section 3.1.4, phases split and are forced in sequence.
    assert len(without.phases) > 2 * len(with_inf.phases)
    assert without.max_step > with_inf.max_step


# -- LASSEN (Figures 20-23) -----------------------------------------------------
def test_fig20_lassen_charm_pattern(lassen_charm_trace):
    structure = extract_logical_structure(lassen_charm_trace)
    seq = kind_sequence(structure)
    # Repeating: big p2p app phase, runtime allreduce, 8 tiny control
    # phases ("additional two-step phases", one per chare).
    assert seq.startswith("ar" + "a" * 8)
    control = [p for p in structure.phases
               if not p.is_runtime and len(p.events) == 2]
    assert len(control) == 8 * 4  # per chare per iteration
    assert all(p.max_local_step == 1 for p in control)  # two steps


def test_fig20_lassen_mpi_pattern(lassen_mpi_trace):
    structure = extract_logical_structure(lassen_mpi_trace, order="physical")
    sigs = signature_sequence(structure)
    period, _start, repeats = detect_period(sigs, min_repeats=2)
    assert period == 2 and repeats >= 3  # p2p phase + allreduce


def test_fig21_lassen_differential_duration_repeats_on_front_chares(
        lassen_charm_trace):
    from repro.metrics import differential_duration

    structure = extract_logical_structure(lassen_charm_trace)
    result = differential_duration(structure)
    trace = structure.trace
    # The chares crossed by the wavefront have the dominant excess; they
    # repeat across iterations (same chare, same role).
    hot = [e for e, v in result.by_event.items() if v > 50.0]
    assert hot
    hot_chares = {trace.events[e].chare for e in hot}
    front = {c.id for c in trace.chares
             if c.index and (c.index[0] + c.index[1]) <= 2 and not c.is_runtime}
    assert hot_chares <= front


def _late_phase_metrics(structure):
    """Max differential duration and imbalance over the last iterations,
    where the paper makes its Figure 23 comparison ("many iterations
    later", once the wavefront has grown)."""
    from repro.metrics import differential_duration, imbalance

    cutoff = structure.max_step * 0.6
    late = {p.id for p in structure.phases if p.offset >= cutoff}
    diff = differential_duration(structure)
    d = max((v for e, v in diff.by_event.items()
             if structure.phase_of_event[e] in late), default=0.0)
    imb = imbalance(structure)
    i = max((v for p, v in imb.max_by_phase.items() if p in late), default=0.0)
    return d, i


def test_fig23_finer_decomposition_spreads_work():
    """64 chares split the grown front into smaller pieces: much lower
    differential duration (the paper saw ~1/4) and lower imbalance."""
    t8 = lassen.run_charm(chares=8, pes=8, iterations=8, seed=5)
    t64 = lassen.run_charm(chares=64, pes=8, iterations=8, seed=5)
    d8, i8 = _late_phase_metrics(extract_logical_structure(t8))
    d64, i64 = _late_phase_metrics(extract_logical_structure(t64))
    assert d64 < 0.5 * d8
    assert i64 < i8


# -- PDES (Figure 24) ----------------------------------------------------------
def test_fig24_untraced_completion_detector_floats(pdes_trace):
    structure = extract_logical_structure(pdes_trace)
    app = structure.application_phases()
    rt = structure.runtime_phases()
    assert app and rt
    # The detector phase shares a leap with the simulation phase: nothing
    # structurally prevents both from covering the same global steps.
    sim_leaps = {p.leap for p in app}
    det_leaps = {p.leap for p in rt}
    assert sim_leaps & det_leaps
    sim_steps = {structure.step_of_event[e] for p in app for e in p.events}
    det_steps = {structure.step_of_event[e] for p in rt for e in p.events}
    assert sim_steps & det_steps


def test_fig24_traced_completion_detector_orders():
    """Tracing the detector call (the paper's Section 7.1 recommendation)
    sequences the aggregation after the bulk of the simulation."""
    trace = pdes.run(chares=16, pes=4, seed=1, traced_completion=True)
    structure = extract_logical_structure(trace)
    app = structure.application_phases()
    rt = structure.runtime_phases()
    assert app and rt
    biggest_app = max(app, key=len)
    biggest_rt = max(rt, key=len)
    assert biggest_rt.offset > biggest_app.offset


# -- merge tree (Figure 10) ------------------------------------------------------
def test_fig10_physical_ragged_reordered_regular(mergetree_trace):
    ph = extract_logical_structure(mergetree_trace, order="physical")
    re = extract_logical_structure(mergetree_trace, order="reordered")

    def events_at(structure, step):
        return sum(1 for s in structure.step_of_event if s == step)

    n = mergetree_trace.num_pes
    # Reordering recovers the full parallelism of the initial steps: all
    # n/2 leaf sends at step 0 and their receives at step 1.
    assert events_at(re, 0) == n // 2
    assert events_at(re, 1) == n // 2
    # Physical order loses some of it (irregular receive order).
    assert events_at(ph, 0) < n // 2 or ph.max_step > re.max_step


def test_mergetree_rejects_non_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        mergetree.run(ranks=48)


# -- NAS BT (Figure 1) -----------------------------------------------------------
def test_nasbt_pipeline_structure(nasbt_trace):
    structure = extract_logical_structure(nasbt_trace)
    # Sweeps pipeline: strictly more logical steps than a flat exchange;
    # the x-sweep phase spans a full row (3 processes in sequence).
    assert structure.max_step + 1 >= 24
    assert any(len(p.chares) >= 3 for p in structure.phases)


def test_nasbt_rejects_non_square():
    with pytest.raises(ValueError, match="square"):
        nasbt.run(ranks=8)


# -- misc app parameters ---------------------------------------------------------
def test_lulesh_grid_shape_factorization():
    from repro.apps.lulesh import _grid_shape

    assert _grid_shape(8) == (2, 2, 2)
    assert _grid_shape(27) == (3, 3, 3)
    assert sorted(_grid_shape(12)) == [2, 2, 3]


def test_lassen_grid2d():
    from repro.apps.lassen import _grid2d

    assert sorted(_grid2d(8)) == [2, 4]
    assert _grid2d(64) == (8, 8)


def test_mergetree_binomial_helpers():
    from repro.apps.mergetree import children_of, parent_of

    assert children_of(0, 8) == [1, 2, 4]
    assert children_of(4, 8) == [5, 6]
    assert children_of(1, 8) == []
    assert parent_of(6) == 4
    assert parent_of(1) == 0
