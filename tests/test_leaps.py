"""Leap (longest-path depth) computation."""

import pytest

from repro.core.initial import build_initial
from repro.core.leaps import compute_leaps, leaps_to_levels
from repro.core.partition import EdgeKind
from tests.helpers import SyntheticTrace


def _chain_of(n):
    st = SyntheticTrace(num_pes=1)
    chares = [st.chare(f"C{i}") for i in range(n)]
    for i, c in enumerate(chares):
        st.block(c, "w", 0, i * 1.0, i + 0.5, [("send", f"x{i}", i * 1.0)])
    trace = st.build()
    return build_initial(trace, mode="charm").state


def test_isolated_partitions_all_leap_zero():
    state = _chain_of(4)
    leaps = compute_leaps(state)
    assert set(leaps.values()) == {0}


def test_chain_leaps_increase():
    state = _chain_of(4)
    for i in range(3):
        state.add_edge(i, i + 1, EdgeKind.INFERRED)
    leaps = compute_leaps(state)
    assert [leaps[i] for i in range(4)] == [0, 1, 2, 3]


def test_leap_is_longest_path_not_shortest():
    state = _chain_of(4)
    # Diamond with a long side: 0->1->2->3 and 0->3.
    state.add_edge(0, 1, EdgeKind.INFERRED)
    state.add_edge(1, 2, EdgeKind.INFERRED)
    state.add_edge(2, 3, EdgeKind.INFERRED)
    state.add_edge(0, 3, EdgeKind.INFERRED)
    leaps = compute_leaps(state)
    assert leaps[3] == 3


def test_cycle_raises():
    state = _chain_of(2)
    state.add_edge(0, 1, EdgeKind.INFERRED)
    state.add_edge(1, 0, EdgeKind.INFERRED)
    with pytest.raises(ValueError, match="cycle"):
        compute_leaps(state)


def test_leaps_to_levels_roundtrip():
    state = _chain_of(5)
    state.add_edge(0, 1, EdgeKind.INFERRED)
    state.add_edge(2, 1, EdgeKind.INFERRED)
    state.add_edge(1, 3, EdgeKind.INFERRED)
    leaps = compute_leaps(state)
    levels = leaps_to_levels(leaps)
    assert sorted(levels[0]) == [0, 2, 4]
    assert levels[1] == [1]
    assert levels[2] == [3]
    assert sum(len(lv) for lv in levels) == 5


def test_empty_graph():
    assert leaps_to_levels({}) == []
