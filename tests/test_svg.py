"""SVG rendering."""

import re

from repro.metrics import differential_duration
from repro.viz import render_svg, write_svg


def test_svg_well_formed(jacobi_structure):
    doc = render_svg(jacobi_structure, title="jacobi")
    assert doc.startswith("<svg") and doc.endswith("</svg>")
    assert doc.count("<rect") >= sum(
        1 for s in jacobi_structure.step_of_event if s >= 0
    )
    assert "jacobi" in doc


def test_svg_one_box_per_stepped_event(jacobi_structure):
    doc = render_svg(jacobi_structure, show_messages=False)
    boxes = re.findall(r'<rect [^>]*stroke="#333"', doc)
    stepped = sum(1 for s in jacobi_structure.step_of_event if s >= 0)
    assert len(boxes) == stepped


def test_svg_message_lines_present(jacobi_structure):
    with_msgs = render_svg(jacobi_structure, show_messages=True)
    without = render_svg(jacobi_structure, show_messages=False)
    assert with_msgs.count("<line") > without.count("<line")


def test_svg_metric_mode_uses_ramp(jacobi_structure):
    metric = differential_duration(jacobi_structure).by_event
    doc = render_svg(jacobi_structure, metric=metric)
    assert "rgb(" in doc or "#eeeeee" in doc


def test_svg_max_steps_truncates(jacobi_structure):
    small = render_svg(jacobi_structure, max_steps=5, show_messages=False)
    full = render_svg(jacobi_structure, show_messages=False)
    assert small.count("<rect") < full.count("<rect")


def test_write_svg(tmp_path, jacobi_structure):
    path = tmp_path / "out.svg"
    write_svg(jacobi_structure, path)
    assert path.read_text().startswith("<svg")


def test_svg_escapes_names(jacobi_structure):
    doc = render_svg(jacobi_structure, title="a<b>&c")
    assert "a&lt;b&gt;&amp;c" in doc


def test_physical_svg(jacobi_structure):
    from repro.viz import render_physical_svg

    doc = render_physical_svg(jacobi_structure, title="phys")
    assert doc.startswith("<svg") and doc.endswith("</svg>")
    # One lane label per PE and idle bars present.
    assert doc.count(">PE ") == jacobi_structure.trace.num_pes
    assert 'fill="#222"' in doc


def test_physical_svg_empty_trace():
    from repro.core import extract_logical_structure
    from repro.viz import render_physical_svg
    from tests.helpers import SyntheticTrace

    st = SyntheticTrace(num_pes=1)
    st.chare("A")
    structure = extract_logical_structure(st.build())
    assert "<svg" in render_physical_svg(structure)
