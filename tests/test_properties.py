"""Property-based tests (hypothesis) on core data structures and the
pipeline's invariants over randomly generated—but physically valid—traces."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import extract_logical_structure
from repro.core.partition import DisjointSets
from repro.core.patterns import detect_period
from repro.core.stepping import assign_global_offsets
from repro.sim.charm import WhenCounter
from repro.trace.events import NO_ID, EventKind
from repro.trace.model import TraceBuilder
from repro.trace.validate import validate_trace


# ---------------------------------------------------------------------------
# DisjointSets
# ---------------------------------------------------------------------------
@given(st.integers(2, 50), st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49))))
def test_dsu_find_consistent_with_unions(n, pairs):
    dsu = DisjointSets(n)
    reference = {i: {i} for i in range(n)}
    for a, b in pairs:
        a, b = a % n, b % n
        ra = next(k for k, v in reference.items() if a in v)
        rb = next(k for k, v in reference.items() if b in v)
        merged = dsu.union(a, b)
        assert merged == (ra != rb)
        if ra != rb:
            reference[ra] |= reference.pop(rb)
    for group in reference.values():
        roots = {dsu.find(x) for x in group}
        assert len(roots) == 1
    assert dsu.count == len(reference)


@given(st.integers(1, 100))
def test_dsu_initial_state(n):
    dsu = DisjointSets(n)
    assert dsu.count == n
    assert all(dsu.find(i) == i for i in range(n))


# ---------------------------------------------------------------------------
# WhenCounter
# ---------------------------------------------------------------------------
@given(st.integers(1, 10), st.lists(st.integers(0, 4), max_size=80))
def test_when_counter_fires_every_expected(expected, keys):
    w = WhenCounter(expected)
    fired = {}
    counts = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
        if w.deposit(key):
            fired[key] = fired.get(key, 0) + 1
    for key, total in counts.items():
        assert fired.get(key, 0) == total // expected


# ---------------------------------------------------------------------------
# detect_period
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(0, 3), min_size=1, max_size=6),
       st.integers(3, 6),
       st.lists(st.integers(0, 3), max_size=4))
def test_detect_period_finds_planted_repetition(unit, repeats, prologue):
    items = prologue + unit * repeats
    period, start, found = detect_period(items, min_repeats=3,
                                         skip_prefix_max=len(prologue))
    assert period > 0
    # The detected repetition must be genuine.
    assert items[start:start + period] * found == items[start:start + period * found]
    # And must cover at least as much as the planted one.
    assert period * found >= len(unit) * repeats - len(unit)


# ---------------------------------------------------------------------------
# Global offsets
# ---------------------------------------------------------------------------
@given(st.integers(1, 30), st.data())
def test_offsets_respect_random_dags(n, data):
    preds = {}
    max_local = {}
    for i in range(n):
        k = data.draw(st.integers(0, min(i, 3)))
        preds[i] = set(data.draw(st.lists(
            st.integers(0, i - 1), min_size=k, max_size=k, unique=True))) if i else set()
        max_local[i] = data.draw(st.integers(-1, 5))
    offsets = assign_global_offsets(list(range(n)), preds, max_local)
    for i in range(n):
        for q in preds[i]:
            assert offsets[i] >= offsets[q] + max_local[q] + 1


# ---------------------------------------------------------------------------
# Random-trace pipeline invariants
# ---------------------------------------------------------------------------
def _random_trace(seed: int, n_chares: int, n_rounds: int,
                  drop_prob: float) -> "Trace":
    """Generate a physically valid chare trace: per-PE non-overlapping
    blocks in causal order, with some invocations untraced (drop_prob)."""
    rng = random.Random(seed)
    n_pes = max(1, n_chares // 2)
    b = TraceBuilder(num_pes=n_pes)
    chares = []
    for i in range(n_chares):
        runtime = rng.random() < 0.2
        chares.append(b.add_chare(f"C{i}", is_runtime=runtime, home_pe=i % n_pes))
    entry = b.add_entry("act", is_sdag_serial=rng.random() < 0.5, sdag_ordinal=0)
    pe_clock = [0.0] * n_pes
    # messages in flight: (arrival, dest chare, message id or NO_ID)
    inflight = []
    for i, c in enumerate(chares):
        pe = i % n_pes
        start = pe_clock[pe]
        x = b.add_execution(c, entry, pe, start, start + 1.0)
        ev = b.add_event(EventKind.SEND, c, pe, start + 0.5, x)
        mid = b.add_message(send_event=ev) if rng.random() > drop_prob else NO_ID
        dest = rng.randrange(n_chares)
        inflight.append([start + 2.0 + rng.random(), dest, mid])
        pe_clock[pe] = start + 1.0 + 0.1
    for _ in range(n_rounds):
        if not inflight:
            break
        inflight.sort()
        arrival, dest, mid = inflight.pop(0)
        pe = dest % n_pes
        start = max(arrival, pe_clock[pe])
        if pe_clock[pe] < start:
            b.add_idle(pe, pe_clock[pe], start)
        end = start + 0.5 + rng.random()
        x = b.add_execution(chares[dest], entry, pe, start, end)
        if mid != NO_ID:
            rev = b.add_event(EventKind.RECV, chares[dest], pe, start, x)
            b._messages[mid].recv_event = rev
            b.set_execution_recv(x, rev)
        if rng.random() < 0.7:
            t = start + (end - start) * 0.5
            ev = b.add_event(EventKind.SEND, chares[dest], pe, t, x)
            new_mid = b.add_message(send_event=ev) if rng.random() > drop_prob else NO_ID
            inflight.append([end + 1.0 + rng.random(), rng.randrange(n_chares), new_mid])
        pe_clock[pe] = end + 0.1
    return b.build()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_chares=st.integers(2, 10),
    n_rounds=st.integers(0, 40),
    drop_prob=st.floats(0.0, 0.6),
    order=st.sampled_from(["reordered", "physical"]),
)
def test_pipeline_invariants_on_random_traces(seed, n_chares, n_rounds,
                                              drop_prob, order):
    trace = _random_trace(seed, n_chares, n_rounds, drop_prob)
    validate_trace(trace)
    structure = extract_logical_structure(trace, order=order)

    # Conservation: every dependency event appears in exactly one phase.
    assert sum(len(p) for p in structure.phases) == len(trace.events)

    # Per-chare global-step uniqueness.
    seen = set()
    for ev, step in enumerate(structure.step_of_event):
        assert step >= 0
        key = (trace.events[ev].chare, step)
        assert key not in seen
        seen.add(key)

    # Receives strictly after sends.
    for msg in trace.messages:
        if msg.is_complete():
            assert (structure.step_of_event[msg.recv_event]
                    > structure.step_of_event[msg.send_event])

    # Phase DAG acyclicity is implied by offsets having been computed;
    # also check leap exclusivity (DAG property 1).
    seen_leap = set()
    for phase in structure.phases:
        for c in phase.chares:
            key = (phase.leap, c)
            assert key not in seen_leap
            seen_leap.add(key)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_reordering_is_permutation_of_physical(seed):
    trace = _random_trace(seed, 6, 30, 0.2)
    re = extract_logical_structure(trace, order="reordered")
    ph = extract_logical_structure(trace, order="physical")
    # Same partitioning; ordering only permutes events within chares.
    assert sorted(map(len, re.phases)) == sorted(map(len, ph.phases))
    for (pid, chare), order in re.chare_orders.items():
        assert sorted(order) == sorted(ph.chare_orders[(pid, chare)])
