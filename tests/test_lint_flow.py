"""Flow-aware rule families (ASYNC/RES/EXC, CFG-based CONC) + runner.

Each rule gets a positive fixture (the defect fires) and a negative
fixture (the idiomatic fix stays silent).  The mutation tests seed one
bug into a fixture that the *full* rule set scores clean, and assert
the intended rule — and only that rule — catches it.  The runner tests
cover the incremental cache (hit/miss accounting, content and
rule-set-version invalidation) and ``--jobs`` determinism.
"""

import json
import textwrap

import pytest

import repro.lint.runner as lint_runner
from repro.lint import LintEngine, run_lint, validate_report

pytestmark = pytest.mark.lint


def lint_source(source, rule_ids=None, path="fixture.py"):
    return LintEngine(rule_ids=rule_ids).lint_sources(
        [(path, textwrap.dedent(source))])


def fired(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# ASYNC: coroutine safety
# ---------------------------------------------------------------------------
def test_async001_rmw_across_await_fires():
    report = lint_source(
        """
        import asyncio

        class Counter:
            async def bump(self):
                n = self.count
                await asyncio.sleep(0)
                self.count = n + 1
        """,
        rule_ids=["ASYNC001"],
    )
    assert fired(report) == ["ASYNC001"]
    assert report.findings[0].line == 8  # anchored at the write


def test_async001_lock_held_across_rmw_is_clean():
    report = lint_source(
        """
        import asyncio

        class Counter:
            async def bump(self):
                async with self._lock:
                    n = self.count
                    await asyncio.sleep(0)
                    self.count = n + 1
        """,
        rule_ids=["ASYNC001"],
    )
    assert fired(report) == []


def test_async001_atomic_rmw_is_clean():
    report = lint_source(
        """
        class Counter:
            async def bump(self):
                self.count = self.count + 1
        """,
        rule_ids=["ASYNC001"],
    )
    assert fired(report) == []


def test_async001_await_in_one_branch_still_races():
    # "Across an await" is a CFG path query, not a line comparison: the
    # await sits in only one branch, and that branch is enough.
    report = lint_source(
        """
        import asyncio

        class Counter:
            async def bump(self, slow):
                n = self.count
                if slow:
                    await asyncio.sleep(0)
                self.count = n + 1
        """,
        rule_ids=["ASYNC001"],
    )
    assert fired(report) == ["ASYNC001"]


def test_async002_blocking_sleep_fires():
    report = lint_source(
        """
        import time

        async def handler():
            time.sleep(0.1)
        """,
        rule_ids=["ASYNC002"],
    )
    assert fired(report) == ["ASYNC002"]


def test_async002_async_sleep_is_clean():
    report = lint_source(
        """
        import asyncio

        async def handler():
            await asyncio.sleep(0.1)
        """,
        rule_ids=["ASYNC002"],
    )
    assert fired(report) == []


def test_async003_discarded_create_task_fires():
    report = lint_source(
        """
        import asyncio

        async def go(work):
            asyncio.create_task(work())
        """,
        rule_ids=["ASYNC003"],
    )
    assert fired(report) == ["ASYNC003"]


def test_async003_kept_and_awaited_task_is_clean():
    report = lint_source(
        """
        import asyncio

        async def go(work):
            task = asyncio.create_task(work())
            await task
        """,
        rule_ids=["ASYNC003"],
    )
    assert fired(report) == []


def test_async004_sync_with_lock_around_await_fires():
    report = lint_source(
        """
        import asyncio

        class Svc:
            async def f(self):
                with self._lock:
                    await asyncio.sleep(0)
        """,
        rule_ids=["ASYNC004"],
    )
    assert fired(report) == ["ASYNC004"]


def test_async004_acquire_held_across_await_fires():
    report = lint_source(
        """
        import asyncio

        class Svc:
            async def f(self):
                self._lock.acquire()
                await asyncio.sleep(0)
                self._lock.release()
        """,
        rule_ids=["ASYNC004"],
    )
    assert fired(report) == ["ASYNC004"]


def test_async004_release_before_await_is_clean():
    report = lint_source(
        """
        import asyncio

        class Svc:
            async def f(self):
                self._lock.acquire()
                self.n += 1
                self._lock.release()
                await asyncio.sleep(0)
        """,
        rule_ids=["ASYNC004"],
    )
    assert fired(report) == []


# ---------------------------------------------------------------------------
# RES: resource obligations
# ---------------------------------------------------------------------------
def test_res001_temp_file_replaced_on_one_branch_fires():
    report = lint_source(
        """
        import os

        def publish(out, tmp_path, data, durable):
            with open(tmp_path, "w") as fh:
                fh.write(data)
            if durable:
                os.replace(tmp_path, out)
        """,
        rule_ids=["RES001"],
    )
    assert fired(report) == ["RES001"]


def test_res001_finally_exists_guard_is_clean():
    report = lint_source(
        """
        import os

        def publish(out, data):
            tmp = out.with_suffix(".tmp")
            try:
                with open(str(tmp), "w") as fh:
                    fh.write(data)
                os.replace(str(tmp), str(out))
            finally:
                if tmp.exists():
                    tmp.unlink()
        """,
        rule_ids=["RES001"],
    )
    assert fired(report) == []


def test_res002_unclosed_handle_fires():
    report = lint_source(
        """
        def read(path):
            fh = open(path)
            data = fh.read()
            return data
        """,
        rule_ids=["RES002"],
    )
    assert fired(report) == ["RES002"]


def test_res002_close_in_finally_is_clean():
    report = lint_source(
        """
        def read(path):
            fh = open(path)
            try:
                return fh.read()
            finally:
                fh.close()
        """,
        rule_ids=["RES002"],
    )
    assert fired(report) == []


def test_res002_with_managed_handle_is_clean():
    report = lint_source(
        """
        def read(path):
            with open(path) as fh:
                return fh.read()
        """,
        rule_ids=["RES002"],
    )
    assert fired(report) == []


def test_res002_ownership_transfer_discharges():
    report = lint_source(
        """
        def read(path, sink):
            fh = open(path)
            sink.adopt(fh)
        """,
        rule_ids=["RES002"],
    )
    assert fired(report) == []


def test_res003_unclosed_socket_fires():
    report = lint_source(
        """
        import socket

        def ping(host):
            conn = socket.create_connection((host, 80))
            conn.sendall(b"x")
        """,
        rule_ids=["RES003"],
    )
    assert fired(report) == ["RES003"]


def test_res003_finalized_socket_is_clean():
    report = lint_source(
        """
        import socket

        def ping(host):
            conn = socket.create_connection((host, 80))
            try:
                conn.sendall(b"x")
            finally:
                conn.close()
        """,
        rule_ids=["RES003"],
    )
    assert fired(report) == []


# ---------------------------------------------------------------------------
# EXC: exception safety
# ---------------------------------------------------------------------------
def test_exc001_silent_broad_except_fires_in_scope():
    report = lint_source(
        """
        def append(ledger, line):
            try:
                ledger.write(line)
            except Exception:
                pass
        """,
        rule_ids=["EXC001"],
        path="src/repro/serve/fixture.py",
    )
    assert fired(report) == ["EXC001"]
    assert report.findings[0].severity == "error"


def test_exc001_out_of_scope_path_is_clean():
    report = lint_source(
        """
        def append(ledger, line):
            try:
                ledger.write(line)
            except Exception:
                pass
        """,
        rule_ids=["EXC001"],
        path="src/repro/util.py",
    )
    assert fired(report) == []


def test_exc001_handler_that_leaves_a_trace_is_clean():
    report = lint_source(
        """
        def append(ledger, line, log):
            try:
                ledger.write(line)
            except Exception as exc:
                log.warning("ledger write failed: %s", exc)
        """,
        rule_ids=["EXC001"],
        path="src/repro/serve/fixture.py",
    )
    assert fired(report) == []


def test_exc002_bare_except_warns():
    report = lint_source(
        """
        def f(work):
            try:
                work()
            except:
                failed = True
        """,
        rule_ids=["EXC002"],
    )
    assert fired(report) == ["EXC002"]
    assert report.findings[0].severity == "warning"


def test_exc002_bare_except_with_reraise_is_clean():
    report = lint_source(
        """
        def f(work, cleanup):
            try:
                work()
            except:
                cleanup()
                raise
        """,
        rule_ids=["EXC002"],
    )
    assert fired(report) == []


# ---------------------------------------------------------------------------
# CONC on the CFG: the regression pair the rewrite exists for
# ---------------------------------------------------------------------------
def test_conc001_fsync_on_one_branch_no_longer_satisfies():
    # The pre-CFG rule only asked "is there an fsync earlier in the
    # function"; a conditional fsync satisfied it.  Dominance does not:
    # the false branch reaches os.replace() without ever syncing.
    report = lint_source(
        """
        import os

        def commit(fh, tmp, dst, durable):
            if durable:
                os.fsync(fh.fileno())
            os.replace(tmp, dst)
        """,
        rule_ids=["CONC001"],
    )
    assert fired(report) == ["CONC001"]


def test_conc001_dominating_fsync_is_clean():
    report = lint_source(
        """
        import os

        def commit(fh, tmp, dst):
            os.fsync(fh.fileno())
            os.replace(tmp, dst)
        """,
        rule_ids=["CONC001"],
    )
    assert fired(report) == []


def test_conc003_release_only_on_normal_path_fires():
    report = lint_source(
        """
        def f(lock, work):
            lock.acquire()
            work()
            lock.release()
        """,
        rule_ids=["CONC003"],
    )
    assert fired(report) == ["CONC003"]


def test_conc003_release_in_finally_is_clean():
    report = lint_source(
        """
        def f(lock, work):
            lock.acquire()
            try:
                work()
            finally:
                lock.release()
        """,
        rule_ids=["CONC003"],
    )
    assert fired(report) == []


# ---------------------------------------------------------------------------
# Mutation tests: seeded bugs caught by exactly the intended rule
# ---------------------------------------------------------------------------
_CLEAN_ASYNC = """
import asyncio

class Counter:
    def __init__(self):
        self.value = 0
        self._lock = asyncio.Lock()

    async def add(self, delta):
        async with self._lock:
            new = self.value + delta
            await asyncio.sleep(0)
            self.value = new
"""

_MUTANT_ASYNC = """
import asyncio

class Counter:
    def __init__(self):
        self.value = 0
        self._lock = asyncio.Lock()

    async def add(self, delta):
        new = self.value + delta
        await asyncio.sleep(0)
        self.value = new
"""

_CLEAN_PUBLISH = """
import os

def publish(out, data):
    tmp = out.with_suffix(".tmp")
    try:
        with open(str(tmp), "w") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(str(tmp), str(out))
    finally:
        if tmp.exists():
            tmp.unlink()
"""

_MUTANT_LEAKY_PUBLISH = """
import os

def publish(out, data):
    tmp = out.with_suffix(".tmp")
    with open(str(tmp), "w") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(str(tmp), str(out))
"""

_MUTANT_CONDITIONAL_FSYNC = """
import os

def publish(out, data, durable):
    tmp = out.with_suffix(".tmp")
    try:
        with open(str(tmp), "w") as fh:
            fh.write(data)
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        os.replace(str(tmp), str(out))
    finally:
        if tmp.exists():
            tmp.unlink()
"""


@pytest.mark.parametrize("clean", [_CLEAN_ASYNC, _CLEAN_PUBLISH])
def test_mutation_baselines_are_clean(clean):
    assert fired(lint_source(clean)) == []


@pytest.mark.parametrize("mutant,rule", [
    (_MUTANT_ASYNC, "ASYNC001"),
    (_MUTANT_LEAKY_PUBLISH, "RES001"),
    (_MUTANT_CONDITIONAL_FSYNC, "CONC001"),
])
def test_seeded_bug_caught_by_exactly_the_intended_rule(mutant, rule):
    assert fired(lint_source(mutant)) == [rule]


# ---------------------------------------------------------------------------
# Runner: incremental cache + parallel determinism
# ---------------------------------------------------------------------------
def _write_tree(tmp_path):
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "a.py").write_text("VALUE = 1\n")
    (pkg / "b.py").write_text(textwrap.dedent(
        """
        def read(path):
            fh = open(path)
            data = fh.read()
            return data
        """
    ))
    return pkg


def test_cache_cold_miss_then_warm_hit(tmp_path):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cold = run_lint([pkg], cache_path=cache)
    assert (cold.cache_hits, cold.cache_misses) == (0, 2)
    warm = run_lint([pkg], cache_path=cache)
    assert (warm.cache_hits, warm.cache_misses) == (2, 0)
    # Cached findings are the same findings.
    assert ([f.to_dict() for f in warm.findings]
            == [f.to_dict() for f in cold.findings])
    assert fired(warm) == ["RES002"]


def test_cache_content_change_reanalyzes_only_that_file(tmp_path):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run_lint([pkg], cache_path=cache)
    (pkg / "a.py").write_text("VALUE = 2\n")
    report = run_lint([pkg], cache_path=cache)
    assert (report.cache_hits, report.cache_misses) == (1, 1)
    missed = [t.path for t in report.timings if not t.cached]
    assert missed == [str(pkg / "a.py")]


def test_cache_discarded_on_ruleset_version_bump(tmp_path, monkeypatch):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run_lint([pkg], cache_path=cache)
    monkeypatch.setattr(lint_runner, "RULESET_VERSION", "999.0")
    report = run_lint([pkg], cache_path=cache)
    assert (report.cache_hits, report.cache_misses) == (0, 2)


def test_cache_discarded_on_rule_filter_change(tmp_path):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run_lint([pkg], cache_path=cache)
    report = run_lint([pkg], rule_ids=["RES002"], cache_path=cache)
    assert (report.cache_hits, report.cache_misses) == (0, 2)


def _comparable(report):
    """The report dict minus its documented-volatile timing block."""
    data = report.to_dict()
    del data["timing"]
    return json.dumps(data, sort_keys=True).encode()


def test_jobs_report_is_byte_identical(tmp_path):
    pkg = _write_tree(tmp_path)
    serial = run_lint([pkg], jobs=1)
    parallel = run_lint([pkg], jobs=2)
    assert _comparable(serial) == _comparable(parallel)


def test_report_v2_validates_and_carries_timing(tmp_path):
    pkg = _write_tree(tmp_path)
    report = run_lint([pkg], cache_path=tmp_path / "cache.json")
    data = report.to_dict()
    assert validate_report(data) == []
    assert data["version"] == 2
    assert data["summary"]["cache"] == {"hits": 0, "misses": 2}
    timed = [entry["path"] for entry in data["timing"]["files"]]
    assert timed == sorted(timed)


def test_v1_report_still_validates_by_version_dispatch():
    archived = {
        "version": 1,
        "tool": "repro-lint",
        "findings": [],
        "summary": {"files": 3, "errors": 0, "warnings": 1,
                    "suppressed": 2},
    }
    assert validate_report(archived) == []
    # And a v1 report is *not* forced through the v2 schema: the same
    # payload with the current version number must fail (no cache key).
    broken = dict(archived, version=2)
    assert validate_report(broken) != []
