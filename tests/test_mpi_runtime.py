"""Behavioural tests of the MPI rank simulator."""

import pytest

from repro.sim.mpi import MpiSimulation
from repro.trace import validate_trace
from repro.trace.events import EventKind


def _run(fn, n=2, **kw):
    sim = MpiSimulation(num_ranks=n, **kw)
    sim.run(fn)
    return sim.finish()


def test_send_recv_payload():
    got = {}

    def body(rank, comm):
        if rank == 0:
            yield comm.compute(5.0)
            yield comm.send(1, tag=7, size=64, payload={"x": 3})
        else:
            got[rank] = yield comm.recv(0, tag=7)

    _run(body)
    assert got == {1: {"x": 3}}


def test_recv_blocks_until_arrival_and_records_wait():
    def body(rank, comm):
        if rank == 0:
            yield comm.compute(100.0)
            yield comm.send(1, tag=0)
        else:
            yield comm.recv(0, tag=0)

    trace = _run(body)
    recv = [e for e in trace.events if e.kind == EventKind.RECV][0]
    send = [e for e in trace.events if e.kind == EventKind.SEND][0]
    assert recv.time > send.time >= 100.0
    # The receiver's wait appears as an idle interval on its PE.
    assert any(iv.pe == 1 and iv.duration() > 50 for iv in trace.idles)


def test_messages_non_overtaking_per_tag():
    order = []

    def body(rank, comm):
        if rank == 0:
            yield comm.send(1, tag=0, payload="first")
            yield comm.send(1, tag=0, payload="second")
        else:
            order.append((yield comm.recv(0, tag=0)))
            order.append((yield comm.recv(0, tag=0)))

    _run(body)
    assert order == ["first", "second"]


def test_tags_match_independently():
    got = {}

    def body(rank, comm):
        if rank == 0:
            yield comm.send(1, tag=1, payload="one")
            yield comm.send(1, tag=2, payload="two")
        else:
            got["two"] = yield comm.recv(0, tag=2)
            got["one"] = yield comm.recv(0, tag=1)

    _run(body)
    assert got == {"one": "one", "two": "two"}


def test_allreduce_value_and_trace_shape():
    results = {}

    def body(rank, comm):
        yield comm.compute(float(rank) * 10)
        results[rank] = yield comm.allreduce(float(rank), op="sum")

    trace = _run(body, n=4)
    assert results == {r: 6.0 for r in range(4)}
    colls = [x for x in trace.executions
             if trace.entry(x.entry).name == "MPI_Allreduce"]
    assert len(colls) == 4
    # All ranks complete the collective at the same time.
    ends = {x.end for x in colls}
    assert len(ends) == 1
    # Ring matching: every collective message is complete.
    validate_trace(trace, check_pe_overlap=False)


def test_barrier_synchronizes():
    def body(rank, comm):
        yield comm.compute(float(rank) * 50)
        yield comm.barrier()

    trace = _run(body, n=3)
    bars = [x for x in trace.executions
            if trace.entry(x.entry).name == "MPI_Barrier"]
    assert len({x.end for x in bars}) == 1


def test_consecutive_collectives_match_by_count():
    seen = []

    def body(rank, comm):
        a = yield comm.allreduce(rank, op="max")
        b = yield comm.allreduce(rank, op="min")
        if rank == 0:
            seen.extend([a, b])

    _run(body, n=3)
    assert seen == [2, 0]


def test_recv_merge_arrival_order_and_cost():
    order = {}

    def body(rank, comm):
        if rank == 0:
            got = yield comm.recv_merge([1, 2], tag=0, cost_per_unit=1.0)
            order[0] = [src for src, _ in got]
        elif rank == 1:
            yield comm.compute(500.0)  # rank 1 sends late
            yield comm.send(0, tag=0, payload=5)
        else:
            yield comm.compute(10.0)
            yield comm.send(0, tag=0, payload=3)

    trace = _run(body, n=3)
    assert order[0] == [2, 1]  # arrival order, not rank order
    recvs = [e for e in trace.events if e.kind == EventKind.RECV]
    assert len(recvs) == 2
    # Merge cost interleaves: second recv happens after first + cost.
    times = sorted(e.time for e in recvs)
    assert times[1] - times[0] >= 3.0


def test_deadlock_detected():
    def body(rank, comm):
        yield comm.recv(1 - rank, tag=0)

    sim = MpiSimulation(num_ranks=2)
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(body)


def test_self_send_rejected():
    def body(rank, comm):
        yield comm.send(rank, tag=0)

    sim = MpiSimulation(num_ranks=1)
    with pytest.raises(ValueError, match="self"):
        sim.run(body)


def test_bad_ranks_rejected():
    def body(rank, comm):
        yield comm.send(99, tag=0)

    with pytest.raises(ValueError, match="destination"):
        MpiSimulation(num_ranks=2).run(body)

    def body2(rank, comm):
        yield comm.recv_merge([], tag=0)

    with pytest.raises(ValueError, match="empty"):
        MpiSimulation(num_ranks=2).run(body2)


def test_trace_marks_mpi_model():
    def body(rank, comm):
        yield comm.compute(1.0)

    trace = _run(body)
    assert trace.metadata["model"] == "mpi"
    assert all(not c.is_runtime for c in trace.chares)
    assert [c.home_pe for c in trace.chares] == [0, 1]


def test_isend_irecv_waitall():
    got = {}

    def body(rank, comm):
        if rank == 0:
            reqs = []
            for src in (1, 2):
                reqs.append((yield comm.irecv(src, tag=0)))
            results = yield comm.waitall(reqs)
            got["payloads"] = sorted(results.values())
        else:
            yield comm.compute(10.0 * rank)
            yield comm.isend(0, tag=0, payload=f"from{rank}")

    trace = _run(body, n=3)
    assert got["payloads"] == ["from1", "from2"]
    recvs = [e for e in trace.events if e.kind == EventKind.RECV]
    assert len(recvs) == 2


def test_waitall_completes_in_arrival_order():
    order = {}

    def body(rank, comm):
        if rank == 0:
            r1 = yield comm.irecv(1, tag=0)
            r2 = yield comm.irecv(2, tag=0)
            results = yield comm.waitall([r1, r2])
            order["results"] = results
        elif rank == 1:
            yield comm.compute(500.0)  # rank 1 arrives last
            yield comm.send(0, tag=0, payload="slow")
        else:
            yield comm.send(0, tag=0, payload="fast")

    trace = _run(body, n=3)
    # Both completed; the recv events are ordered by arrival in the trace.
    recvs = sorted(
        (e for e in trace.events if e.kind == EventKind.RECV),
        key=lambda e: e.time,
    )
    srcs = []
    for e in recvs:
        mid = trace.message_by_recv[e.id]
        srcs.append(trace.events[trace.messages[mid].send_event].chare)
    assert srcs == [2, 1]  # fast sender's message received first


def test_waitall_fifo_within_channel():
    got = {}

    def body(rank, comm):
        if rank == 0:
            r1 = yield comm.irecv(1, tag=0)
            r2 = yield comm.irecv(1, tag=0)
            results = yield comm.waitall([r1, r2])
            got[r1.serial] = results[r1]
            got[r2.serial] = results[r2]
        else:
            yield comm.send(0, tag=0, payload="first")
            yield comm.send(0, tag=0, payload="second")

    _run(body, n=2)
    serials = sorted(got)
    assert got[serials[0]] == "first"
    assert got[serials[1]] == "second"


def test_waitall_rejects_non_requests():
    def body(rank, comm):
        yield comm.waitall(["nope"])

    with pytest.raises(TypeError, match="Request"):
        MpiSimulation(num_ranks=1).run(body)


def test_reduce_root_gets_value():
    got = {}

    def body(rank, comm):
        yield comm.compute(5.0 * rank)
        got[rank] = yield comm.reduce(float(rank + 1), op="sum", root=2)

    trace = _run(body, n=4)
    assert got[2] == 10.0
    assert got[0] is None and got[1] is None and got[3] is None
    # Traced as a single synchronizing unit: one region per rank, all
    # completing together (the paper's single-call collective abstraction).
    reduces = [x for x in trace.executions
               if trace.entry(x.entry).name == "MPI_Reduce"]
    assert len(reduces) == 4
    assert len({x.end for x in reduces}) == 1
    validate_trace(trace, check_pe_overlap=False)


def test_bcast_delivers_root_value():
    got = {}

    def body(rank, comm):
        yield comm.compute(3.0 * rank)
        got[rank] = yield comm.bcast("payload" if rank == 1 else None, root=1)

    trace = _run(body, n=4)
    assert got == {r: "payload" for r in range(4)}
    sends = [e for e in trace.events if e.kind == EventKind.SEND]
    assert len(sends) == 1  # one fan-out send event at the root
    assert len(trace.messages_by_send[sends[0].id]) == 3
    validate_trace(trace, check_pe_overlap=False)


def test_rooted_collectives_form_single_phase():
    from repro.core import extract_logical_structure

    def body(rank, comm):
        yield comm.compute(4.0 + rank)
        yield comm.reduce(1.0, op="sum", root=0)
        yield comm.compute(4.0)
        yield comm.bcast(rank == 0 and "go" or None, root=0)

    trace = _run(body, n=4)
    structure = extract_logical_structure(trace, order="physical")
    sigs = [dict(structure.phase_entry_signature(p.id)) for p in structure.phases]
    reduce_phases = [s for s in sigs if any("Reduce" in n for n in s)]
    bcast_phases = [s for s in sigs if any("Bcast" in n for n in s)]
    assert len(reduce_phases) == 1  # each collective is one phase
    assert len(bcast_phases) == 1


def test_bad_root_rejected():
    def body(rank, comm):
        yield comm.reduce(1.0, root=9)

    with pytest.raises(ValueError, match="root"):
        MpiSimulation(num_ranks=2).run(body)


def test_recv_any_matches_one_of_several():
    got = {}

    def body(rank, comm):
        if rank == 0:
            first = yield comm.recv_any([1, 2], tag=0)
            second = yield comm.recv_any([1, 2], tag=0)
            got["order"] = [first[0], second[0]]
            got["payloads"] = sorted([first[1], second[1]])
        else:
            yield comm.compute(10.0 * rank)
            yield comm.send(0, tag=0, payload=f"p{rank}")

    _run(body, n=3)
    assert sorted(got["order"]) == [1, 2]
    assert got["payloads"] == ["p1", "p2"]


def test_recv_any_validates_sources():
    def body(rank, comm):
        yield comm.recv_any([], tag=0)

    with pytest.raises(ValueError, match="empty"):
        MpiSimulation(num_ranks=1).run(body)
