"""Reduction manager behaviour (Section 5)."""

import pytest

from repro.sim.charm import Chare, CharmRuntime, TracingOptions
from repro.sim.charm.reduction import combine
from repro.trace import validate_trace
from repro.trace.events import NO_ID


class Reducer(Chare):
    RESULTS = []

    def go(self, op):
        self.compute(1.0)
        value = float(self.index[0] + 1)
        self.contribute(value, op, ("send", self.array[(0,)], "result"))

    def go_bcast(self, op):
        self.compute(1.0)
        self.contribute(float(self.index[0] + 1), op, ("broadcast", "result"))

    def result(self, value):
        Reducer.RESULTS.append((self.index[0], value))


def _run(op, count=6, pes=3, entry="go", tracing=None):
    Reducer.RESULTS = []
    rt = CharmRuntime(num_pes=pes, tracing=tracing)
    arr = rt.create_array("Red", Reducer, shape=(count,))
    for c in arr:
        rt.seed(c, entry, op)
    rt.run()
    return rt.finish()


def test_sum_reduction_to_single_client():
    _run("sum")
    assert Reducer.RESULTS == [(0, 21.0)]


def test_max_and_min():
    _run("max")
    assert Reducer.RESULTS == [(0, 6.0)]
    _run("min")
    assert Reducer.RESULTS == [(0, 1.0)]


def test_broadcast_target_reaches_every_element():
    _run("sum", entry="go_bcast")
    assert sorted(Reducer.RESULTS) == [(i, 21.0) for i in range(6)]


def test_reduction_trace_has_managers_and_tree():
    trace = _run("sum", count=8, pes=4)
    validate_trace(trace)
    mgrs = [c for c in trace.chares if "CkReductionMgr" in c.name]
    assert len(mgrs) == 4
    assert all(c.is_runtime for c in mgrs)
    names = {trace.entry(x.entry).name for x in trace.executions}
    assert "ReductionManager::contribute_local" in names
    assert "ReductionManager::child_partial" in names
    # Tree over 4 PEs: PE1 and PE2 forward to PE0, PE3 to PE1 = 3 partials.
    partials = [x for x in trace.executions
                if trace.entry(x.entry).name.endswith("child_partial")]
    assert len(partials) == 3


def test_enhanced_tracing_records_local_contributions():
    trace = _run("sum", count=4, pes=2,
                 tracing=TracingOptions(trace_reductions=True))
    locals_ = [x for x in trace.executions
               if trace.entry(x.entry).name.endswith("contribute_local")]
    assert locals_ and all(x.recv_event != NO_ID for x in locals_)


def test_stock_tracing_omits_local_contributions():
    """Without the Section 5 extension, manager executions appear but
    their triggering dependencies are missing."""
    trace = _run("sum", count=4, pes=2,
                 tracing=TracingOptions(trace_reductions=False))
    locals_ = [x for x in trace.executions
               if trace.entry(x.entry).name.endswith("contribute_local")]
    assert locals_ and all(x.recv_event == NO_ID for x in locals_)
    # Inter-processor tree messages stay traced.
    partials = [x for x in trace.executions
                if trace.entry(x.entry).name.endswith("child_partial")]
    assert partials and all(x.recv_event != NO_ID for x in partials)


def test_consecutive_reductions_use_sequence_numbers():
    class Repeat(Chare):
        RESULTS = []

        def go(self, _):
            self.contribute(1.0, "sum", ("broadcast", "again"))

        def again(self, total):
            Repeat.RESULTS.append(total)
            if len(Repeat.RESULTS) < 8:  # 2 rounds x 4 elements
                self.contribute(2.0, "sum", ("broadcast", "done"))

        def done(self, total):
            Repeat.RESULTS.append(total)

    rt = CharmRuntime(num_pes=2)
    arr = rt.create_array("Rep", Repeat, shape=(4,))
    for c in arr:
        rt.seed(c, "go")
    rt.run()
    assert Repeat.RESULTS[:4] == [4.0] * 4
    assert Repeat.RESULTS[4:] == [8.0] * 4


def test_combine_ops():
    assert combine("sum", 2, 3) == 5
    assert combine("max", 2, 3) == 3
    assert combine("min", 2, 3) == 2
    assert combine("sum", None, 3) == 3
    assert combine("nop", 1, 2) is None
    with pytest.raises(ValueError):
        combine("xor", 1, 2)


def test_contribute_requires_array():
    class Lone(Chare):
        def go(self, _):
            self.contribute(1.0, "sum", None)

    rt = CharmRuntime(num_pes=1)
    lone = rt.create_chare("Lone", Lone)
    rt.seed(lone.chare, "go")
    with pytest.raises(RuntimeError, match="array"):
        rt.run()
