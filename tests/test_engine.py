"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.engine import Simulator


def test_time_order_execution():
    sim = Simulator()
    log = []
    sim.schedule(5.0, lambda: log.append("b"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(9.0, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 9.0


def test_equal_times_fire_in_insertion_order():
    sim = Simulator()
    log = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: log.append(i))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


def test_callbacks_can_schedule_more():
    sim = Simulator()
    log = []

    def chain(n):
        log.append(n)
        if n < 3:
            sim.schedule_after(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert log == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="before current time"):
        sim.schedule(1.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="negative"):
        sim.schedule_after(-1.0, lambda: None)


def test_run_until_stops_early():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(10.0, lambda: log.append(10))
    sim.run(until=5.0)
    assert log == [1]
    assert sim.pending() == 1
    sim.run()
    assert log == [1, 10]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule_after(1.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(RuntimeError, match="runaway"):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4
