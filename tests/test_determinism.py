"""Reproducibility: identical seeds give identical traces.

The simulators exist to study controlled non-determinism; that only works
if the control is airtight — every run is a pure function of its seed.
"""

import io

from repro.apps import jacobi2d, lassen, lulesh, mergetree, pdes
from repro.core import extract_logical_structure
from repro.trace import write_trace


def _serialize(trace) -> str:
    buf = io.StringIO()
    write_trace(trace, buf)
    return buf.getvalue()


def test_charm_trace_is_seed_deterministic():
    a = jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=11)
    b = jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=11)
    assert _serialize(a) == _serialize(b)


def test_mpi_trace_is_seed_deterministic():
    a = mergetree.run(ranks=32, seed=5)
    b = mergetree.run(ranks=32, seed=5)
    assert _serialize(a) == _serialize(b)


def test_different_seeds_differ_in_timing_not_shape():
    a = lulesh.run_charm(chares=8, pes=2, iterations=2, seed=1)
    b = lulesh.run_charm(chares=8, pes=2, iterations=2, seed=2)
    assert _serialize(a) != _serialize(b)
    assert len(a.executions) == len(b.executions)
    assert len(a.messages) == len(b.messages)


def test_extraction_is_deterministic():
    trace = lassen.run_charm(chares=8, pes=8, iterations=3, seed=4)
    a = extract_logical_structure(trace)
    b = extract_logical_structure(trace)
    assert a.step_of_event == b.step_of_event
    assert a.phase_of_event == b.phase_of_event
    assert [sorted(p.events) for p in a.phases] == [sorted(p.events) for p in b.phases]


def test_pdes_rng_isolated_from_global_state():
    import random

    random.seed(123)
    a = pdes.run(chares=8, pes=2, seed=9)
    random.seed(456)
    b = pdes.run(chares=8, pes=2, seed=9)
    assert _serialize(a) == _serialize(b)
