"""The resilient stage executor: checkpoints, fallbacks, degradation,
resource guards, hook error policy, and crash-safe batch journaling.

Acceptance anchors (ISSUE 4):

* a checkpoint-resumed extraction and a fallback-path extraction are
  bit-identical to an uninterrupted python-reference run;
* ``repro batch --resume`` after a SIGKILL mid-batch completes the
  corpus without re-extracting finished traces;
* a watchdog deadline/RSS breach soft-aborts the stage instead of
  hanging or OOM-killing the process.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
import warnings
from pathlib import Path

import pytest

from repro.api import (
    BatchExtractor,
    DegradationReport,
    PipelineOptions,
    PipelineStats,
    RunJournal,
    StructureCache,
    extract,
    extract_logical_structure,
    fault_corpus,
    read_journal,
    repair_trace,
    trace_digest,
    write_trace,
)
from repro.apps import jacobi2d
from repro.batch import options_token
from repro.cli import main
from repro.resilience import (
    ResilientExecutor,
    ResourceGuard,
    StageBreachError,
    StageError,
    StageOutcome,
    StageSpec,
    checkpoint_key,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.verify.invariants import InvariantViolationError

from .helpers import structures_equal

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def trace():
    return jacobi2d.run(chares=(4, 4), pes=4, iterations=3, seed=11)


@pytest.fixture(scope="module")
def reference(trace):
    """Uninterrupted pure-python reference extraction."""
    return extract(trace, backend="python")


# ---------------------------------------------------------------------------
# Executor unit behavior
# ---------------------------------------------------------------------------
def _spec(name, fn, **kw):
    return StageSpec(name, fn, **kw)


def test_executor_runs_stages_in_order():
    seen = []
    ex = ResilientExecutor([
        _spec("a", lambda c: seen.append("a")),
        _spec("b", lambda c: seen.append("b")),
    ])
    report = ex.run({})
    assert seen == ["a", "b"]
    assert [o.stage for o in report.outcomes] == ["a", "b"]
    assert not report.degraded and report.complete


def test_executor_raise_mode_propagates_first_error():
    def boom(ctx):
        raise KeyError("nope")

    ex = ResilientExecutor([
        _spec("a", boom, fallbacks=[("alt", lambda c: None)]),
    ], on_error="raise")
    with pytest.raises(KeyError):
        ex.run({})


def test_executor_fallback_restores_context_before_alternate():
    def primary(ctx):
        ctx["x"] = "halfway"  # mutation that must not leak into the fallback
        raise RuntimeError("primary died")

    def alternate(ctx):
        assert "x" not in ctx
        ctx["x"] = "fallback"

    ex = ResilientExecutor(
        [_spec("s", primary, fallbacks=[("alt", alternate)])],
        on_error="fallback",
    )
    ctx = {}
    report = ex.run(ctx)
    assert ctx["x"] == "fallback"
    out = report.outcome("s")
    assert out.status == "fallback" and out.path == "alt"
    assert "primary died" in out.reason
    assert report.degraded and report.complete


def test_executor_all_paths_fail_raises_stage_error():
    def boom(ctx):
        raise RuntimeError("dead")

    ex = ResilientExecutor(
        [_spec("s", boom, fallbacks=[("alt", boom)])], on_error="fallback",
    )
    with pytest.raises(StageError) as err:
        ex.run({})
    assert err.value.stage == "s" and len(err.value.errors) == 2


def test_executor_degrade_skips_degradable_stage():
    def boom(ctx):
        ctx["junk"] = 1
        raise RuntimeError("dead")

    ex = ResilientExecutor([
        _spec("good", lambda c: c.__setitem__("ok", True)),
        _spec("bad", boom, degradable=True),
        _spec("after", lambda c: c.__setitem__("ran", True)),
    ], on_error="degrade")
    ctx = {}
    report = ex.run(ctx)
    assert ctx.get("ok") and ctx.get("ran") and "junk" not in ctx
    assert report.outcome("bad").status == "skipped"
    assert report.degraded and not report.complete
    assert [o.stage for o in report.skipped] == ["bad"]


def test_executor_requires_cascades_skips():
    def boom(ctx):
        raise RuntimeError("dead")

    ex = ResilientExecutor([
        _spec("a", boom, degradable=True),
        _spec("b", lambda c: c.__setitem__("b", 1), degradable=True,
              requires=("a_done",)),
    ], on_error="degrade")
    ctx = {}
    report = ex.run(ctx)
    assert "b" not in ctx
    assert report.outcome("b").status == "skipped"
    assert "missing upstream" in report.outcome("b").reason


def test_executor_disabled_stage_produces_no_outcome():
    ex = ResilientExecutor([
        _spec("off", lambda c: c.__setitem__("off", 1),
              enabled=lambda c: False),
        _spec("on", lambda c: c.__setitem__("on", 1)),
    ])
    ctx = {}
    report = ex.run(ctx)
    assert "off" not in ctx and ctx["on"] == 1
    assert [o.stage for o in report.outcomes] == ["on"]


def test_degradation_report_round_trip():
    report = DegradationReport(outcomes=[
        StageOutcome("a"),
        StageOutcome("b", status="fallback", path="alt", reason="x"),
        StageOutcome("c", status="skipped"),
    ])
    clone = DegradationReport.from_dict(report.to_dict())
    assert [o.stage for o in clone.outcomes] == ["a", "b", "c"]
    assert clone.degraded and not clone.complete
    assert "b->alt" in report.summary() and "c:skipped" in report.summary()


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------
def test_checkpoint_save_load_round_trip(tmp_path):
    ctx = {"x": [1, 2, 3], "y": {"nested": (4, 5)}}
    blob = pickle.dumps(ctx)
    key = checkpoint_key("digest", "options")
    save_checkpoint(tmp_path, key, ["a", "b"], [{"stage": "a"}], blob)
    loaded = load_checkpoint(tmp_path, key)
    assert loaded is not None
    completed, outcomes, restored = loaded
    assert completed == ["a", "b"]
    assert outcomes == [{"stage": "a"}]
    assert restored == ctx


def test_checkpoint_corrupt_and_mismatched_files_read_as_absent(tmp_path):
    key = checkpoint_key("digest", "options")
    assert load_checkpoint(tmp_path, key) is None  # missing
    path = checkpoint_path(tmp_path, key)
    path.write_bytes(b"not a pickle at all")
    assert load_checkpoint(tmp_path, key) is None  # corrupt
    save_checkpoint(tmp_path, key, [], [], pickle.dumps({}))
    truncated = path.read_bytes()[:-10]
    path.write_bytes(truncated)
    assert load_checkpoint(tmp_path, key) is None  # torn
    other = checkpoint_key("other-digest", "options")
    save_checkpoint(tmp_path, key, [], [], pickle.dumps({}))
    os.replace(checkpoint_path(tmp_path, key), checkpoint_path(tmp_path, other))
    assert load_checkpoint(tmp_path, other) is None  # key mismatch


def test_checkpoint_key_separates_traces_and_options(trace):
    digest = trace_digest(trace)
    base = options_token(PipelineOptions())
    assert checkpoint_key(digest, base) != checkpoint_key("x", base)
    assert checkpoint_key(digest, base) != checkpoint_key(
        digest, options_token(PipelineOptions(order="physical")))
    # supervision knobs don't change the key: a resumed run may tighten
    # deadlines or flip on_error without orphaning its checkpoint
    assert options_token(PipelineOptions()) == options_token(
        PipelineOptions(on_error="degrade", stage_deadline=1.0,
                        max_rss_mb=512.0, hook_errors="raise",
                        checkpoint_dir="/tmp/x"))


# ---------------------------------------------------------------------------
# Pipeline: checkpoint resume and fallback bit-identity
# ---------------------------------------------------------------------------
def test_checkpoint_resume_is_bit_identical(trace, reference, tmp_path):
    opts = PipelineOptions(backend="python", checkpoint_dir=str(tmp_path))
    first = extract_logical_structure(trace, opts)
    assert structures_equal(first, reference)
    stats = PipelineStats()
    resumed = extract_logical_structure(trace, opts, stats)
    assert structures_equal(resumed, reference)
    assert resumed.degradation.resumed
    assert stats.checkpoint["resumed_stages"] > 0
    # resumed stage timings are still reported (from the original run)
    assert "dependency_merge" in stats.stage_seconds


def test_partial_checkpoint_resumes_midway(trace, reference, tmp_path):
    """Kill the run after an early stage; the retry picks up from there."""
    opts = PipelineOptions(backend="python", checkpoint_dir=str(tmp_path))

    class DieAfter:
        def on_stage(self, stage, *, state=None, structure=None, seconds=0.0):
            if stage == "repair_merge":
                raise KeyboardInterrupt  # not an Exception: no fallback path

    with pytest.raises(KeyboardInterrupt):
        extract_logical_structure(
            trace, opts.with_overrides(hooks=DieAfter(), hook_errors="raise"))
    key = checkpoint_key(trace_digest(trace), options_token(opts))
    loaded = load_checkpoint(tmp_path, key)
    assert loaded is not None and loaded[0][-1] == "dependency_merge"

    stats = PipelineStats()
    resumed = extract_logical_structure(trace, opts, stats)
    assert structures_equal(resumed, reference)
    assert stats.checkpoint["resumed_stages"] == 2  # initial, dependency_merge
    fresh = [o.stage for o in resumed.degradation.outcomes
             if not o.resumed]
    assert fresh[0] == "repair_merge"


def test_degraded_checkpoint_is_not_resumed_as_clean(trace, reference,
                                                     tmp_path, monkeypatch):
    """A degrade-mode run that skipped stages must not poison the
    checkpoint: the skip is never recorded as completed work, so a later
    run — even under on_error='raise' — re-attempts it and returns the
    genuinely complete structure instead of a partial one flying a
    complete=True flag."""
    from repro.core import pipeline as pl

    def boom(*a, **k):
        raise RuntimeError("ordering fault injection")

    monkeypatch.setattr(pl, "reordered_order_task", boom)
    monkeypatch.setattr(pl, "physical_order", boom)
    opts = PipelineOptions(backend="python", checkpoint_dir=str(tmp_path))
    partial = extract_logical_structure(
        trace, opts.with_overrides(on_error="degrade"))
    assert not partial.degradation.complete
    monkeypatch.undo()

    stats = PipelineStats()
    healed = extract_logical_structure(trace, opts, stats)  # on_error="raise"
    assert healed.degradation.resumed  # the clean prefix was reused
    assert healed.degradation.complete and not healed.degradation.degraded
    # the skipped stages were actually re-run, not resumed
    by_stage = healed.degradation.by_stage()
    assert not by_stage["local_steps"].resumed
    assert by_stage["local_steps"].status == "ok"
    assert structures_equal(healed, reference)


def test_resume_preserves_fallback_status(trace, tmp_path, monkeypatch):
    """Resuming re-emits the checkpointed outcomes verbatim: a fallback
    stays a fallback (and keeps the report degraded) instead of being
    rewritten to a clean-looking resumed status."""
    from repro.core import columnar

    def boom(*a, **k):
        raise RuntimeError("columnar kernel fault injection")

    monkeypatch.setattr(columnar, "build_initial_columnar", boom)
    opts = PipelineOptions(checkpoint_dir=str(tmp_path), on_error="fallback")
    first = extract_logical_structure(trace, opts)
    assert first.degradation.outcome("initial").status == "fallback"

    second = extract_logical_structure(trace, opts)
    out = second.degradation.outcome("initial")
    assert out.resumed and out.status == "fallback"
    assert out.path == "python_reference"
    assert second.degradation.degraded  # the result is still a fallback's


def test_fallback_checkpoint_refused_under_raise(trace, reference, tmp_path,
                                                 monkeypatch):
    """A checkpoint containing fallback-path results was written under a
    laxer on_error policy; resuming it under 'raise' would present those
    results as the strict run's own, so the run starts fresh instead."""
    from repro.core import columnar

    def boom(*a, **k):
        raise RuntimeError("columnar kernel fault injection")

    monkeypatch.setattr(columnar, "build_initial_columnar", boom)
    opts = PipelineOptions(checkpoint_dir=str(tmp_path), on_error="fallback")
    extract_logical_structure(trace, opts)
    monkeypatch.undo()

    stats = PipelineStats()
    clean = extract_logical_structure(
        trace, opts.with_overrides(on_error="raise"), stats)
    assert not clean.degradation.resumed
    assert stats.checkpoint["resumed_stages"] == 0
    assert not clean.degradation.degraded
    assert structures_equal(clean, reference)


def test_fallback_paths_match_python_reference(trace, reference, monkeypatch):
    """Break every columnar kernel: the run lands on the python path and
    the structure stays bit-identical."""
    from repro.core import columnar

    def boom(*a, **k):
        raise RuntimeError("columnar kernel fault injection")

    monkeypatch.setattr(columnar, "build_initial_columnar", boom)
    stats = PipelineStats()
    structure = extract_logical_structure(
        trace, PipelineOptions(on_error="fallback"), stats)
    assert structures_equal(structure, reference)
    out = structure.degradation.outcome("initial")
    assert out.status == "fallback" and out.path == "python_reference"
    assert stats.degradation["degraded"]
    # raise mode still propagates the same failure
    with pytest.raises(RuntimeError, match="columnar kernel"):
        extract_logical_structure(trace, PipelineOptions(on_error="raise",
                                                         backend="columnar"))


def test_reorder_failure_degrades_to_physical_order(trace, monkeypatch):
    """Reorder failure → physical-time ordering, per the degradation
    matrix; the result matches a straight physical-order run."""
    from repro.core import pipeline as pl

    def boom(*a, **k):
        raise RuntimeError("reorder fault injection")

    monkeypatch.setattr(pl, "reordered_order_task", boom)
    physical = extract(trace, backend="python", order="physical")
    structure = extract_logical_structure(
        trace, PipelineOptions(backend="python", on_error="fallback"))
    out = structure.degradation.outcome("local_steps")
    assert out.status == "fallback" and out.path == "physical_order"
    assert structure.step_of_event == physical.step_of_event


def test_degrade_mode_returns_partial_result(trace, monkeypatch):
    """Every ordering path dead: the run still returns phases, with the
    step assignment skipped and reported."""
    from repro.core import pipeline as pl

    def boom(*a, **k):
        raise RuntimeError("ordering fault injection")

    monkeypatch.setattr(pl, "reordered_order_task", boom)
    monkeypatch.setattr(pl, "physical_order", boom)
    stats = PipelineStats()
    structure = extract_logical_structure(
        trace, PipelineOptions(backend="python", on_error="degrade"), stats)
    assert len(structure.phases) > 0
    assert structure.degradation.degraded
    assert not structure.degradation.complete
    assert {"local_steps", "global_steps"} <= {
        o.stage for o in structure.degradation.skipped}
    # partial result: phases are known, steps are not
    assert set(structure.phase_of_event) != {-1}
    assert all(s == -1 for s in structure.step_of_event)
    assert stats.degradation["degraded"]


def test_fallback_equivalence_on_fault_corpus():
    """Repaired fault-corpus traces extract identically on the primary
    and forced-fallback paths."""
    base = jacobi2d.run(chares=(3, 3), pes=2, iterations=2, seed=5)
    corpus = fault_corpus(base, ["drop_messages", "clock_skew"], seed=3,
                          severity=0.3)
    for kind, bad in corpus.items():
        fixed, _ = repair_trace(bad, mode="fix")
        ref = extract(fixed, backend="python")
        resilient = extract_logical_structure(
            fixed, PipelineOptions(backend="python", on_error="degrade"))
        assert structures_equal(ref, resilient), kind
        assert not resilient.degradation.degraded


def test_strict_verify_failure_falls_back_and_rechecks(trace, monkeypatch):
    """An invariant violation on the primary path participates in the
    fallback machinery: the safe path re-runs and is re-verified."""
    from repro.core import columnar

    calls = {"n": 0}

    def poisoned(*a, **k):
        calls["n"] += 1
        raise RuntimeError("poisoned kernel")

    monkeypatch.setattr(columnar, "build_initial_columnar", poisoned)
    structure = extract_logical_structure(
        trace, PipelineOptions(verify=True, on_error="fallback"))
    # The batched primary delegates to the poisoned columnar builder,
    # then the "columnar" rung retries it directly: two calls before
    # the python reference rung survives.
    assert calls["n"] == 2
    assert structure.degradation.outcome("initial").path == "python_reference"


# ---------------------------------------------------------------------------
# Resource guards
# ---------------------------------------------------------------------------
def test_guard_deadline_breach_aborts_stage():
    guard = ResourceGuard(deadline=0.1, interval=0.01)
    with pytest.raises(StageBreachError):
        with guard.watch("slow"):
            time.sleep(5.0)
    assert guard.breach[0] == "slow" and guard.breach[1] == "deadline"


def test_guard_inert_without_limits():
    guard = ResourceGuard()
    assert not guard.active
    with guard.watch("s"):
        pass
    assert guard.breach is None


def test_guard_validates_limits():
    with pytest.raises(ValueError):
        ResourceGuard(deadline=0.0)
    with pytest.raises(ValueError):
        ResourceGuard(max_rss_mb=-1)


@pytest.mark.skipif(not os.path.exists("/proc/self/status"),
                    reason="needs procfs for RSS sampling")
def test_guard_rss_breach_aborts_stage():
    from repro.resilience.guard import current_rss_mb

    rss = current_rss_mb()
    assert rss is not None and rss > 0
    guard = ResourceGuard(max_rss_mb=1.0, interval=0.01)  # already over
    with pytest.raises(StageBreachError):
        with guard.watch("fat"):
            time.sleep(5.0)
    assert guard.breach[1] == "rss"


def test_watchdog_does_not_inject_after_body_completed():
    """A breach noticed only after the stage body finished is recorded
    on the outcome but never injected: a completed stage must not be
    retroactively failed by a late async exception."""
    import time as _time

    guard = ResourceGuard(deadline=0.01, interval=0.005)
    stop = threading.Event()
    injected = threading.Event()
    completed = threading.Event()
    completed.set()  # the body already finished
    guard._watchdog("late", threading.get_ident(),
                    _time.monotonic() - 1.0,  # deadline long blown
                    stop, injected, completed)
    assert guard.breach is not None and guard.breach[1] == "deadline"
    assert not injected.is_set()  # nothing was shot down


def test_pipeline_deadline_breach_fails_cleanly(trace, monkeypatch):
    """A stage hung past its deadline is soft-aborted: raise mode gets
    the breach error, fallback mode gets a StageError naming it."""
    from repro.core import pipeline as pl

    real = pl.dependency_merge

    def slow(state):
        time.sleep(5.0)
        real(state)

    monkeypatch.setattr(pl, "dependency_merge", slow)
    with pytest.raises(StageBreachError):
        extract_logical_structure(
            trace, PipelineOptions(stage_deadline=0.15, on_error="raise",
                                   backend="python"))
    with pytest.raises(StageError, match="dependency_merge"):
        extract_logical_structure(
            trace, PipelineOptions(stage_deadline=0.15, on_error="fallback",
                                   backend="python"))


def test_pipeline_generous_deadline_is_harmless(trace, reference):
    structure = extract_logical_structure(
        trace, PipelineOptions(stage_deadline=300.0, max_rss_mb=65536.0,
                               backend="python", on_error="fallback"))
    assert structures_equal(structure, reference)
    assert not structure.degradation.degraded


# ---------------------------------------------------------------------------
# Hook error policy
# ---------------------------------------------------------------------------
class _BrokenHook:
    def __init__(self):
        self.calls = 0

    def on_stage(self, stage, *, state=None, structure=None, seconds=0.0):
        self.calls += 1
        raise RuntimeError("hook bug")


def test_hook_errors_warn_continues(trace, reference):
    hook = _BrokenHook()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        structure = extract_logical_structure(
            trace, PipelineOptions(backend="python", hooks=hook))
    assert structures_equal(structure, reference)
    assert hook.calls > 1  # kept being called, stage after stage
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)
               and "hook" in str(w.message)]
    assert runtime and "_BrokenHook" in str(runtime[0].message)


def test_hook_errors_raise_aborts(trace):
    with pytest.raises(RuntimeError, match="hook bug"):
        extract_logical_structure(
            trace, PipelineOptions(backend="python", hooks=_BrokenHook(),
                                   hook_errors="raise"))


def test_invariant_violation_propagates_despite_warn(trace):
    class FakeStrict:
        def on_stage(self, stage, *, state=None, structure=None, seconds=0.0):
            raise InvariantViolationError("strict says no", [])

    with pytest.raises(InvariantViolationError):
        extract_logical_structure(
            trace, PipelineOptions(backend="python", hooks=FakeStrict(),
                                   hook_errors="warn"))


# ---------------------------------------------------------------------------
# Batch journal: crash-safe resume
# ---------------------------------------------------------------------------
def test_journal_round_trip(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path, "tok") as journal:
        journal.record_done("a", "d1", {"phases": 3}, 0.5, 1, False)
        journal.record_fail("b", "d2", "boom", 2, True)
        journal.record_done("b", "d2", {"phases": 9})  # retry succeeded
    state = read_journal(path)
    assert state.options == "tok"
    assert set(state.done) == {"d1", "d2"}
    assert not state.failed  # the later done superseded the fail
    assert state.done["d2"]["summary"] == {"phases": 9}


def test_journal_tolerates_torn_tail(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path, "tok") as journal:
        journal.record_done("a", "d1", {})
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "done", "digest": "d2", "summ')  # kill -9 here
    state = read_journal(path)
    assert state.is_done("d1") and not state.is_done("d2")
    assert state.corrupt_lines == 1
    # and the journal can keep appending after the torn tail
    with RunJournal(path, "tok", resume=True) as journal:
        assert journal.is_done("d1")
        journal.record_done("c", "d3", {})
    assert read_journal(path).is_done("d3")


def test_journal_resume_terminates_torn_tail(tmp_path):
    """Resume after a kill -9 mid-append must terminate the torn final
    line before writing its meta line; otherwise the two concatenate
    into one unparseable line, the meta is lost, and the next resume's
    options-mismatch guard is silently skipped."""
    path = tmp_path / "j.jsonl"
    # the run died while appending its very first line (the meta): the
    # torn fragment is the journal's only meta candidate
    path.write_bytes(b'{"kind": "meta", "version": 1, "opt')
    with RunJournal(path, "tok", resume=True) as journal:
        journal.record_done("a", "d1", {})
    state = read_journal(path)
    assert state.options == "tok"  # the resumed run's meta survived
    assert state.is_done("d1")
    assert state.corrupt_lines == 1  # only the torn fragment itself
    # the guard therefore still refuses a mismatched later resume
    with pytest.raises(ValueError, match="different pipeline options"):
        RunJournal(path, "tok-other", resume=True)


def test_journal_missing_file_reads_empty(tmp_path):
    state = read_journal(tmp_path / "absent.jsonl")
    assert state.entries == 0 and not state.done


def test_journal_options_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "j.jsonl"
    RunJournal(path, "tok-a").close()
    with pytest.raises(ValueError, match="different pipeline options"):
        RunJournal(path, "tok-b", resume=True)


def test_batch_resume_skips_done_traces(tmp_path):
    traces = [jacobi2d.run(chares=(3, 3), pes=2, iterations=1, seed=s)
              for s in range(3)]
    path = tmp_path / "j.jsonl"
    first = BatchExtractor(journal=path).run(traces[:2])
    assert first.ok and not first.resumed
    second = BatchExtractor(journal=path, resume=True).run(traces)
    assert second.ok
    assert [r.resumed for r in second.results] == [True, True, False]
    assert len(read_journal(path).done) == 3
    doc = second.to_dict()
    assert doc["resumed"] == 2
    assert doc["results"][0]["resumed"] is True


def test_batch_resume_requires_journal():
    with pytest.raises(ValueError, match="journal"):
        BatchExtractor(resume=True)


def test_batch_sigkill_mid_run_resumes_without_rework(tmp_path):
    """SIGKILL the batch while it grinds through a corpus; the resumed
    run completes it and re-extracts only unfinished traces."""
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    paths = []
    for s in range(4):
        p = corpus_dir / f"t{s}.jsonl"
        write_trace(jacobi2d.run(chares=(4, 4), pes=4, iterations=3, seed=s),
                    p)
        paths.append(str(p))
    journal = tmp_path / "run.jsonl"
    script = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.batch import BatchExtractor\n"
        "BatchExtractor(journal={journal!r}).run({paths!r})\n"
    ).format(src=str(Path(__file__).resolve().parents[1] / "src"),
             journal=str(journal), paths=paths)
    proc = subprocess.Popen([sys.executable, "-c", script])
    # kill -9 once at least one trace has been journaled as done
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break  # finished everything before we got the kill in
        if len(read_journal(journal).done) >= 1:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            break
        time.sleep(0.005)
    else:
        proc.kill()
        pytest.fail("worker never journaled a completed trace")
    done_before = set(read_journal(journal).done)
    assert done_before  # the journal survived the kill

    report = BatchExtractor(journal=journal, resume=True).run(paths)
    assert report.ok and len(report.results) == len(paths)
    resumed = {trace_digest(p) for p, r in zip(paths, report.results)
               if r.resumed}
    # exactly the traces journaled before the kill were skipped
    assert resumed == done_before
    assert len(read_journal(journal).done) == len(paths)


def test_degraded_summaries_are_not_cached(tmp_path, monkeypatch):
    from repro.core import pipeline as pl

    def boom(*a, **k):
        raise RuntimeError("ordering fault injection")

    monkeypatch.setattr(pl, "reordered_order_task", boom)
    monkeypatch.setattr(pl, "physical_order", boom)
    cache = StructureCache(tmp_path / "cache")
    trace = jacobi2d.run(chares=(3, 3), pes=2, iterations=1, seed=9)
    report = BatchExtractor(
        PipelineOptions(backend="python", on_error="degrade"),
        cache=cache).run([trace])
    assert report.ok
    assert report.results[0].summary["degradation"]["degraded"]
    assert cache.stats()["disk_entries"] == 0  # degraded: never cached


# ---------------------------------------------------------------------------
# Structure cache caps
# ---------------------------------------------------------------------------
def test_cache_entry_cap_evicts_lru(tmp_path):
    cache = StructureCache(tmp_path, max_entries=2)
    cache.put("k1", {"v": 1})
    time.sleep(0.01)
    cache.put("k2", {"v": 2})
    time.sleep(0.01)
    assert cache.get("k1") is not None  # touch k1: k2 becomes LRU
    time.sleep(0.01)
    cache.put("k3", {"v": 3})
    stats = cache.stats()
    assert stats["disk_entries"] == 2 and stats["evictions"] == 1
    fresh = StructureCache(tmp_path)
    assert fresh.get("k2") is None  # the untouched entry was evicted
    assert fresh.get("k1") is not None and fresh.get("k3") is not None


def test_cache_byte_cap_and_prune(tmp_path):
    cache = StructureCache(tmp_path)
    for i in range(6):
        cache.put(f"k{i}", {"payload": "x" * 100, "i": i})
        time.sleep(0.01)
    total = cache.stats()["disk_bytes"]
    removed = cache.prune(max_bytes=total // 2)
    assert removed >= 3
    assert cache.stats()["disk_bytes"] <= total // 2
    with pytest.raises(ValueError):
        cache.prune(max_entries=0)
    with pytest.raises(ValueError):
        StructureCache(tmp_path, max_entries=0)


def test_uncapped_cache_put_skips_disk_scan(tmp_path, monkeypatch):
    """With neither cap set there is nothing to evict: put() must not
    glob/stat the whole cache directory on every insert."""
    cache = StructureCache(tmp_path)
    calls = []
    monkeypatch.setattr(cache, "prune",
                        lambda *a, **k: calls.append(a) or 0)
    cache.put("k", {"v": 1})
    assert not calls
    assert cache.get("k") == {"v": 1}
    # a capped cache still prunes on put
    capped = StructureCache(tmp_path, max_entries=1)
    monkeypatch.setattr(capped, "prune",
                        lambda *a, **k: calls.append(a) or 0)
    capped.put("k2", {"v": 2})
    assert calls


def test_cache_cli_stats_and_prune(tmp_path, capsys):
    cache = StructureCache(tmp_path)
    for i in range(3):
        cache.put(f"k{i}", {"i": i})
        time.sleep(0.01)
    assert main(["cache", str(tmp_path), "--stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["disk_entries"] == 3
    assert main(["cache", str(tmp_path), "--prune", "--max-entries", "1"]) == 0
    out = capsys.readouterr().out
    assert "pruned 2" in out
    assert main(["cache", str(tmp_path), "--prune"]) == 2  # caps required


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace_file(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("cli") / "t.jsonl"
    write_trace(trace, path)
    return str(path)


def test_cli_batch_journal_resume(trace_file, tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    assert main(["batch", trace_file, "--journal", str(journal)]) == 0
    capsys.readouterr()
    assert main(["batch", trace_file, "--resume", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "resumed" in out
    assert main(["batch", trace_file, "--journal", str(journal),
                 "--resume", str(journal)]) == 2  # mutually exclusive


def test_cli_batch_resume_rejects_other_options(trace_file, tmp_path, capsys):
    journal = tmp_path / "j.jsonl"
    assert main(["batch", trace_file, "--journal", str(journal)]) == 0
    capsys.readouterr()
    assert main(["batch", trace_file, "--resume", str(journal),
                 "--order", "physical"]) == 2
    assert "different pipeline options" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["batch", "t.jsonl", "--timeout", "0"],
    ["batch", "t.jsonl", "--timeout", "-3"],
    ["batch", "t.jsonl", "--timeout", "nan"],
    ["batch", "t.jsonl", "--timeout", "abc"],
    ["batch", "t.jsonl", "--retries", "-1"],
    ["batch", "t.jsonl", "--retries", "1.5"],
    ["batch", "t.jsonl", "--backoff", "-0.5"],
])
def test_cli_batch_rejects_bad_numbers(argv, capsys):
    with pytest.raises(SystemExit) as err:
        main(argv)
    assert err.value.code == 2
    assert "expected a" in capsys.readouterr().err


def test_cli_analyze_reports_degradation(trace_file, tmp_path, capsys):
    assert main(["analyze", trace_file, "--json", "--on-error", "degrade",
                 "--checkpoint-dir", str(tmp_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["degradation"]["complete"] is True
    assert not doc["degradation"]["degraded"]
    # second run resumes from the checkpoint
    assert main(["analyze", trace_file, "--json", "--on-error", "degrade",
                 "--checkpoint-dir", str(tmp_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["degradation"]["resumed"] is True
