"""Overload & failure drills for ``repro serve`` (``-m serve``).

The load-shedding half of the robustness story: floods past the queue
bound (bounded memory, 429 + ``Retry-After``, zero accepted-job
losses), slow-loris half-sent requests (408 under the read deadline),
handler deadlines (503), queue-age expiry, the worker-pool circuit
breaker's full open → half-open → closed cycle, graceful SIGTERM
drain with a real signal, and the retrying client that consumes all of
the above.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.chaos import FaultPlan
from repro.cli import main as cli_main
from repro.serve import (ClientError, JobService, ServeClient,
                         read_job_ledger, start_server_thread)

pytestmark = pytest.mark.serve

POLL_DEADLINE = 120.0


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("overload") / "trace.jsonl"
    rc = cli_main(["simulate", "jacobi2d", "--chares", "4x4", "--pes", "4",
                   "--iterations", "2", "--seed", "1", "-o", str(path)])
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def expected_json(trace_file):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        assert cli_main(["analyze", str(trace_file), "--json"]) == 0
    return buf.getvalue()


def http(port, method, path, data=None, timeout=30):
    """(status, body, headers) against the thread server."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers or {})


def wait_status(service, job_id, statuses, deadline=POLL_DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if service.job(job_id).status in statuses:
            return service.job(job_id)
        time.sleep(0.02)
    raise AssertionError(
        f"{job_id} still {service.job(job_id).status} after {deadline}s")


# ----------------------------------------------------------------------
# Admission control: the queue bound is a real wall
# ----------------------------------------------------------------------
def test_flood_past_queue_bound_sheds_with_429(tmp_path):
    bound = 5
    service = JobService(tmp_path / "d", workers=0, max_queue=bound)
    port, stop = start_server_thread(service)
    accepted, rejected = [], 0
    try:
        # Distinct payloads -> distinct digests -> no cache fast-path.
        for n in range(30):
            _, body, _ = http(port, "POST", "/v1/traces",
                              f"flood-{n}\n".encode())
            ref = json.loads(body)["trace"]
            status, body, headers = http(
                port, "POST", "/v1/jobs",
                json.dumps({"trace": ref}).encode())
            if status == 202:
                accepted.append(json.loads(body)["job"])
            else:
                # Every rejection is a 429 with usable pacing advice.
                assert status == 429
                assert "queue full" in json.loads(body)["error"]
                assert int(headers["Retry-After"]) >= 1
                rejected += 1

        # Memory stays bounded at the admission wall...
        assert len(accepted) == bound and rejected == 30 - bound
        stats = json.loads(http(port, "GET", "/v1/stats")[1])
        assert stats["queue_depth"] == bound
        assert stats["max_queue"] == bound
        assert stats["jobs"]["queued"] == bound
        assert stats["rejected"]["queue_full"] == rejected
    finally:
        stop()
        service.stop()

    # ...and zero accepted jobs were lost: the ledger holds exactly the
    # accepted set (rejections were never journaled).
    ledger = read_job_ledger(tmp_path / "d" / "jobs.jsonl")
    assert sorted(ledger) == sorted(accepted)


# ----------------------------------------------------------------------
# Deadlines: slow-loris reads and slow handlers
# ----------------------------------------------------------------------
def test_half_sent_request_times_out_408(tmp_path):
    service = JobService(tmp_path / "d", workers=0)
    port, stop = start_server_thread(service, read_timeout=0.3)
    try:
        started = time.monotonic()
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(b"GET /healthz HTT")  # ...and then never finish
            chunks = []
            while True:
                data = sock.recv(4096)
                if not data:
                    break
                chunks.append(data)
        elapsed = time.monotonic() - started
        response = b"".join(chunks)
        assert b"408" in response.split(b"\r\n", 1)[0]
        assert b"timed out reading" in response
        assert elapsed < 5.0  # freed well inside the poll budget

        # The stalled peer cost one connection, not the server.
        status, body, _ = http(port, "GET", "/healthz")
        assert status == 200 and json.loads(body)["ok"] is True
    finally:
        stop()
        service.stop()


def test_handler_deadline_returns_503(tmp_path):
    service = JobService(tmp_path / "d", workers=0)

    def slow_upload(data):
        time.sleep(5.0)
        return {"trace": "upload:deadbeef"}

    service.upload = slow_upload
    port, stop = start_server_thread(service, handler_timeout=0.2)
    try:
        started = time.monotonic()
        status, body, headers = http(port, "POST", "/v1/traces", b"x")
        assert status == 503
        assert time.monotonic() - started < 4.0
        assert "deadline" in json.loads(body)["error"]
        assert int(headers["Retry-After"]) >= 1
    finally:
        stop()
        service.stop()


def test_queue_age_expiry_sheds_stale_jobs(tmp_path, trace_file):
    service = JobService(tmp_path / "d", workers=1, max_queue_age=0.05)
    ref = service.upload(trace_file.read_bytes())["trace"]
    job = service.submit(ref)
    time.sleep(0.2)  # grow stale before any worker exists
    service.start()
    try:
        record = wait_status(service, job.id, ("expired", "done", "failed"))
        assert record.status == "expired"
        assert "waited longer than" in record.error
        stats = service.stats()
        assert stats["shed"]["expired"] == 1
        assert stats["jobs"].get("expired") == 1

        # Fresh jobs still run: expiry sheds the stale backlog only.
        job2 = service.submit(ref, {"order": "physical"})
        assert wait_status(service, job2.id,
                           ("done", "failed")).status == "done"
    finally:
        service.stop()

    # "expired" is terminal: a restart must not resurrect the job.
    service = JobService(tmp_path / "d", workers=0)
    try:
        assert service.recovered == 0
        assert service.job(job.id).status == "expired"
    finally:
        service.stop()


# ----------------------------------------------------------------------
# Circuit breaker: open -> half-open -> closed, end to end
# ----------------------------------------------------------------------
def wait_breaker(service, state, deadline=10.0):
    """The worker records breaker outcomes just after job status flips;
    poll briefly so assertions don't race that window."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if service.breaker.state() == state:
            return
        time.sleep(0.01)
    raise AssertionError(f"breaker stuck {service.breaker.state()!r}, "
                         f"wanted {state!r}")


def test_breaker_opens_rejects_probes_and_recovers(tmp_path, trace_file,
                                                   expected_json):
    # Worker.run calls 1 and 2 crash (two distinct jobs); call 3 runs.
    plan = FaultPlan(specs=["worker.run:crash:at=1", "worker.run:crash:at=2",
                            "tick:skew:skew=60"])
    service = JobService(tmp_path / "d", workers=1, chaos=plan,
                         breaker_threshold=2, breaker_cooldown=30.0)
    service.start()
    port, stop = start_server_thread(service)
    try:
        ref = service.upload(trace_file.read_bytes())["trace"]
        job1 = service.submit(ref)
        assert wait_status(service, job1.id,
                           ("done", "failed")).status == "failed"
        assert "WorkerCrash" in service.job(job1.id).error
        end = time.monotonic() + 10.0
        while (service.breaker.snapshot()["consecutive_crashes"] != 1
               and time.monotonic() < end):
            time.sleep(0.01)
        # One crash is below threshold: still admitting.
        assert service.breaker.snapshot() \
            ["consecutive_crashes"] == 1
        assert service.breaker.state() == "closed"

        job2 = service.submit(ref, {"order": "physical"})
        assert wait_status(service, job2.id,
                           ("done", "failed")).status == "failed"
        # Second consecutive distinct-job crash: the breaker opens.
        wait_breaker(service, "open")

        status, body, headers = http(
            port, "POST", "/v1/jobs", json.dumps({"trace": ref}).encode())
        assert status == 503
        assert "circuit breaker" in json.loads(body)["error"]
        assert int(headers["Retry-After"]) >= 1
        stats = json.loads(http(port, "GET", "/v1/stats")[1])
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["opened"] == 1
        assert stats["rejected"]["breaker"] >= 1

        # Advance the breaker's (injected) clock past the cooldown: the
        # skew fault jumps it 60s without the test sleeping 30.
        plan.trip("tick")
        assert service.breaker.state() == "half_open"

        # Exactly one probe is admitted while half-open...
        probe = service.submit(ref)
        with pytest.raises(Exception) as excinfo:
            service.submit(ref, {"order": "physical"})
        assert getattr(excinfo.value, "status", None) == 503

        # ...and its success closes the breaker for good.
        assert wait_status(service, probe.id,
                           ("done", "failed")).status == "done"
        wait_breaker(service, "closed")
        status, body, _ = http(port, "GET",
                               f"/v1/jobs/{probe.id}/result")
        assert status == 200 and body.decode("utf-8") == expected_json
        assert service.submit(ref).status == "done"  # cached, admitted
    finally:
        stop()
        service.stop()


# ----------------------------------------------------------------------
# Graceful drain on a real signal
# ----------------------------------------------------------------------
def _repo_src():
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def test_sigterm_drains_inflight_work_then_exits_zero(tmp_path, trace_file):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [_repo_src(), env.get("PYTHONPATH", "")] if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir",
         str(tmp_path / "d"), "--port", "0", "--workers", "1",
         "--drain-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env)
    try:
        line = proc.stdout.readline().decode()
        assert "listening on http://127.0.0.1:" in line, line
        port = int(line.split("http://127.0.0.1:")[1].split()[0])

        _, body, _ = http(port, "POST", "/v1/traces",
                          trace_file.read_bytes())
        ref = json.loads(body)["trace"]
        status, body, _ = http(port, "POST", "/v1/jobs",
                               json.dumps({"trace": ref}).encode())
        assert status == 202
        job_id = json.loads(body)["job"]

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=POLL_DEADLINE)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == 0
    assert b"drained; shutting down" in out

    # The accepted job reached a durable terminal line before exit.
    ledger = read_job_ledger(tmp_path / "d" / "jobs.jsonl")
    assert ledger[job_id].status == "done"


# ----------------------------------------------------------------------
# The retrying client
# ----------------------------------------------------------------------
def test_client_retries_429_honoring_retry_after(tmp_path):
    service = JobService(tmp_path / "d", workers=0, max_queue=1)
    port, stop = start_server_thread(service)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}", retries=2,
                             backoff=0.001, max_backoff=0.02, seed=7)
        ref = client.upload(b"payload-a\n")["trace"]
        client.submit(ref)  # fills the queue
        ref2 = client.upload(b"payload-b\n")["trace"]
        with pytest.raises(ClientError) as excinfo:
            client.submit(ref2)
        assert excinfo.value.status == 429
        assert "3 attempt(s)" in str(excinfo.value)
        # Retry-After (1s) floors each delay, capped by max_backoff.
        assert client.sleeps == [0.02, 0.02]
    finally:
        stop()
        service.stop()


def test_client_does_not_retry_validation_errors(tmp_path):
    service = JobService(tmp_path / "d", workers=0)
    port, stop = start_server_thread(service)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}", retries=5,
                             backoff=0.001, seed=7)
        with pytest.raises(ClientError) as excinfo:
            client.submit("upload:feedfacefeedface")
        assert excinfo.value.status == 400
        assert client.sleeps == []  # immediate failure, zero backoff
    finally:
        stop()
        service.stop()


def test_client_retries_transport_failures_with_full_jitter():
    # Nothing listens here: every attempt is a connection failure.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    client = ServeClient(f"http://127.0.0.1:{dead_port}", retries=3,
                         backoff=0.001, max_backoff=0.004, seed=11)
    with pytest.raises(ClientError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 0
    assert len(client.sleeps) == 3
    # Full jitter: every delay drawn from [0, min(cap, base * 2^n)].
    for attempt, delay in enumerate(client.sleeps):
        assert 0.0 <= delay <= min(0.004, 0.001 * (2 ** attempt)) + 1e-9


def test_client_end_to_end_analyze_matches_cli(tmp_path, trace_file,
                                               expected_json):
    service = JobService(tmp_path / "d", workers=1)
    service.start()
    port, stop = start_server_thread(service)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}", seed=3)
        document = client.analyze(trace_file.read_bytes(),
                                  deadline=POLL_DEADLINE)
        assert document == expected_json
    finally:
        stop()
        service.stop()


# ----------------------------------------------------------------------
# CLI surfacing: `repro submit --stats`
# ----------------------------------------------------------------------
def test_submit_stats_cli_reports_backpressure_counters(tmp_path):
    service = JobService(tmp_path / "d", workers=0, max_queue=8)
    port, stop = start_server_thread(service)
    try:
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(["submit", "--stats",
                           "--url", f"http://127.0.0.1:{port}"])
        assert rc == 0
        out = buf.getvalue()
        assert "queue depth 0/8" in out
        assert "breaker closed" in out
        assert "ledger durable" in out
        assert "health ok" in out

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(["submit", "--stats", "--json",
                           "--url", f"http://127.0.0.1:{port}"])
        assert rc == 0
        doc = json.loads(buf.getvalue())
        assert doc["max_queue"] == 8
        assert doc["breaker"]["state"] == "closed"
    finally:
        stop()
        service.stop()
