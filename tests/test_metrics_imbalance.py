"""Per-phase processor imbalance (Section 4, Figure 14)."""

import pytest

from repro.apps import jacobi2d
from repro.core import extract_logical_structure
from repro.metrics import imbalance
from repro.sim.noise import SlowProcessor


def test_imbalance_nonnegative_and_zero_for_min(jacobi_structure):
    result = imbalance(jacobi_structure)
    assert all(v >= 0 for v in result.by_phase_pe.values())
    # Per phase, the minimally loaded PE has imbalance exactly 0.
    phases = {p for p, _pe in result.by_phase_pe}
    for phase in phases:
        values = [v for (p, _pe), v in result.by_phase_pe.items() if p == phase]
        assert min(values) == pytest.approx(0.0)


def test_max_by_phase_is_spread(jacobi_structure):
    result = imbalance(jacobi_structure)
    for phase, spread in result.max_by_phase.items():
        values = [v for (p, _pe), v in result.by_phase_pe.items() if p == phase]
        assert spread == pytest.approx(max(values))


def test_slow_processor_dominates_imbalance():
    """Figure 14: a straggler PE shows up as the imbalanced processor in
    the compute phases."""
    trace = jacobi2d.run(chares=(4, 4), pes=4, iterations=3, seed=7,
                         noise=SlowProcessor([2], factor=3.0))
    structure = extract_logical_structure(trace)
    result = imbalance(structure)
    # In the application phases, PE 2 carries the worst imbalance.
    app_phases = [p.id for p in structure.application_phases() if len(p) > 8]
    assert app_phases
    for phase in app_phases:
        loads = {pe: v for (p, pe), v in result.by_phase_pe.items() if p == phase}
        assert max(loads, key=loads.get) == 2


def test_by_event_matches_phase_pe(jacobi_structure):
    result = imbalance(jacobi_structure)
    trace = jacobi_structure.trace
    for ev, value in list(result.by_event.items())[:200]:
        phase = jacobi_structure.phase_of_event[ev]
        pe = trace.events[ev].pe
        assert value == result.by_phase_pe[(phase, pe)]


def test_worst_phase_helper(jacobi_structure):
    result = imbalance(jacobi_structure)
    worst = result.worst_phase()
    assert result.max_by_phase[worst] == max(result.max_by_phase.values())
