"""Batch extraction driver: cache keying, worker isolation, determinism."""

from __future__ import annotations

import pytest

from repro.api import (
    BatchExtractor,
    PipelineOptions,
    StructureCache,
    trace_digest,
    write_trace,
)
from repro.apps import jacobi2d, pdes


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    paths = []
    for name, trace in [
        ("jacobi", jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=1)),
        ("pdes", pdes.run(chares=8, pes=4, seed=2)),
    ]:
        path = root / f"{name}.jsonl"
        write_trace(trace, path)
        paths.append(str(path))
    return paths


def test_digest_content_keyed(trace_files, tmp_path):
    d1 = trace_digest(trace_files[0])
    assert d1 == trace_digest(trace_files[0])
    assert d1 != trace_digest(trace_files[1])
    # The key is the bytes, not the path.
    copy = tmp_path / "renamed.jsonl"
    copy.write_bytes(open(trace_files[0], "rb").read())
    assert trace_digest(str(copy)) == d1


def test_cache_hit_and_miss_on_option_change(trace_files):
    cache = StructureCache()
    opts = PipelineOptions()
    report = BatchExtractor(opts, cache=cache).run(trace_files)
    assert report.ok
    assert all(not r.cached for r in report.results)

    again = BatchExtractor(opts, cache=cache).run(trace_files)
    assert again.ok
    assert all(r.cached for r in again.results)
    assert again.results[0].summary == report.results[0].summary

    # Any option change must miss: same traces, different pipeline.
    changed = BatchExtractor(
        PipelineOptions(order="physical"), cache=cache
    ).run(trace_files)
    assert changed.ok
    assert all(not r.cached for r in changed.results)


def test_cache_persists_across_extractors(trace_files, tmp_path):
    cache_dir = tmp_path / "cache"
    first = BatchExtractor(
        cache=StructureCache(cache_dir)
    ).run(trace_files)
    assert first.ok and first.cache_hits == 0
    # A brand-new cache object over the same directory reuses the files.
    second = BatchExtractor(
        cache=StructureCache(cache_dir)
    ).run(trace_files)
    assert second.ok
    assert all(r.cached for r in second.results)


def test_worker_failure_isolated(trace_files, tmp_path):
    bogus = tmp_path / "not_a_trace.jsonl"
    bogus.write_text("this is not a trace\n")
    missing = str(tmp_path / "missing.jsonl")
    sources = [trace_files[0], str(bogus), missing, trace_files[1]]
    report = BatchExtractor().run(sources)
    assert not report.ok
    assert [r.ok for r in report.results] == [True, False, False, True]
    assert all(r.error for r in report.failures)
    # Failures are captured per trace; good traces still extracted.
    assert report.results[0].summary["phases"] > 0


def test_parallel_matches_serial(trace_files):
    serial = BatchExtractor(jobs=1).run(trace_files)
    parallel = BatchExtractor(jobs=2).run(trace_files)
    assert serial.ok and parallel.ok
    for s, p in zip(serial.results, parallel.results):
        assert s.source == p.source
        assert {k: v for k, v in s.summary.items()
                if not k.endswith("seconds")} == \
               {k: v for k, v in p.summary.items()
                if not k.endswith("seconds")}


def test_in_memory_traces_accepted():
    trace = jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=1)
    cache = StructureCache()
    report = BatchExtractor(cache=cache).run([trace])
    assert report.ok
    assert trace_digest(trace) == trace_digest(trace)
    again = BatchExtractor(cache=cache).run([trace])
    assert again.results[0].cached


def test_sharded_layout_reads_and_writes(tmp_path):
    """shard_prefix places entries in key-prefix subdirectories, and a
    sharded cache still reads entries a flat (legacy) cache wrote."""
    directory = tmp_path / "cache"
    flat = StructureCache(directory)  # shard_prefix=0: flat layout
    flat.put("ab" + "0" * 62, {"phases": 1})
    assert (directory / ("ab" + "0" * 62 + ".json")).is_file()

    sharded = StructureCache(directory, shard_prefix=2)
    # Legacy flat entry is still a hit through the sharded instance.
    assert sharded.get("ab" + "0" * 62) == {"phases": 1}
    sharded.put("cd" + "1" * 62, {"phases": 2})
    assert (directory / "cd" / ("cd" + "1" * 62 + ".json")).is_file()

    stats = sharded.stats()
    assert stats["disk_entries"] == 2
    assert stats["shard_prefix"] == 2
    assert stats["shards"]["cd"]["entries"] == 1


def test_per_shard_byte_quota_prunes_lru_within_shard(tmp_path):
    cache = StructureCache(tmp_path / "cache", shard_prefix=2)
    big = {"fill": ["x" * 64] * 8}
    # Three entries in shard "aa", one in shard "bb".
    keys_aa = ["aa" + f"{i}" * 62 for i in (1, 2, 3)]
    key_bb = "bb" + "4" * 62
    for key in keys_aa + [key_bb]:
        cache.put(key, big)
    # Pin distinct mtimes so LRU order is deterministic even on coarse
    # filesystem timestamp granularity.
    import os as _os
    for age, key in enumerate(keys_aa + [key_bb]):
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        _os.utime(path, (1_000_000 + age, 1_000_000 + age))
    entry_bytes = cache.stats()["shards"]["bb"]["bytes"]

    # A quota that fits one entry per shard evicts the two oldest from
    # "aa" and leaves "bb" untouched.
    cache.prune(max_shard_bytes=entry_bytes)
    stats = cache.stats()
    assert stats["shards"]["aa"]["bytes"] <= entry_bytes
    assert stats["shards"]["bb"]["entries"] == 1
    assert cache.get(key_bb) is not None
    assert cache.get(keys_aa[-1]) is not None  # newest in "aa" survives
