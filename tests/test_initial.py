"""Initial partitioning: blocks, absorption, splitting, and edges."""

import pytest

from repro.core.initial import build_blocks, build_initial
from repro.core.partition import EdgeKind
from tests.helpers import SyntheticTrace


def test_plain_entry_absorbed_into_following_serial():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "plain", 0, 0.0, 1.0)
    st.block(a, "serial1", 0, 1.0, 2.0, sdag=True, ordinal=1)
    trace = st.build()
    blocks, block_of_exec = build_blocks(trace)
    assert len(blocks) == 1
    assert block_of_exec == [0, 0]
    assert blocks[0].sdag_ordinal == 1


def test_serial_before_serial_not_absorbed():
    """Serial-to-serial adjacency must stay an edge, not a merge —
    otherwise back-to-back exchange phases glue together (Section 2.1)."""
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "when1", 0, 0.0, 1.0, sdag=True, ordinal=1)
    st.block(a, "serial2", 0, 1.0, 2.0, sdag=True, ordinal=2)
    trace = st.build()
    blocks, _ = build_blocks(trace)
    assert len(blocks) == 2


def test_gap_prevents_absorption():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    st.block(a, "plain", 0, 0.0, 1.0)
    st.block(a, "serial1", 0, 1.5, 2.0, sdag=True, ordinal=1)
    trace = st.build()
    blocks, _ = build_blocks(trace)
    assert len(blocks) == 2


def test_pe_change_prevents_absorption():
    st = SyntheticTrace(num_pes=2)
    a = st.chare("A")
    st.block(a, "plain", 0, 0.0, 1.0)
    st.block(a, "serial1", 1, 1.0, 2.0, sdag=True, ordinal=1)
    trace = st.build()
    blocks, _ = build_blocks(trace)
    assert len(blocks) == 2


def test_block_split_at_runtime_boundary_fig2():
    """Figure 2: app events then runtime events in one serial block give
    two initial partitions joined by a BLOCK edge."""
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    b = st.chare("B")
    mgr = st.chare("Mgr", is_runtime=True)
    st.block(a, "work", 0, 0.0, 4.0, [
        ("send", "app1", 1.0),
        ("send", "app2", 1.5),
        ("send", "rt1", 2.0),
    ])
    st.block(b, "recv", 0, 5.0, 6.0, [("recv", "app1", 5.0), ("recv", "app2", 5.5)])
    st.block(mgr, "collect", 0, 6.0, 7.0, [("recv", "rt1", 6.0)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    state = initial.state
    # Block of chare A split into app piece (2 events) and runtime piece.
    a_pieces = [i for i, bid in enumerate(state.init_block)
                if initial.blocks[bid].chare == a]
    assert len(a_pieces) == 2
    sizes = sorted(len(state.init_events[p]) for p in a_pieces)
    assert sizes == [1, 2]
    flags = sorted(state.init_runtime[p] for p in a_pieces)
    assert flags == [False, True]
    block_edges = [e for e in state.edges if e[2] == EdgeKind.BLOCK]
    assert len(block_edges) == 1


def test_sdag_edges_from_latest_lower_ordinal():
    """Every ordinal-(n+1) block after the latest ordinal-n block gets a
    happened-before edge from it."""
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    b = st.chare("B")
    st.block(a, "s0", 0, 0.0, 1.0, [("send", "x", 0.5)], sdag=True, ordinal=0)
    st.block(a, "w1a", 0, 2.0, 3.0, [("recv", "q1", 2.0)], sdag=True, ordinal=1)
    st.block(a, "w1b", 0, 3.5, 4.0, [("recv", "q2", 3.5)], sdag=True, ordinal=1)
    st.block(b, "peer", 0, 0.0, 2.0, [
        ("send", "q1", 0.5), ("send", "q2", 1.0), ("recv", "x", 1.5)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    sdag = [e for e in initial.state.edges if e[2] == EdgeKind.SDAG]
    # s0 -> w1a and s0 -> w1b.
    assert len(sdag) == 2


def test_mpi_mode_one_event_per_partition_with_chain():
    st = SyntheticTrace(num_pes=2)
    r0 = st.chare("r0", pe=0)
    r1 = st.chare("r1", pe=1)
    st.block(r0, "MPI_Send", 0, 0.0, 1.0, [("send", "m", 0.0)])
    st.block(r0, "MPI_Recv", 0, 2.0, 3.0, [("recv", "n", 2.5)])
    st.block(r1, "MPI_Recv", 1, 2.0, 3.0, [("recv", "m", 2.5)])
    st.block(r1, "MPI_Send", 1, 0.0, 1.0, [("send", "n", 0.0)])
    trace = st.build()
    initial = build_initial(trace, mode="mpi")
    state = initial.state
    assert len(state.init_events) == 4
    assert all(len(evs) == 1 for evs in state.init_events)
    chains = [e for e in state.edges if e[2] == EdgeKind.CHAIN]
    assert len(chains) == 2  # one per process


def test_mpi_relaxed_chain_skips_matched_recvs():
    st = SyntheticTrace(num_pes=2)
    r0 = st.chare("r0", pe=0)
    r1 = st.chare("r1", pe=1)
    st.block(r1, "MPI_Send", 1, 0.0, 1.0, [("send", "a", 0.0)])
    st.block(r1, "MPI_Send", 1, 1.0, 2.0, [("send", "b", 1.0)])
    st.block(r0, "MPI_Recv", 0, 2.0, 3.0, [("recv", "a", 2.5)])
    st.block(r0, "MPI_Recv", 0, 3.0, 4.0, [("recv", "b", 3.5)])
    st.block(r0, "MPI_Send", 0, 4.0, 5.0, [("send", "c", 4.0)])
    st.block(r1, "MPI_Recv", 1, 5.0, 6.0, [("recv", "c", 5.5)])
    trace = st.build()
    strict = build_initial(trace, mode="mpi", relaxed_chain=False)
    relaxed = build_initial(trace, mode="mpi", relaxed_chain=True)
    strict_chains = [e for e in strict.state.edges if e[2] == EdgeKind.CHAIN]
    relaxed_chains = [e for e in relaxed.state.edges if e[2] == EdgeKind.CHAIN]
    # Strict: recv->recv, recv->send on r0; send->send, send->recv on r1.
    assert len(strict_chains) == 4
    # Relaxed: only edges into sends survive (recv->send, send->send);
    # matched receives float.
    assert len(relaxed_chains) == 2


def test_mpi_relaxed_chain_keeps_unmatched_recv_pinned():
    st = SyntheticTrace(num_pes=1)
    r0 = st.chare("r0", pe=0)
    st.block(r0, "MPI_Send", 0, 0.0, 1.0, [("send", "out", 0.0)])
    st.block(r0, "MPI_Recv", 0, 2.0, 3.0, [("recv", "untraced", 2.5)])
    trace = st.build()
    relaxed = build_initial(trace, mode="mpi", relaxed_chain=True)
    chains = [e for e in relaxed.state.edges if e[2] == EdgeKind.CHAIN]
    assert len(chains) == 1


def test_unknown_mode_rejected():
    st = SyntheticTrace()
    with pytest.raises(ValueError, match="mode"):
        build_initial(st.build(), mode="spark")


def test_message_edges_created_for_complete_messages():
    st = SyntheticTrace(num_pes=1)
    a = st.chare("A")
    b = st.chare("B")
    st.block(a, "w", 0, 0.0, 1.0, [("send", "m", 0.5)])
    st.block(b, "r", 0, 2.0, 3.0, [("recv", "m", 2.0), ("recv", "ghost", 2.5)])
    trace = st.build()
    initial = build_initial(trace, mode="charm")
    msgs = [e for e in initial.state.edges if e[2] == EdgeKind.MESSAGE]
    assert len(msgs) == 1  # the unmatched recv contributes no edge
