"""Smoke test for the machine-readable benchmark (bench_json.py --quick).

Runs the real script on tiny workloads and validates the record against
benchmarks/bench_schema.json — the JSON contract, not the performance,
is what the test suite gates.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_json import (  # noqa: E402
    SCHEMA_PATH,
    main,
    validate_schema,
)

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def bench_record(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
    assert main(["--quick", "--quiet", "--enforce-budget",
                 "--output", str(out)]) == 0
    return json.loads(out.read_text())


def test_quick_record_matches_schema(bench_record):
    schema = json.loads(SCHEMA_PATH.read_text())
    validate_schema(bench_record, schema)
    assert bench_record["quick"] is True


def test_quick_record_contents(bench_record):
    assert len(bench_record["fig18_iteration_scaling"]) == 2
    assert len(bench_record["fig19_chare_scaling"]) == 2
    ab = bench_record["backend_ab"]
    assert ab["identical"] is True
    assert ab["python_seconds"] > 0
    for row in bench_record["fig19_chare_scaling"]:
        assert row["total_seconds"] >= 0
        assert row["stage_seconds"]
    ro = bench_record["repair_overhead"]
    assert ro["off_seconds"] > 0 and ro["warn_seconds"] > 0
    assert ro["overhead"] > 0


def test_quick_record_backend_ab_batched(bench_record):
    ab = bench_record["backend_ab"]
    assert ab["columnar_batched_seconds"] > 0
    assert ab["speedup_batched"] > 0


def test_quick_record_budget(bench_record):
    budget = bench_record["budget"]
    assert budget["hot_stages"] == ["initial", "dependency_merge"]
    assert 0 <= budget["hot_fraction"] <= 1
    assert budget["within_budget"] is True
    assert budget["hot_seconds"] <= budget["total_seconds"]


def test_validator_catches_shape_errors():
    schema = json.loads(SCHEMA_PATH.read_text())
    with pytest.raises(ValueError, match="missing required"):
        validate_schema({"schema_version": 1}, schema)
    with pytest.raises(ValueError, match="expected integer"):
        validate_schema({"schema_version": "one"},
                        {"properties": schema["properties"]})


def test_committed_record_matches_schema():
    committed = REPO_ROOT / "benchmarks" / "BENCH_pipeline.json"
    if not committed.exists():
        pytest.skip("no committed BENCH_pipeline.json")
    schema = json.loads(SCHEMA_PATH.read_text())
    record = json.loads(committed.read_text())
    validate_schema(record, schema)
