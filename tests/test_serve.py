"""The extraction service: HTTP round trips, caching, crash recovery.

Three layers under test, matching the service's own structure:

* :class:`repro.serve.JobService` directly — ledger resume, cached
  resubmission, failure containment;
* the asyncio HTTP app via :func:`start_server_thread` — endpoint
  behaviour, error statuses, and the headline guarantee that a served
  result is **byte-identical** to ``repro analyze --json``;
* the real ``repro serve`` subprocess — ``kill -9`` mid-queue followed
  by a restart completes every journaled job exactly once.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.serve import JobService, read_job_ledger, start_server_thread

pytestmark = pytest.mark.serve

POLL_DEADLINE = 120.0


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "t.jsonl"
    rc = cli_main(["simulate", "jacobi2d", "--chares", "4x4", "--pes", "4",
                   "--iterations", "2", "--seed", "1", "-o", str(path)])
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def expected_json(trace_file):
    """Exactly what ``repro analyze --json`` prints for the trace."""
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = cli_main(["analyze", str(trace_file), "--json"])
    assert rc == 0
    return buf.getvalue()


def http(port, method, path, data=None):
    """One request; returns (status, body-bytes) — errors included."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def wait_done(port, job_id):
    deadline = time.monotonic() + POLL_DEADLINE
    while time.monotonic() < deadline:
        status, body = http(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        record = json.loads(body)
        if record["status"] in ("done", "failed"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {POLL_DEADLINE}s")


@pytest.fixture()
def server(tmp_path):
    service = JobService(tmp_path / "data", workers=1)
    port, stop = start_server_thread(service)
    try:
        yield port, service
    finally:
        stop()


# ----------------------------------------------------------------------
# HTTP round trip
# ----------------------------------------------------------------------
def test_round_trip_byte_identical(server, trace_file, expected_json):
    port, _service = server
    status, body = http(port, "GET", "/healthz")
    assert status == 200 and json.loads(body)["ok"]

    status, body = http(port, "POST", "/v1/traces", trace_file.read_bytes())
    assert status == 200
    ref = json.loads(body)["trace"]
    assert ref.startswith("upload:")

    request = json.dumps({"trace": ref, "options": {}}).encode()
    status, body = http(port, "POST", "/v1/jobs", request)
    assert status == 202
    job_id = json.loads(body)["job"]

    record = wait_done(port, job_id)
    assert record["status"] == "done"
    assert not record["cached"]

    status, body = http(port, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200
    assert body.decode("utf-8") == expected_json


def test_resubmission_served_from_artifact_store(server, trace_file,
                                                 expected_json):
    port, service = server
    _, body = http(port, "POST", "/v1/traces", trace_file.read_bytes())
    ref = json.loads(body)["trace"]
    request = json.dumps({"trace": ref, "options": {}}).encode()

    status, body = http(port, "POST", "/v1/jobs", request)
    assert status == 202
    wait_done(port, json.loads(body)["job"])

    # Identical trace + options: born done from the store, 200 not 202,
    # and no extraction ran (zero attempts on the job record).
    status, body = http(port, "POST", "/v1/jobs", request)
    assert status == 200
    record = json.loads(body)
    assert record["status"] == "done" and record["cached"]
    assert record["attempts"] == 0

    status, body = http(port, "GET", f"/v1/jobs/{record['job']}/result")
    assert status == 200
    assert body.decode("utf-8") == expected_json

    # An option change is a different artifact key: extraction reruns.
    changed = json.dumps(
        {"trace": ref, "options": {"order": "physical"}}).encode()
    status, body = http(port, "POST", "/v1/jobs", changed)
    assert status == 202
    assert json.loads(body)["key"] != record["key"]
    wait_done(port, json.loads(body)["job"])


def test_register_path_flow(server, trace_file, expected_json):
    port, _service = server
    request = json.dumps({"path": str(trace_file)}).encode()
    status, body = http(port, "POST", "/v1/traces/register", request)
    assert status == 200
    ref = json.loads(body)["trace"]

    status, body = http(port, "POST", "/v1/jobs",
                        json.dumps({"trace": ref, "options": {}}).encode())
    assert status in (200, 202)  # upload-flow runs may have primed the store
    job_id = json.loads(body)["job"]
    wait_done(port, job_id)
    status, body = http(port, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200
    assert body.decode("utf-8") == expected_json


def test_http_error_statuses(server, tmp_path):
    port, service = server
    assert http(port, "GET", "/no/such")[0] == 404
    assert http(port, "DELETE", "/v1/jobs")[0] == 405
    assert http(port, "POST", "/v1/jobs", b"{not json")[0] == 400
    assert http(port, "GET", "/v1/jobs/job-999999")[0] == 404
    assert http(port, "GET", "/v1/jobs/job-999999/result")[0] == 404
    assert http(port, "POST", "/v1/traces", b"")[0] == 400

    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text("this is not a trace\n")
    # Unknown option field is rejected before any job exists.
    bad = json.dumps({"trace": str(bogus), "options": {"nope": 1}}).encode()
    assert http(port, "POST", "/v1/jobs", bad)[0] == 400
    # A submittable-but-unparsable trace fails its job; result is a 409.
    req = json.dumps({"trace": str(bogus), "options": {}}).encode()
    status, body = http(port, "POST", "/v1/jobs", req)
    assert status == 202
    record = wait_done(port, json.loads(body)["job"])
    assert record["status"] == "failed" and record["error"]
    status, body = http(port, "GET", f"/v1/jobs/{record['job']}/result")
    assert status == 409
    assert record["error"] in json.loads(body)["error"]


def test_result_conflict_while_queued_and_gone_after_eviction(
        tmp_path, trace_file):
    service = JobService(tmp_path / "data", workers=0)  # nothing drains
    port, stop = start_server_thread(service)
    try:
        _, body = http(port, "POST", "/v1/traces", trace_file.read_bytes())
        ref = json.loads(body)["trace"]
        status, body = http(port, "POST", "/v1/jobs",
                            json.dumps({"trace": ref, "options": {}}).encode())
        assert status == 202
        job_id = json.loads(body)["job"]
        status, body = http(port, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 409
        assert "queued" in json.loads(body)["error"]
    finally:
        stop()

    # Complete the job on a restarted service, then evict its artifact:
    # the job stays "done" but the result is gone (410).
    service = JobService(tmp_path / "data", workers=1)
    port, stop = start_server_thread(service)
    try:
        assert wait_done(port, job_id)["status"] == "done"
        service.store.prune(max_bytes=1)  # quota no artifact fits
        status, body = http(port, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 410
    finally:
        stop()


def test_stats_reports_store_and_counts(server, trace_file):
    port, _service = server
    _, body = http(port, "POST", "/v1/traces", trace_file.read_bytes())
    ref = json.loads(body)["trace"]
    _, body = http(port, "POST", "/v1/jobs",
                   json.dumps({"trace": ref, "options": {}}).encode())
    wait_done(port, json.loads(body)["job"])
    status, body = http(port, "GET", "/v1/stats")
    assert status == 200
    stats = json.loads(body)
    assert stats["jobs"]["done"] >= 1
    assert stats["store"]["disk_entries"] >= 1
    assert stats["store"]["shard_prefix"] == 2
    assert stats["store"]["shards"]  # sharded layout in use


# ----------------------------------------------------------------------
# Ledger resume
# ----------------------------------------------------------------------
def test_restart_resumes_queued_jobs_in_process(tmp_path, trace_file):
    data = tmp_path / "data"
    service = JobService(data, workers=0)
    ref = service.upload(trace_file.read_bytes())["trace"]
    first = service.submit(ref, {})
    second = service.submit(ref, {"order": "physical"})
    assert first.status == second.status == "queued"
    service.stop()

    service = JobService(data, workers=1)
    assert service.recovered == 2
    service.start()
    try:
        deadline = time.monotonic() + POLL_DEADLINE
        while time.monotonic() < deadline:
            jobs = {j.id: j.status for j in service.jobs()}
            if set(jobs.values()) == {"done"}:
                break
            time.sleep(0.05)
        assert {j.status for j in service.jobs()} == {"done"}
        assert service.result(first.id) is not None
        assert service.result(second.id) is not None
    finally:
        service.stop()

    ledger = read_job_ledger(data / "jobs.jsonl")
    assert sorted(ledger) == sorted([first.id, second.id])
    assert all(job.status == "done" for job in ledger.values())


def test_kill9_midqueue_restart_completes_exactly_once(tmp_path, trace_file):
    """The acceptance scenario, with the real ``repro serve`` process."""
    data = tmp_path / "data"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(_repo_src()), env.get("PYTHONPATH", "")] if p)

    def start(workers):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--data-dir", str(data),
             "--port", "0", "--workers", str(workers)],
            stdout=subprocess.PIPE, env=env)
        line = proc.stdout.readline().decode()
        assert "listening on http://127.0.0.1:" in line, line
        return proc, int(line.split("http://127.0.0.1:")[1].split()[0])

    # Queue-only server: accept + journal three jobs, then SIGKILL it.
    proc, port = start(0)
    try:
        _, body = http(port, "POST", "/v1/traces", trace_file.read_bytes())
        ref = json.loads(body)["trace"]
        jobs = []
        for options in ({}, {"order": "physical"}, {"infer": False}):
            status, body = http(
                port, "POST", "/v1/jobs",
                json.dumps({"trace": ref, "options": options}).encode())
            assert status == 202
            jobs.append(json.loads(body)["job"])
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

    # Restart with workers: the journaled backlog drains to completion.
    proc, port = start(2)
    try:
        deadline = time.monotonic() + POLL_DEADLINE
        while time.monotonic() < deadline:
            stats = json.loads(http(port, "GET", "/v1/stats")[1])
            if stats["jobs"]["done"] == len(jobs):
                break
            time.sleep(0.2)
        assert stats["jobs"] == {"queued": 0, "running": 0,
                                 "done": len(jobs), "failed": 0}
        assert stats["recovered"] == len(jobs)
        for job_id in jobs:
            assert http(port, "GET", f"/v1/jobs/{job_id}/result")[0] == 200
    finally:
        proc.terminate()
        proc.wait()

    # Exactly once: one "done" ledger line per job, no extras.
    with open(data / "jobs.jsonl") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    done = sorted(e["job"] for e in lines if e.get("kind") == "done")
    assert done == sorted(jobs)


def _repo_src():
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
