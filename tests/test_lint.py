"""repro.lint: rule fixtures, suppressions, schema, CLI, and self-check.

Each rule gets at least one positive fixture (the defect fires) and one
negative fixture (the idiomatic fix stays silent).  The dataflow rules
are additionally exercised against the *real* ``STAGE_GRAPH`` with
injected defects — the analyzer must fail loudly when a stage
declaration and its body disagree.
"""

import ast
import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.pipeline import SEED_KEYS, STAGE_GRAPH
from repro.lint import (
    LINT_REPORT_SCHEMA,
    LintEngine,
    check_stage_graph,
    collect_ctx_effects,
    parse_suppressions,
    validate_report,
)
from repro.lint.rules.dataflow import dataflow_rules

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parents[1]
PIPELINE_PATH = REPO / "src" / "repro" / "core" / "pipeline.py"


def lint_source(source, rule_ids=None, path="fixture.py"):
    return LintEngine(rule_ids=rule_ids).lint_sources([(path, source)])


def fired(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# Determinism rules
# ---------------------------------------------------------------------------
def test_det001_wall_clock_fires():
    report = lint_source(
        "import time\n"
        "def stage(ctx):\n"
        "    ctx['t'] = time.time()\n",
        rule_ids=["DET001"],
    )
    assert fired(report) == ["DET001"]
    assert report.findings[0].line == 3


def test_det001_sees_through_import_alias():
    report = lint_source(
        "import time as _time\n"
        "t0 = _time.perf_counter()\n",
        rule_ids=["DET001"],
    )
    assert fired(report) == ["DET001"]


def test_det001_silent_without_clock_read():
    report = lint_source(
        "import time\n"
        "def stage(ctx):\n"
        "    ctx['t'] = 0.0\n",
        rule_ids=["DET001"],
    )
    assert report.findings == []


def test_det002_global_rng_and_unseeded_generator():
    report = lint_source(
        "import random\n"
        "a = random.random()\n"
        "b = random.Random()\n"
        "random.seed(0)\n",
        rule_ids=["DET002"],
    )
    assert [f.rule for f in report.findings] == ["DET002"] * 3


def test_det002_seeded_instance_is_fine():
    report = lint_source(
        "import random\n"
        "rng = random.Random(1234)\n"
        "x = rng.random()\n",
        rule_ids=["DET002"],
    )
    assert report.findings == []


def test_det003_set_iteration_feeding_ordered_output():
    report = lint_source(
        "s = {1, 2, 3}\n"
        "out = []\n"
        "for x in s | {4}:\n"
        "    out.append(x)\n"
        "items = [x for x in {'a', 'b'}]\n"
        "sep = ','\n"
        "joined = sep.join(str(x) for x in set(out))\n",
        rule_ids=["DET003"],
    )
    assert [f.rule for f in report.findings] == ["DET003"] * 3


def test_det003_sorted_and_order_neutral_consumers_are_fine():
    report = lint_source(
        "s = {1, 2, 3}\n"
        "for x in sorted(s):\n"
        "    pass\n"
        "n = len([x for x in {1, 2}])\n"
        "m = max(x for x in [1, 2])\n"
        "t = {x for x in {1, 2}}\n",
        rule_ids=["DET003"],
    )
    assert report.findings == []


def test_det004_environment_reads():
    report = lint_source(
        "import os\n"
        "a = os.environ['HOME']\n"
        "b = os.getenv('THREADS')\n"
        "c = os.environ.get('SEED')\n",
        rule_ids=["DET004"],
    )
    assert [f.rule for f in report.findings] == ["DET004"] * 3


def test_det004_environ_write_is_not_a_read():
    report = lint_source(
        "import os\n"
        "os.environ['X'] = '1'\n",
        rule_ids=["DET004"],
    )
    assert report.findings == []


def test_det005_sum_over_set():
    report = lint_source(
        "vals = {0.1, 0.2}\n"
        "a = sum(vals | set())\n"
        "b = sum(v for v in {0.1, 0.2})\n",
        rule_ids=["DET005"],
    )
    assert [f.rule for f in report.findings] == ["DET005"] * 2


def test_det005_sorted_sum_and_fsum_are_fine():
    report = lint_source(
        "import math\n"
        "vals = {0.1, 0.2}\n"
        "a = sum(sorted(vals))\n"
        "b = math.fsum(vals)\n",
        rule_ids=["DET005"],
    )
    assert report.findings == []


def test_determinism_scope_excludes_unreachable_modules(tmp_path):
    # A miniature package whose pipeline module imports `used` but not
    # `unused`: the clock read is flagged only inside the import closure.
    pkg = tmp_path / "repro"
    (pkg / "core").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "core" / "__init__.py").write_text("")
    (pkg / "core" / "pipeline.py").write_text(
        "from repro.core import used\n"
    )
    (pkg / "core" / "used.py").write_text(
        "import time\nt = time.time()\n"
    )
    (pkg / "core" / "unused.py").write_text(
        "import time\nt = time.time()\n"
    )
    report = LintEngine(rule_ids=["DET001"]).lint_paths([str(tmp_path)])
    flagged = {Path(f.path).name for f in report.findings}
    assert flagged == {"used.py"}


# ---------------------------------------------------------------------------
# Concurrency / IO rules
# ---------------------------------------------------------------------------
def test_conc001_replace_without_fsync():
    report = lint_source(
        "import os\n"
        "def put(tmp, path, data):\n"
        "    with open(tmp, 'w') as fh:\n"
        "        fh.write(data)\n"
        "    os.replace(tmp, path)\n",
        rule_ids=["CONC001"],
    )
    assert fired(report) == ["CONC001"]


def test_conc001_fsync_before_replace_is_fine():
    report = lint_source(
        "import os\n"
        "def put(tmp, path, data):\n"
        "    with open(tmp, 'w') as fh:\n"
        "        fh.write(data)\n"
        "        fh.flush()\n"
        "        os.fsync(fh.fileno())\n"
        "    os.replace(tmp, path)\n",
        rule_ids=["CONC001"],
    )
    assert report.findings == []


def test_conc002_module_mutable_in_process_pool_module():
    report = lint_source(
        "import multiprocessing\n"
        "CACHE = {}\n"
        "LIMITS = (1, 2)\n",
        rule_ids=["CONC002"],
    )
    assert fired(report) == ["CONC002"]
    assert len(report.findings) == 1  # the tuple is immutable


def test_conc002_silent_without_process_pools():
    report = lint_source(
        "CACHE = {}\n",
        rule_ids=["CONC002"],
    )
    assert report.findings == []


def test_conc003_bare_acquire_fires():
    report = lint_source(
        "import threading\n"
        "lock = threading.Lock()\n"
        "def f():\n"
        "    lock.acquire()\n"
        "    work()\n"
        "    lock.release()\n",
        rule_ids=["CONC003"],
    )
    assert fired(report) == ["CONC003"]


def test_conc003_try_finally_release_is_fine():
    report = lint_source(
        "import threading\n"
        "lock = threading.Lock()\n"
        "def f():\n"
        "    lock.acquire()\n"
        "    try:\n"
        "        work()\n"
        "    finally:\n"
        "        lock.release()\n"
        "def g():\n"
        "    with lock:\n"
        "        work()\n",
        rule_ids=["CONC003"],
    )
    assert report.findings == []


_PER_CANDIDATE_LOOP = (
    "def dependency_merge_round(state, src, dst):\n"
    "    for a, b in zip(src.tolist(), dst.tolist()):\n"
    "        state.dsu.union(a, b)\n"
)


def test_conc004_per_candidate_union_loop_in_kernel_module():
    report = lint_source(
        _PER_CANDIDATE_LOOP,
        rule_ids=["CONC004"],
        path="src/repro/core/columnar.py",
    )
    assert fired(report) == ["CONC004"]
    assert "batch_union" in report.findings[0].message


def test_conc004_candidate_stream_loop_fires():
    report = lint_source(
        "def run(state):\n"
        "    for a, b in state.merge_candidates():\n"
        "        state.dsu.find(a)\n",
        rule_ids=["CONC004"],
        path="unionfind.py",
    )
    assert fired(report) == ["CONC004"]


def test_conc004_scoped_to_merge_kernel_modules():
    # The identical loop is fine elsewhere — e.g. the explicit
    # per-candidate fallback rungs in merges.py.
    report = lint_source(
        _PER_CANDIDATE_LOOP,
        rule_ids=["CONC004"],
        path="src/repro/core/merges.py",
    )
    assert report.findings == []


def test_conc004_batched_kernel_shape_is_fine():
    # The batch_union kernel itself: iterates pre-converted plain lists
    # with inlined finds — no per-element union()/find() attribute calls.
    report = lint_source(
        "def batch_union(parent, size, a_ids, b_ids):\n"
        "    a_ids = list(a_ids)\n"
        "    b_ids = list(b_ids)\n"
        "    merged = 0\n"
        "    for a, b in zip(a_ids, b_ids):\n"
        "        while parent[a] != a:\n"
        "            parent[a] = parent[parent[a]]\n"
        "            a = parent[a]\n"
        "        merged += 1\n"
        "    return merged\n",
        rule_ids=["CONC004"],
        path="src/repro/core/unionfind.py",
    )
    assert report.findings == []


def test_conc004_loop_without_union_in_body_is_fine():
    report = lint_source(
        "def summarize(src):\n"
        "    out = []\n"
        "    for a in src.tolist():\n"
        "        out.append(a + 1)\n"
        "    return out\n",
        rule_ids=["CONC004"],
        path="columnar.py",
    )
    assert report.findings == []


_NAKED_AWAITED_READ = (
    "async def handle(reader):\n"
    "    line = await reader.readline()\n"
    "    return line\n"
)


def test_conc005_awaited_read_without_deadline_fires():
    report = lint_source(
        _NAKED_AWAITED_READ,
        rule_ids=["CONC005"],
        path="src/repro/serve/app.py",
    )
    assert fired(report) == ["CONC005"]
    assert "wait_for" in report.findings[0].message
    assert report.findings[0].severity == "warning"


def test_conc005_wait_for_wrapped_read_is_fine():
    report = lint_source(
        "import asyncio\n"
        "async def handle(reader, deadline):\n"
        "    line = await asyncio.wait_for(reader.readline(), deadline)\n"
        "    body = await asyncio.wait_for(reader.readexactly(10), deadline)\n"
        "    return line + body\n",
        rule_ids=["CONC005"],
        path="src/repro/serve/app.py",
    )
    assert report.findings == []


def test_conc005_scoped_to_serve_modules():
    # The identical naked read is fine outside the service layer.
    report = lint_source(
        _NAKED_AWAITED_READ,
        rule_ids=["CONC005"],
        path="src/repro/trace/reader.py",
    )
    assert report.findings == []


def test_conc005_urlopen_without_timeout_fires():
    report = lint_source(
        "import urllib.request\n"
        "def fetch(url):\n"
        "    return urllib.request.urlopen(url).read()\n",
        rule_ids=["CONC005"],
        path="src/repro/serve/client.py",
    )
    assert fired(report) == ["CONC005"]
    assert "timeout" in report.findings[0].message


def test_conc005_urlopen_with_timeout_is_fine():
    report = lint_source(
        "import urllib.request\n"
        "def fetch(url):\n"
        "    return urllib.request.urlopen(url, timeout=30.0).read()\n",
        rule_ids=["CONC005"],
        path="src/repro/serve/client.py",
    )
    assert report.findings == []


def test_conc005_all_reads_in_shipped_serve_modules_have_deadlines():
    # Self-check: the real service front end and client must satisfy
    # their own lint rule.
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1] / "src/repro/serve"
    sources = [(f"src/repro/serve/{p.name}", p.read_text())
               for p in sorted(root.glob("*.py"))]
    report = LintEngine(rule_ids=["CONC005"]).lint_sources(sources)
    assert report.findings == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
def test_suppression_with_reason_moves_finding_to_suppressed():
    report = lint_source(
        "import time\n"
        "t = time.time()  # repro-lint: disable=DET001 reason=telemetry\n",
        rule_ids=["DET001"],
    )
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["DET001"]


def test_suppression_own_line_applies_to_next_code_line():
    report = lint_source(
        "import time\n"
        "# repro-lint: disable=DET001 reason=telemetry\n"
        "t = time.time()\n",
        rule_ids=["DET001"],
    )
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["DET001"]


def test_suppression_without_reason_is_inert_and_flagged():
    report = lint_source(
        "import time\n"
        "t = time.time()  # repro-lint: disable=DET001\n",
        rule_ids=["DET001"],
    )
    assert fired(report) == ["DET001", "LNT001"]


def test_unused_suppression_warns_only_on_full_rule_set():
    source = "x = 1  # repro-lint: disable=DET001 reason=nothing here\n"
    full = lint_source(source)
    assert fired(full) == ["LNT002"]
    assert all(f.severity == "warning" for f in full.findings)
    filtered = lint_source(source, rule_ids=["DET002"])
    assert filtered.findings == []


def test_lnt_findings_cannot_be_suppressed():
    report = lint_source(
        "import time\n"
        "t = time.time()  "
        "# repro-lint: disable=DET001,LNT001\n",
        rule_ids=["DET001"],
    )
    # The directive has no reason: LNT001 fires and the directive stays
    # inert even though it names LNT001 itself.
    assert "LNT001" in fired(report)


def test_directive_inside_docstring_is_inert():
    report = lint_source(
        '"""Example: # repro-lint: disable=DET001\n\nmore text."""\n'
        "x = 1\n",
    )
    assert report.findings == []
    assert report.suppressions == []


def test_parse_suppressions_extracts_rules_and_reason():
    sups, problems = parse_suppressions(
        "x = 1  # repro-lint: disable=DET001,CONC003 reason=why not\n",
        "f.py",
    )
    assert problems == []
    assert sups[0].rules == ("DET001", "CONC003")
    assert sups[0].reason == "why not"
    assert not sups[0].file_level


def test_syntax_error_reports_lnt000():
    report = lint_source("def broken(:\n")
    assert fired(report) == ["LNT000"]


# ---------------------------------------------------------------------------
# Dataflow: the real stage graph, clean and with injected defects
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def pipeline_effects():
    tree = ast.parse(PIPELINE_PATH.read_text())
    return collect_ctx_effects(tree)


def test_real_stage_graph_is_clean(pipeline_effects):
    assert check_stage_graph(STAGE_GRAPH, SEED_KEYS, pipeline_effects) == []


def _mutate(stage_name, **changes):
    return tuple(
        dataclasses.replace(sig, **changes) if sig.name == stage_name
        else sig
        for sig in STAGE_GRAPH
    )


def test_df001_unknown_input_is_loud(pipeline_effects):
    victim = next(s for s in STAGE_GRAPH if s.name == "build_phases")
    graph = _mutate("build_phases",
                    inputs=victim.inputs + ("no_such_key",))
    findings = check_stage_graph(graph, SEED_KEYS, pipeline_effects)
    assert any(f.rule == "DF001" and f.stage == "build_phases"
               for f in findings)


def test_df001_duplicate_stage_name(pipeline_effects):
    graph = STAGE_GRAPH + (STAGE_GRAPH[-1],)
    findings = check_stage_graph(graph, SEED_KEYS, pipeline_effects)
    assert any(f.rule == "DF001" and "duplicate" in f.message
               for f in findings)


def test_df002_fallback_not_writing_primary_outputs(pipeline_effects):
    # Point a fallback at a body that writes none of the declared
    # outputs: the ladder no longer substitutes for the primary.
    donor = next(s for s in STAGE_GRAPH if s.name == "finalize")
    victim = next(s for s in STAGE_GRAPH if s.fallbacks)
    graph = _mutate(victim.name,
                    fallbacks=tuple((name, donor.body)
                                    for name, _ in victim.fallbacks))
    findings = check_stage_graph(graph, SEED_KEYS, pipeline_effects)
    assert any(f.rule == "DF002" and f.stage == victim.name
               for f in findings)


def test_df003_unguarded_degradable_consumption(pipeline_effects):
    # global_steps guards its degradable input via `requires`; dropping
    # the guard (and the non-degradable default producer) must be loud.
    degraded = _mutate("build_phases", degradable=True)
    graph = tuple(
        dataclasses.replace(s, requires=())
        if s.name == "global_steps" else s for s in degraded
    )
    no_default = tuple(s for s in graph if s.name != "local_steps")
    findings = check_stage_graph(no_default, SEED_KEYS, pipeline_effects)
    assert any(f.rule == "DF003" for f in findings)


def test_df004_undeclared_hard_read(pipeline_effects):
    victim = next(s for s in STAGE_GRAPH
                  if s.name == "build_phases")
    graph = _mutate("build_phases", inputs=victim.inputs[:1])
    findings = check_stage_graph(graph, SEED_KEYS, pipeline_effects)
    assert any(f.rule == "DF004" and f.stage == "build_phases"
               for f in findings)


def test_df005_phantom_output(pipeline_effects):
    victim = next(s for s in STAGE_GRAPH if s.name == "finalize")
    graph = _mutate("finalize", outputs=victim.outputs + ("phantom",))
    findings = check_stage_graph(graph, SEED_KEYS, pipeline_effects)
    assert any(f.rule == "DF005" and "phantom" in f.message
               for f in findings)


def test_injected_defect_surfaces_through_the_engine():
    victim = next(s for s in STAGE_GRAPH if s.name == "finalize")
    graph = _mutate("finalize", outputs=victim.outputs + ("phantom",))
    engine = LintEngine(rules=dataflow_rules(graph=graph))
    report = engine.lint_paths([str(REPO / "src" / "repro")])
    df = [f for f in report.findings if f.rule == "DF005"]
    assert df, "injected phantom output must be reported"
    # Anchored at the stage's declaration inside pipeline.py.
    assert df[0].path.endswith("pipeline.py")
    assert df[0].line > 1


# ---------------------------------------------------------------------------
# JSON report schema and CLI
# ---------------------------------------------------------------------------
def test_report_dict_validates_against_schema():
    report = lint_source(
        "import time\nt = time.time()\n", rule_ids=["DET001"]
    )
    assert validate_report(report.to_dict(), LINT_REPORT_SCHEMA) == []


def test_schema_rejects_malformed_reports():
    report = lint_source("x = 1\n").to_dict()
    report["findings"] = [{"rule": "DET001"}]  # missing required fields
    assert validate_report(report, LINT_REPORT_SCHEMA)
    bad_version = lint_source("x = 1\n").to_dict()
    bad_version["version"] = "one"
    assert validate_report(bad_version, LINT_REPORT_SCHEMA)


def test_cli_lint_json_on_dirty_file(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("import time\nt = time.time()\n")
    code = main(["lint", str(target), "--json"])
    assert code == 1
    data = json.loads(capsys.readouterr().out)
    assert validate_report(data, LINT_REPORT_SCHEMA) == []
    assert any(f["rule"] == "DET001" for f in data["findings"])


def test_cli_lint_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main(["lint", str(target), "--fail-on", "warning"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_lint_fail_on_warning_catches_warnings(tmp_path, capsys):
    target = tmp_path / "stale.py"
    target.write_text(
        "x = 1  # repro-lint: disable=DET001 reason=stale\n"
    )
    assert main(["lint", str(target)]) == 0  # LNT002 is only a warning
    assert main(["lint", str(target), "--fail-on", "warning"]) == 1
    capsys.readouterr()


def test_cli_lint_unknown_rule_exits_two(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("x = 1\n")
    assert main(["lint", str(target), "--rules", "NOPE999"]) == 2
    assert "NOPE999" in capsys.readouterr().err


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DF001", "CONC001"):
        assert rule_id in out


# ---------------------------------------------------------------------------
# Self-check: the shipped tree lints clean
# ---------------------------------------------------------------------------
def test_shipped_tree_is_clean():
    report = LintEngine().lint_paths([str(REPO / "src" / "repro")])
    assert report.findings == [], report.human()


def test_every_shipped_suppression_has_a_reason():
    report = LintEngine().lint_paths([str(REPO / "src" / "repro")])
    assert report.suppressions, "expected suppressions in the tree"
    for sup in report.suppressions:
        assert sup.reason.strip(), f"{sup.path}:{sup.line} lacks a reason"
