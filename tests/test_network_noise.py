"""Latency and noise model behaviour."""

import pytest

from repro.sim.network import ConstantLatency, GammaLatency, UniformLatency
from repro.sim.noise import (
    ChareSlowdown,
    ComposedNoise,
    GaussianNoise,
    NoNoise,
    PeriodicJitter,
    SlowProcessor,
)


# -- latency ----------------------------------------------------------------
def test_constant_latency_local_vs_remote():
    model = ConstantLatency(base=2.0, per_byte=0.01, local=0.1)
    assert model.latency(0, 1, 100) == pytest.approx(3.0)
    assert model.latency(0, 0, 100) < model.latency(0, 1, 100)


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(base=-1.0)


def test_uniform_latency_bounded_and_seeded():
    a = UniformLatency(base=2.0, per_byte=0.0, jitter=0.5, seed=42)
    b = UniformLatency(base=2.0, per_byte=0.0, jitter=0.5, seed=42)
    xs = [a.latency(0, 1, 8) for _ in range(100)]
    ys = [b.latency(0, 1, 8) for _ in range(100)]
    assert xs == ys  # deterministic given seed
    assert all(2.0 <= x <= 3.0 for x in xs)
    assert len(set(xs)) > 1  # actually varies


def test_gamma_latency_heavy_tail_positive():
    model = GammaLatency(base=1.0, per_byte=0.0, shape=2.0, scale=3.0, seed=0)
    xs = [model.latency(0, 1, 8) for _ in range(200)]
    assert all(x >= 1.0 for x in xs)
    assert max(xs) > 5.0  # tail exists


def test_gamma_zero_scale_is_deterministic():
    model = GammaLatency(base=1.0, per_byte=0.0, scale=0.0)
    assert model.latency(0, 1, 8) == pytest.approx(1.0)


# -- noise --------------------------------------------------------------------
def test_no_noise_identity():
    assert NoNoise().perturb(0, 0, 7.5) == 7.5


def test_gaussian_noise_stays_positive_and_seeded():
    a = GaussianNoise(sigma=0.5, seed=1)
    b = GaussianNoise(sigma=0.5, seed=1)
    xs = [a.perturb(0, 0, 10.0) for _ in range(100)]
    assert xs == [b.perturb(0, 0, 10.0) for _ in range(100)]
    assert all(x > 0 for x in xs)


def test_slow_processor_only_affects_listed_pes():
    model = SlowProcessor([2], factor=3.0)
    assert model.perturb(2, 0, 10.0) == 30.0
    assert model.perturb(1, 0, 10.0) == 10.0


def test_chare_slowdown_only_affects_listed_chares():
    model = ChareSlowdown([5], factor=2.0)
    assert model.perturb(0, 5, 4.0) == 8.0
    assert model.perturb(0, 4, 4.0) == 4.0


def test_periodic_jitter_adds_cost_on_window_crossings():
    model = PeriodicJitter(period=100.0, cost=10.0, stagger=0.0)
    # A span crossing one window boundary pays one jitter cost.
    total = model.perturb(0, 0, 150.0)
    assert total == pytest.approx(160.0)
    # A short span inside a window pays nothing.
    assert model.perturb(0, 0, 10.0) == pytest.approx(10.0)


def test_composed_noise_applies_in_sequence():
    model = ComposedNoise(SlowProcessor([0], 2.0), ChareSlowdown([1], 3.0))
    assert model.perturb(0, 1, 5.0) == 30.0
    assert model.perturb(1, 0, 5.0) == 5.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        GaussianNoise(sigma=-0.1)
    with pytest.raises(ValueError):
        SlowProcessor([0], factor=0.0)
    with pytest.raises(ValueError):
        PeriodicJitter(period=0.0)
    with pytest.raises(ValueError):
        UniformLatency(jitter=-1.0)
    with pytest.raises(ValueError):
        GammaLatency(shape=0.0)
