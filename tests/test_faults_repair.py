"""Fault injection and trace repair: the ingestion-hardening suite.

Covers the contract of :mod:`repro.trace.faults` (every kind produces a
constructible, deterministic, genuinely damaged trace) and
:mod:`repro.trace.repair` (``fix`` restores validity and extractability,
``warn`` observes without touching, clean traces pass through
bit-identically), plus the batch/CLI surface that reports repairs.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import (
    FAULT_KINDS,
    BatchExtractor,
    PipelineOptions,
    RepairReport,
    detect_defects,
    extract,
    fault_corpus,
    inject_fault,
    inject_faults,
    repair_trace,
    trace_digest,
    validate_trace,
    write_trace,
)
from repro.apps import jacobi2d
from repro.cli import main
from repro.trace.repair import TraceRepairError
from repro.trace.validate import TraceValidationError

from .helpers import random_trace, structures_equal

pytestmark = pytest.mark.faults

SEVERITY = 0.3  # low severities can land a truncation cut in benign records


@pytest.fixture(scope="module")
def clean_trace():
    return jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=1)


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_is_constructible_and_deterministic(clean_trace, kind):
    bad = inject_fault(clean_trace, kind, seed=7, severity=SEVERITY)
    # Constructible: indexes built, ids dense (Trace.__init__ ran).
    assert bad.events is not None
    again = inject_fault(clean_trace, kind, seed=7, severity=SEVERITY)
    assert trace_digest(bad) == trace_digest(again)
    other = inject_fault(clean_trace, kind, seed=8, severity=SEVERITY)
    # Different seed gives different damage (truncate ignores the rng and
    # is legitimately seed-independent).
    if kind != "truncate":
        assert trace_digest(bad) != trace_digest(other)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_changes_the_trace(clean_trace, kind):
    bad = inject_fault(clean_trace, kind, seed=0, severity=SEVERITY)
    assert trace_digest(bad) != trace_digest(clean_trace)


@pytest.mark.parametrize(
    "kind", [k for k in FAULT_KINDS if k != "drop_messages"]
)
def test_fault_injects_detectable_defects(clean_trace, kind):
    # drop_messages is excluded: losing a message record degrades the
    # recovered structure but violates no physical invariant.
    bad = inject_fault(clean_trace, kind, seed=0, severity=SEVERITY)
    assert detect_defects(bad), f"{kind} produced no detectable defect"


def test_fault_corpus_covers_all_kinds(clean_trace):
    corpus = fault_corpus(clean_trace, seed=3, severity=SEVERITY)
    assert set(corpus) == set(FAULT_KINDS)


def test_compound_faults(clean_trace):
    bad = inject_faults(clean_trace, ["orphan_recv", "clock_skew"], seed=1,
                        severity=SEVERITY)
    defects = detect_defects(bad)
    assert "orphan-event" in defects


def test_unknown_fault_kind_rejected(clean_trace):
    with pytest.raises(ValueError, match="unknown fault kind"):
        inject_fault(clean_trace, "gamma_rays")


def test_faulted_trace_roundtrips_through_io(clean_trace, tmp_path):
    bad = inject_fault(clean_trace, "truncate", severity=SEVERITY)
    path = tmp_path / "bad.jsonl"
    write_trace(bad, path)
    from repro.api import read_trace

    assert detect_defects(read_trace(path)) == detect_defects(bad)


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------
def test_repair_mode_validation(clean_trace):
    with pytest.raises(TraceRepairError):
        repair_trace(clean_trace, mode="aggressive")
    with pytest.raises(ValueError, match="repair"):
        PipelineOptions(repair="aggressive")
        extract(clean_trace, PipelineOptions().with_overrides(
            repair="aggressive"))


def test_repair_off_is_identity(clean_trace):
    bad = inject_fault(clean_trace, "orphan_recv", severity=SEVERITY)
    fixed, report = repair_trace(bad, mode="off")
    assert fixed is bad
    assert report.mode == "off" and not report.detected


def test_repair_warn_reports_without_touching(clean_trace):
    bad = inject_fault(clean_trace, "negative_duration", severity=SEVERITY)
    observed, report = repair_trace(bad, mode="warn")
    assert observed is bad
    assert report.detected and not report.changed and not report.repaired


@pytest.mark.parametrize("kind", [k for k in FAULT_KINDS])
def test_repair_fix_restores_validity(clean_trace, kind):
    bad = inject_fault(clean_trace, kind, seed=2, severity=SEVERITY)
    fixed, report = repair_trace(bad, mode="fix")
    validate_trace(fixed, check_pe_overlap=False)
    structure = extract(fixed)
    assert structure.phases
    if detect_defects(bad):
        assert report.detected
        assert not report.residual, (kind, report.residual)


@pytest.mark.parametrize("kind", ["truncate", "orphan_recv", "clock_skew"])
def test_acceptance_fix_recovers_named_faults(clean_trace, kind):
    # The issue's named recovery set: these kinds must repair to a trace
    # the extractor handles, with a populated report.
    defects = detect_defects(inject_fault(clean_trace, kind, seed=0,
                                          severity=SEVERITY))
    bad = inject_fault(clean_trace, kind, seed=0, severity=SEVERITY)
    assert defects
    if any(k != "orphan-event" for k in defects):
        # orphan events are tolerated by the validator (detected by the
        # repair layer only); everything else must fail validation.
        with pytest.raises(TraceValidationError):
            validate_trace(bad, check_pe_overlap=False)
    fixed, report = repair_trace(bad, mode="fix")
    validate_trace(fixed, check_pe_overlap=False)
    extract(fixed)
    assert report.detected and report.repaired and report.changed


def test_repair_clean_trace_is_noop(clean_trace):
    fixed, report = repair_trace(clean_trace, mode="fix")
    assert fixed is clean_trace
    assert report.clean and not report.changed and report.rounds == 0


def test_repair_report_roundtrip():
    report = RepairReport(mode="fix", detected={"exec-recv": 3},
                          repaired={"reset-dangling-recv": 3}, rounds=1,
                          changed=True)
    assert RepairReport.from_dict(report.to_dict()) == report
    assert "reset-dangling-recv" in report.summary()


# ---------------------------------------------------------------------------
# Pipeline integration
# ---------------------------------------------------------------------------
def test_pipeline_repair_warn_warns_and_reports(clean_trace):
    from repro.api import PipelineStats

    bad = inject_fault(clean_trace, "clock_skew", severity=SEVERITY)
    stats = PipelineStats()
    with pytest.warns(RuntimeWarning, match="trace defects detected"):
        extract(bad, repair="warn", stats=stats)
    assert stats.repair is not None and stats.repair["detected"]
    assert "repair" in stats.stage_seconds


def test_pipeline_repair_fix_clean_trace_bit_identical(clean_trace):
    base = extract(clean_trace, repair="off")
    fixed = extract(clean_trace, repair="fix")
    assert structures_equal(base, fixed)


def test_pipeline_repair_off_no_stats(clean_trace):
    from repro.api import PipelineStats

    stats = PipelineStats()
    extract(clean_trace, stats=stats)
    assert stats.repair is None


# ---------------------------------------------------------------------------
# Property tests: random traces × fault kinds
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_property_fix_always_recovers(seed, kind):
    trace = random_trace(seed=seed, chares=5, pes=3, rounds=3)
    bad = inject_fault(trace, kind, seed=seed, severity=SEVERITY)
    fixed, report = repair_trace(bad, mode="fix")
    validate_trace(fixed, check_pe_overlap=False)
    extract(fixed)  # must not raise
    assert not report.residual


@pytest.mark.parametrize("seed", range(4))
def test_property_clean_repair_noop(seed):
    trace = random_trace(seed=seed, chares=5, pes=3, rounds=3)
    assert structures_equal(extract(trace, repair="off"),
                            extract(trace, repair="fix"))


# ---------------------------------------------------------------------------
# Batch + CLI over a fault corpus
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus_dir(clean_trace, tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    for kind, bad in fault_corpus(clean_trace, seed=0,
                                  severity=SEVERITY).items():
        write_trace(bad, root / f"j.{kind}.jsonl")
    write_trace(clean_trace, root / "j.clean.jsonl")
    (root / "j.garbage.jsonl").write_text("not json\n")
    return root


def test_batch_over_fault_corpus_completes(corpus_dir):
    # Acceptance: a corpus containing every fault kind (plus an unreadable
    # file) completes — no hang, no crash — with per-trace failure rows.
    paths = sorted(str(p) for p in corpus_dir.glob("*.jsonl"))
    report = BatchExtractor(
        PipelineOptions(repair="fix"), jobs=2, timeout=120.0,
    ).run(paths)
    assert len(report.results) == len(paths)
    by_name = {r.source.rsplit("/", 1)[-1]: r for r in report.results}
    assert not by_name["j.garbage.jsonl"].ok
    assert not report.ok  # exit status reflects the failure row
    for name, r in by_name.items():
        if name != "j.garbage.jsonl":
            assert r.ok, (name, r.error)
    # Repaired rows carry a populated RepairReport in the JSON summary.
    truncated = by_name["j.truncate.jsonl"].summary["repair"]
    assert truncated["detected"] and truncated["repaired"]
    assert by_name["j.clean.jsonl"].summary["repair"]["clean"]


def test_cli_faults_corpus_and_batch_json(clean_trace, tmp_path, capsys):
    src = tmp_path / "clean.jsonl"
    write_trace(clean_trace, src)
    out = tmp_path / "corpus"
    assert main(["faults", str(src), "--corpus", str(out),
                 "--severity", str(SEVERITY), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["variants"]) == set(FAULT_KINDS)
    assert doc["variants"]["truncate"]["defects"]

    paths = sorted(str(p) for p in out.glob("*.jsonl"))
    assert main(["batch", *paths, "--repair", "fix", "--json"]) == 0
    batch = json.loads(capsys.readouterr().out)
    assert batch["ok"]
    repaired = [r for r in batch["results"]
                if r["summary"].get("repair", {}).get("repaired")]
    assert repaired


def test_cli_faults_single_variant(clean_trace, tmp_path, capsys):
    src = tmp_path / "clean.jsonl"
    write_trace(clean_trace, src)
    out = tmp_path / "skewed.jsonl"
    assert main(["faults", str(src), "--kind", "clock_skew",
                 "-o", str(out)]) == 0
    assert out.exists()
    assert "defects:" in capsys.readouterr().out


def test_cli_faults_requires_kind_or_corpus(clean_trace, tmp_path):
    src = tmp_path / "clean.jsonl"
    write_trace(clean_trace, src)
    assert main(["faults", str(src)]) == 2


def test_cli_analyze_repair_json(clean_trace, tmp_path, capsys):
    bad = inject_fault(clean_trace, "orphan_recv", severity=SEVERITY)
    src = tmp_path / "bad.jsonl"
    write_trace(bad, src)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert main(["analyze", str(src), "--repair", "fix",
                     "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["repair"]["repaired"]
