"""Property battery for the batched union-find merge kernel.

:func:`repro.core.unionfind.batch_union` promises *bit-identity* with a
sequential per-candidate pass of union-by-size (the semantics of
:class:`repro.core.partition.DisjointSets` plus the runtime-flag OR of
:meth:`repro.core.partition.PartitionState.union`).  Bit-identity is
load-bearing: DSU representatives leak into downstream dict orders and
the phase sort tie-break, so "same components" is not enough — the tests
here pin representatives, sizes, flags, and counts, not just membership.

The membership-level properties (batch-order commutativity, component
counts) are checked against :func:`connected_components`, the order-free
vectorized reference.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import DisjointSets
from repro.core.unionfind import (
    HAVE_NUMPY,
    BatchUnionFind,
    batch_union,
    connected_components,
    roots_numpy,
)

pytestmark = pytest.mark.verify

if HAVE_NUMPY:
    import numpy as np


# ---------------------------------------------------------------------------
# Strategies: a universe size, candidate pairs over it, and runtime flags
# ---------------------------------------------------------------------------
@st.composite
def union_problems(draw):
    n = draw(st.integers(min_value=1, max_value=48))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=120,
    ))
    runtime = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return n, pairs, runtime


def sequential_reference(n, pairs, runtime, *, same_class_only=False):
    """One :class:`DisjointSets` union per pair, flags OR'd like
    :meth:`PartitionState.union` — the per-candidate code the batch
    kernel replaced."""
    dsu = DisjointSets(n)
    flags = list(runtime)
    merged = 0
    for a, b in pairs:
        ra, rb = dsu.find(a), dsu.find(b)
        if ra == rb:
            continue
        fa, fb = flags[ra], flags[rb]
        if same_class_only and fa != fb:
            continue
        dsu.union(ra, rb)
        flags[dsu.find(ra)] = fa or fb
        merged += 1
    return dsu, flags, merged


def run_batch(n, pairs, runtime, *, same_class_only=False):
    parent = list(range(n))
    size = [1] * n
    flags = list(runtime)
    merged = batch_union(parent, size, flags,
                         [a for a, _ in pairs], [b for _, b in pairs],
                         same_class_only=same_class_only)
    return parent, size, flags, merged


def membership(roots):
    """Representative-agnostic view: the set of component member-sets."""
    comps = {}
    for i, r in enumerate(roots):
        comps.setdefault(r, set()).add(i)
    return frozenset(frozenset(m) for m in comps.values())


# ---------------------------------------------------------------------------
# Bit-identity against the sequential per-candidate pass
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=60)
@given(union_problems(), st.booleans())
def test_batch_matches_sequential_bit_for_bit(problem, same_class_only):
    n, pairs, runtime = problem
    dsu, ref_flags, ref_merged = sequential_reference(
        n, pairs, runtime, same_class_only=same_class_only)
    parent, size, flags, merged = run_batch(
        n, pairs, runtime, same_class_only=same_class_only)

    assert merged == ref_merged
    # Identical representatives, not just identical components.
    batch_roots = _roots_of(parent)
    ref_roots = dsu.roots_array()
    assert batch_roots == ref_roots
    for r in set(ref_roots):
        assert size[r] == dsu.size[r]
        assert flags[r] == ref_flags[r]


@settings(deadline=None, max_examples=60)
@given(union_problems())
def test_runtime_flag_is_or_of_members(problem):
    n, pairs, runtime = problem
    parent, _size, flags, _merged = run_batch(n, pairs, runtime)
    roots = _roots_of(parent)
    for comp in membership(roots):
        root = roots[next(iter(comp))]
        assert flags[root] == any(runtime[i] for i in comp)


@settings(deadline=None, max_examples=60)
@given(union_problems())
def test_same_class_only_never_mixes_classes(problem):
    n, pairs, runtime = problem
    parent, _size, _flags, _merged = run_batch(
        n, pairs, runtime, same_class_only=True)
    for comp in membership(_roots_of(parent)):
        classes = {runtime[i] for i in comp}
        assert len(classes) == 1


# ---------------------------------------------------------------------------
# Idempotence and count bookkeeping
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=60)
@given(union_problems())
def test_replaying_a_batch_is_idempotent(problem):
    n, pairs, runtime = problem
    parent, size, flags, merged = run_batch(n, pairs, runtime)
    snapshot = (_roots_of(parent), list(size), list(flags))
    again = batch_union(parent, size, flags,
                        [a for a, _ in pairs], [b for _, b in pairs])
    assert again == 0
    assert (_roots_of(parent), size, flags) == snapshot
    assert merged == n - len(set(_roots_of(parent)))


@settings(deadline=None, max_examples=60)
@given(union_problems())
def test_merged_count_matches_component_count(problem):
    n, pairs, runtime = problem
    uf = BatchUnionFind(n, runtime)
    uf.batch_union([a for a, _ in pairs], [b for _, b in pairs])
    assert uf.count == len(set(uf.roots_array()))
    assert uf.count == len(membership(uf.roots_array()))


# ---------------------------------------------------------------------------
# Batch-order commutativity (membership level) and the vectorized reference
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=60)
@given(union_problems(), st.integers(0, 2**16))
def test_shuffled_batches_reach_the_same_partition(problem, seed):
    n, pairs, runtime = problem
    baseline = membership(_roots_of(run_batch(n, pairs, runtime)[0]))
    shuffled = list(pairs)
    random.Random(seed).shuffle(shuffled)
    assert membership(_roots_of(run_batch(n, shuffled, runtime)[0])) == baseline


@pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
@settings(deadline=None, max_examples=60)
@given(union_problems())
def test_components_match_minlabel_reference(problem):
    n, pairs, runtime = problem
    parent, _size, _flags, merged = run_batch(n, pairs, runtime)
    labels = connected_components(
        n, [a for a, _ in pairs], [b for _, b in pairs])
    assert membership(_roots_of(parent)) == membership(labels.tolist())
    assert n - merged == len(set(labels.tolist()))


@pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
@settings(deadline=None, max_examples=60)
@given(union_problems())
def test_roots_numpy_matches_per_element_find(problem):
    n, pairs, runtime = problem
    uf = BatchUnionFind(n, runtime)
    uf.batch_union([a for a, _ in pairs], [b for _, b in pairs])
    assert roots_numpy(uf.parent).tolist() == uf.roots_array()


# ---------------------------------------------------------------------------
# BatchUnionFind packaging: chunked batches and per-pair unions agree
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=60)
@given(union_problems(), st.integers(1, 7))
def test_chunked_batches_equal_one_batch(problem, chunk):
    n, pairs, runtime = problem
    whole = BatchUnionFind(n, runtime)
    whole.batch_union([a for a, _ in pairs], [b for _, b in pairs])
    split = BatchUnionFind(n, runtime)
    for i in range(0, len(pairs), chunk):
        part = pairs[i:i + chunk]
        split.batch_union([a for a, _ in part], [b for _, b in part])
    assert split.parent == whole.parent
    assert split.size == whole.size
    assert split.runtime == whole.runtime
    assert split.count == whole.count


@settings(deadline=None, max_examples=60)
@given(union_problems(), st.booleans())
def test_per_pair_union_equals_batch(problem, same_class_only):
    n, pairs, runtime = problem
    whole = BatchUnionFind(n, runtime)
    whole.batch_union([a for a, _ in pairs], [b for _, b in pairs],
                      same_class_only=same_class_only)
    single = BatchUnionFind(n, runtime)
    for a, b in pairs:
        single.union(a, b, same_class_only=same_class_only)
    assert single.parent == whole.parent
    assert single.count == whole.count


def test_numpy_candidate_columns_accepted():
    if not HAVE_NUMPY:
        pytest.skip("requires numpy")
    uf = BatchUnionFind(4)
    merged = uf.batch_union(np.array([0, 2]), np.array([1, 3]))
    assert merged == 2
    assert uf.count == 2


def test_runtime_length_mismatch_rejected():
    with pytest.raises(ValueError):
        BatchUnionFind(3, runtime=[True])


def test_connected_components_rejects_ragged_edges():
    if not HAVE_NUMPY:
        pytest.skip("requires numpy")
    with pytest.raises(ValueError):
        connected_components(3, [0, 1], [2])


# ---------------------------------------------------------------------------
def _roots_of(parent):
    """Root per element without mutating ``parent``."""
    out = []
    for i in range(len(parent)):
        x = i
        while parent[x] != x:
            x = parent[x]
        out.append(x)
    return out
