"""Property tests: every seeded random trace verifies cleanly.

The generator (:func:`tests.helpers.random_trace`) produces physically
valid traces by construction — per-PE clocks, causally ordered message
endpoints — so the whole chain must hold with no violations: trace
validation, extraction under both orders, and the full invariant suite.
The grid covers ≥50 traces across chare counts, PE counts, noise levels,
fanouts, and both execution models.
"""

import pytest

from repro.core.pipeline import extract_logical_structure
from repro.trace.validate import collect_trace_problems, validate_trace
from repro.verify import check_structure
from tests.helpers import random_trace

pytestmark = pytest.mark.verify

SEEDS = range(6)

#: (mode, runtime, chares, pes, rounds, noise, fanout)
CONFIGS = [
    ("charm", False, 4, 2, 2, 0.0, 2),
    ("charm", False, 8, 3, 3, 0.3, 3),
    ("charm", True, 5, 2, 2, 0.0, 2),
    ("charm", True, 7, 4, 3, 0.25, 2),
    ("charm", True, 10, 3, 4, 0.6, 3),
    ("mpi", False, 4, 2, 2, 0.0, 2),
    ("mpi", False, 6, 3, 3, 0.3, 2),
    ("mpi", False, 9, 4, 4, 0.6, 2),
    ("mpi", False, 2, 2, 3, 0.25, 2),
]

CASES = [(seed, cfg) for seed in SEEDS for cfg in CONFIGS]
assert len(CASES) >= 50


@pytest.mark.parametrize(
    "seed,cfg",
    CASES,
    ids=[f"{cfg[0]}{'-rt' if cfg[1] else ''}-c{cfg[2]}-n{cfg[5]}-s{seed}"
         for seed, cfg in CASES],
)
def test_random_trace_verifies_clean(seed, cfg):
    mode, runtime, chares, pes, rounds, noise, fanout = cfg
    trace = random_trace(
        seed=seed, chares=chares, pes=pes, rounds=rounds, mode=mode,
        noise=noise, fanout=fanout, runtime=runtime,
    )
    assert len(trace.events) > 0
    validate_trace(trace)  # must not raise

    # Reordered always; the physical order on half the seeds keeps the
    # grid fast while still covering both orders across the matrix.
    orders = ("reordered", "physical") if seed % 2 == 0 else ("reordered",)
    for order in orders:
        structure = extract_logical_structure(trace, order=order)
        violations = check_structure(structure)
        assert violations == [], "\n".join(
            f"[{v.invariant}] {v.message}" for v in violations[:10]
        )


def test_generator_is_deterministic():
    a = random_trace(seed=42, chares=6, pes=3, rounds=3, runtime=True)
    b = random_trace(seed=42, chares=6, pes=3, rounds=3, runtime=True)
    assert len(a.events) == len(b.events)
    assert [(e.kind, e.chare, e.time) for e in a.events] == \
           [(e.kind, e.chare, e.time) for e in b.events]
    c = random_trace(seed=43, chares=6, pes=3, rounds=3, runtime=True)
    assert [(e.kind, e.chare, e.time) for e in a.events] != \
           [(e.kind, e.chare, e.time) for e in c.events]


def test_mpi_metadata_tagged():
    trace = random_trace(seed=1, mode="mpi", chares=4, pes=2, rounds=2)
    assert trace.metadata.get("model") == "mpi"
    assert collect_trace_problems(trace) == []
