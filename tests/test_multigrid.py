"""Multigrid two-array workload: inter-array phase structure."""

import pytest

from repro.apps import multigrid
from repro.core import extract_logical_structure
from repro.core.patterns import detect_period, signature_sequence
from repro.trace import validate_trace


@pytest.fixture(scope="module")
def structure():
    trace = multigrid.run(fine=(4, 4), pes=4, cycles=3, seed=1)
    validate_trace(trace)
    return extract_logical_structure(trace)


def test_vcycle_repeats(structure):
    sigs = signature_sequence(structure)
    period, _start, repeats = detect_period(sigs, min_repeats=2)
    assert period == 5 and repeats >= 2  # 4 app stages + reduction


def test_vcycle_stage_order(structure):
    order = structure.phase_sequence()
    names = [
        {n.split("::")[-1] for n, _ in structure.phase_entry_signature(p)}
        for p in order
    ]
    # Cycle 2 (away from the prologue): smooth -> restrict -> solve ->
    # prolongate -> reduce.
    stages = names[5:10]
    assert "smooth" in stages[0]
    assert "restrict_residual" in stages[1]
    assert "solve" in stages[2]
    assert "prolongate" in stages[3]
    assert "contribute_local" in stages[4]


def test_arrays_stay_separate_phases(structure):
    """Fine exchange phases contain no coarse chares and vice versa."""
    trace = structure.trace
    fine = {c.id for c in trace.chares if c.name.startswith("Fine")}
    coarse = {c.id for c in trace.chares if c.name.startswith("Coarse")}
    assert fine and coarse
    for pid in structure.phase_sequence():
        names = {n.split("::")[-1] for n, _ in structure.phase_entry_signature(pid)}
        chares = structure.phase(pid).chares
        if names == {"recv_cghost", "solve"}:
            assert chares <= coarse
        if names == {"smooth", "recv_ghost"}:
            assert chares <= fine


def test_cross_array_phases_bridge(structure):
    """Restriction/prolongation phases span both arrays."""
    trace = structure.trace
    fine = {c.id for c in trace.chares if c.name.startswith("Fine")}
    coarse = {c.id for c in trace.chares if c.name.startswith("Coarse")}
    bridges = 0
    for phase in structure.phases:
        if phase.chares & fine and phase.chares & coarse:
            bridges += 1
    assert bridges >= 6  # restriction + prolongation per cycle


def test_odd_fine_grid_rejected():
    with pytest.raises(ValueError, match="even"):
        multigrid.run(fine=(3, 4))
