"""Regression tests for the scoped GC pause and ``initial`` scaling.

The ``initial`` stage's super-linear scaling (ROADMAP item 2) was the
cyclic collector rescanning the whole live trace heap every ~70k
allocations while the block builders churned short-lived objects.  The
fix is :func:`repro.core.gcpause.pause_gc` around the columnar
extraction; these tests pin the pause's scoping semantics, assert that
no collection fires inside a batched extraction, and — under the bench
marker — pin the stage's growth ratio so the quadratic cannot return
unnoticed.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.api import PipelineOptions, PipelineStats, extract
from repro.apps import lulesh
from repro.core.columnar import HAVE_NUMPY
from repro.core.gcpause import pause_gc


# ---------------------------------------------------------------------------
# pause_gc scoping semantics
# ---------------------------------------------------------------------------
def test_pause_disables_and_restores():
    assert gc.isenabled()
    with pause_gc():
        assert not gc.isenabled()
    assert gc.isenabled()


def test_inactive_pause_is_noop():
    assert gc.isenabled()
    with pause_gc(False):
        assert gc.isenabled()
    assert gc.isenabled()


def test_nested_pause_composes():
    with pause_gc():
        with pause_gc():
            assert not gc.isenabled()
        # The inner pause must not re-enable under the outer one.
        assert not gc.isenabled()
    assert gc.isenabled()


def test_pause_restores_on_exception():
    with pytest.raises(RuntimeError):
        with pause_gc():
            raise RuntimeError("boom")
    assert gc.isenabled()


def test_pause_leaves_disabled_collector_alone():
    gc.disable()
    try:
        with pause_gc():
            assert not gc.isenabled()
        # An outer no-GC policy is never overridden.
        assert not gc.isenabled()
    finally:
        gc.enable()


# ---------------------------------------------------------------------------
# No full-heap collection may fire inside a batched extraction
# ---------------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
def test_no_full_collections_during_batched_extraction():
    # The quadratic came from older-generation collections rescanning the
    # whole live trace heap once per ~70k allocations.  With the stage
    # executor paused, none may fire during extraction; setup/teardown
    # outside the pause may still trigger a stray young collection.
    trace = lulesh.run_charm(chares=8, pes=4, iterations=2, seed=3)
    collections = []

    def observer(phase, info):
        if phase == "stop":
            collections.append(dict(info))

    gc.collect()  # drain pending garbage so thresholds start fresh
    gc.callbacks.append(observer)
    try:
        extract(trace, PipelineOptions(backend="columnar_batched"))
    finally:
        gc.callbacks.remove(observer)
    assert not [c for c in collections if c["generation"] == 2]
    assert len(collections) <= 3, collections


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
def test_python_backend_keeps_collector_enabled():
    # The reference backend is the historical behavior — the pause is a
    # columnar-family optimization only.
    trace = lulesh.run_charm(chares=4, pes=2, iterations=1, seed=3)
    states = []

    class Probe:
        def __del__(self):
            states.append(gc.isenabled())

    def run(backend):
        states.clear()
        probe = Probe()  # noqa: F841 - dies during extraction teardown
        del probe
        extract(trace, PipelineOptions(backend=backend))
        return gc.isenabled()

    assert run("python") is True
    assert run("columnar_batched") is True  # restored after the pause


# ---------------------------------------------------------------------------
# Growth-ratio pin: initial must stay near-linear in events
# ---------------------------------------------------------------------------
@pytest.mark.bench
@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
def test_initial_stage_scales_near_linearly():
    def initial_seconds(iterations):
        trace = lulesh.run_charm(chares=64, pes=8, iterations=iterations,
                                 seed=3)
        best = float("inf")
        for _ in range(3):
            stats = PipelineStats()
            t0 = time.perf_counter()
            extract(trace, PipelineOptions(backend="columnar_batched"),
                    stats=stats)
            del t0
            best = min(best, stats.stage_seconds["initial"])
        return best, len(trace.events)

    small_s, small_n = initial_seconds(2)
    big_s, big_n = initial_seconds(8)
    event_ratio = big_n / small_n  # ~4x
    assert event_ratio > 3.0
    # Linear scaling would give time_ratio ~= event_ratio; the historical
    # GC quadratic gave ~= event_ratio**2.  Pin the geometric midpoint,
    # leaving generous room for container timing noise.
    assert big_s / max(small_s, 1e-9) < event_ratio ** 1.5, (
        f"initial grew {big_s / small_s:.1f}x for {event_ratio:.1f}x events"
    )
