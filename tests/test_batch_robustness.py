"""Batch hardening: timeouts, retries, crash recovery, cache atomicity,
and digest field coverage.

The scheduler tests monkeypatch :func:`repro.batch._extract_one` in the
parent; worker processes are forked on Linux and inherit the patch, so a
sleeping or crashing worker can be simulated without fixture plumbing.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro import batch as batch_mod
from repro.api import (
    BatchExtractor,
    PipelineOptions,
    StructureCache,
    trace_digest,
    write_trace,
)
from repro.apps import jacobi2d
from repro.trace.events import NO_ID, EventKind
from repro.trace.model import TraceBuilder

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "j.jsonl"
    write_trace(jacobi2d.run(chares=(3, 3), pes=2, iterations=1, seed=0),
                path)
    return str(path)


def _sleepy(source, option_fields):
    time.sleep(30.0)
    return True, {}, "", 30.0


def _crashy(source, option_fields):
    os._exit(13)


# ---------------------------------------------------------------------------
# Timeouts, retries, crash containment
# ---------------------------------------------------------------------------
def test_timeout_kills_and_reports(trace_file, monkeypatch):
    monkeypatch.setattr(batch_mod, "_extract_one", _sleepy)
    t0 = time.monotonic()
    report = BatchExtractor(PipelineOptions(), timeout=0.4).run([trace_file])
    elapsed = time.monotonic() - t0
    r = report.results[0]
    assert not r.ok and r.timed_out and r.attempts == 1
    assert "Timeout" in r.error
    assert elapsed < 10.0  # killed, not waited out
    assert report.timeouts == [r]
    assert not report.ok


def test_timeout_retries_with_backoff(trace_file, monkeypatch):
    monkeypatch.setattr(batch_mod, "_extract_one", _sleepy)
    report = BatchExtractor(PipelineOptions(), timeout=0.3, retries=2,
                            backoff=0.05).run([trace_file])
    r = report.results[0]
    assert not r.ok and r.timed_out and r.attempts == 3


def test_timeout_does_not_stall_other_traces(trace_file, tmp_path,
                                             monkeypatch):
    # Acceptance: one hung worker is killed while the rest of the batch
    # completes normally.
    flag = tmp_path / "hang-only-first"
    flag.write_text(trace_file)
    real = batch_mod._extract_one

    def hang_one(source, option_fields):
        if str(source) == flag.read_text():
            time.sleep(30.0)
        return real(source, option_fields)

    monkeypatch.setattr(batch_mod, "_extract_one", hang_one)
    other = tmp_path / "other.jsonl"
    other.write_bytes(open(trace_file, "rb").read())
    report = BatchExtractor(PipelineOptions(), jobs=2,
                            timeout=1.0).run([trace_file, str(other)])
    assert not report.results[0].ok and report.results[0].timed_out
    assert report.results[1].ok


def test_worker_crash_is_a_failure_row(trace_file, monkeypatch):
    monkeypatch.setattr(batch_mod, "_extract_one", _crashy)
    report = BatchExtractor(PipelineOptions(), timeout=30.0).run([trace_file])
    r = report.results[0]
    assert not r.ok and not r.timed_out
    assert "WorkerCrash" in r.error and "13" in r.error


def test_crash_then_retry_succeeds(trace_file, tmp_path, monkeypatch):
    # First attempt crashes; the retry (flag file consumed) succeeds.
    flag = tmp_path / "crash-once"
    flag.write_text("arm")
    real = batch_mod._extract_one

    def crash_once(source, option_fields):
        if flag.exists():
            flag.unlink()
            os._exit(13)
        return real(source, option_fields)

    monkeypatch.setattr(batch_mod, "_extract_one", crash_once)
    report = BatchExtractor(PipelineOptions(), timeout=60.0, retries=1,
                            backoff=0.05).run([trace_file])
    r = report.results[0]
    assert r.ok and r.attempts == 2 and not r.timed_out


def test_timeout_requires_positive_value():
    with pytest.raises(ValueError, match="timeout"):
        BatchExtractor(PipelineOptions(), timeout=0.0)


def test_process_path_matches_serial(trace_file):
    serial = BatchExtractor(PipelineOptions()).run([trace_file])
    viaproc = BatchExtractor(PipelineOptions(),
                             timeout=120.0).run([trace_file])
    assert serial.results[0].summary["phases"] == \
        viaproc.results[0].summary["phases"]
    assert serial.results[0].summary["max_step"] == \
        viaproc.results[0].summary["max_step"]


# ---------------------------------------------------------------------------
# Cache atomicity
# ---------------------------------------------------------------------------
def test_partial_cache_file_reads_as_miss(trace_file, tmp_path):
    cache = StructureCache(tmp_path / "cache")
    report = BatchExtractor(PipelineOptions(), cache=cache).run([trace_file])
    assert report.ok
    entry = next(p for p in (tmp_path / "cache").iterdir()
                 if p.suffix == ".json")
    # Simulate a write killed partway: truncate the persisted entry.
    entry.write_text(entry.read_text()[:17])

    fresh = StructureCache(tmp_path / "cache")
    report2 = BatchExtractor(PipelineOptions(), cache=fresh).run([trace_file])
    assert report2.ok
    assert not report2.results[0].cached  # torn entry counted as a miss
    # The re-run rewrote a complete entry over the torn one.
    json.loads(entry.read_text())


def test_no_temp_litter_after_put(tmp_path):
    cache = StructureCache(tmp_path / "cache")
    for i in range(5):
        cache.put(f"key{i}", {"n": i})
    leftover = [p for p in (tmp_path / "cache").iterdir()
                if p.suffix != ".json"]
    assert leftover == []


def test_concurrent_writers_never_tear(tmp_path):
    # Many threads × several processes' worth of writers on one key must
    # always leave a complete, parseable entry (os.replace is atomic).
    directory = tmp_path / "cache"
    payloads = [{"writer": i, "fill": "x" * 2000} for i in range(8)]
    caches = [StructureCache(directory) for _ in payloads]
    stop = time.monotonic() + 0.5

    def hammer(cache, payload):
        while time.monotonic() < stop:
            cache.put("shared", payload)

    threads = [threading.Thread(target=hammer, args=(c, p))
               for c, p in zip(caches, payloads)]
    for t in threads:
        t.start()
    reads = 0
    while time.monotonic() < stop:
        path = directory / "shared.json"
        if path.exists():
            doc = json.loads(path.read_text())  # must never be torn
            assert doc["fill"] == "x" * 2000
            reads += 1
    for t in threads:
        t.join()
    assert reads > 0
    json.loads((directory / "shared.json").read_text())


# ---------------------------------------------------------------------------
# Digest field coverage
# ---------------------------------------------------------------------------
def _base_kwargs():
    return dict(
        num_pes=2, metadata={"app": "unit"},
        entry=("work", "Worker", False, -1),
        array=("grid", (2,)),
        chare=("grid[0]", 0, (0,), False, 0),
        exec_span=(0.0, 2.0), exec_recv=NO_ID,
        event=(EventKind.SEND, 0, 0, 1.0),
        message=(0, NO_ID),
        idle=(1, 0.5, 1.5),
    )


def _build(kw):
    b = TraceBuilder(num_pes=kw["num_pes"], metadata=dict(kw["metadata"]))
    b.add_entry(*kw["entry"])
    b.add_array(*kw["array"])
    b.add_chare(*kw["chare"])
    x = b.add_execution(0, 0, 0, *kw["exec_span"],
                        recv_event=kw["exec_recv"])
    ev = b.add_event(kw["event"][0], kw["event"][1], kw["event"][2],
                     kw["event"][3], execution=x)
    b.add_message(*kw["message"])
    b.add_idle(*kw["idle"])
    return b.build()


FIELD_FLIPS = {
    "num_pes": ("num_pes", 4),
    "metadata": ("metadata", {"app": "other"}),
    "entry_name": ("entry", ("work2", "Worker", False, -1)),
    "entry_chare_type": ("entry", ("work", "Boss", False, -1)),
    "entry_sdag": ("entry", ("work", "Worker", True, 3)),
    "array_name": ("array", ("mesh", (2,))),
    "array_shape": ("array", ("grid", (4,))),
    "chare_name": ("chare", ("grid[1]", 0, (0,), False, 0)),
    "chare_index": ("chare", ("grid[0]", 0, (1,), False, 0)),
    "chare_runtime": ("chare", ("grid[0]", 0, (0,), True, 0)),
    "chare_home_pe": ("chare", ("grid[0]", 0, (0,), False, 1)),
    "exec_span": ("exec_span", (0.0, 3.0)),
    "event_kind": ("event", (EventKind.RECV, 0, 0, 1.0)),
    "event_pe": ("event", (EventKind.SEND, 0, 1, 1.0)),
    "event_time": ("event", (EventKind.SEND, 0, 0, 1.25)),
    "idle_pe": ("idle", (0, 0.5, 1.5)),
    "idle_span": ("idle", (1, 0.5, 1.75)),
}


@pytest.mark.parametrize("label", sorted(FIELD_FLIPS))
def test_digest_sees_every_field(label):
    # Regression for the digest omitting idles, home_pe, and names: any
    # single-field change must change the in-memory digest.
    base = trace_digest(_build(_base_kwargs()))
    kw = _base_kwargs()
    key, value = FIELD_FLIPS[label]
    kw[key] = value
    assert trace_digest(_build(kw)) != base, label


def test_digest_handles_no_id_and_missing_fields():
    # NO_ID endpoints, NO_ID recv, empty registries: must hash, not raise.
    b = TraceBuilder(num_pes=1)
    b.add_chare("lonely")
    b.add_entry("noop")
    b.add_execution(0, 0, 0, 0.0, 1.0, recv_event=NO_ID)
    b.add_message(NO_ID, NO_ID)
    d = trace_digest(b.build())
    assert isinstance(d, str) and len(d) == 64


def test_digest_distinguishes_recv_assignment():
    kw = _base_kwargs()
    base = trace_digest(_build(kw))
    kw["exec_recv"] = 0  # the event becomes the execution's trigger
    kw["event"] = (EventKind.RECV, 0, 0, 0.0)
    assert trace_digest(_build(kw)) != base
