"""Test helpers: compact construction of synthetic traces.

``SyntheticTrace`` wraps :class:`repro.trace.TraceBuilder` with a
block-oriented API so unit tests can transcribe the paper's illustrative
figures (rings, split blocks, idle scenarios) in a few lines.

``random_trace`` generates seeded, physically valid traces of arbitrary
shape (charm task trees or MPI neighbour exchanges, with optional runtime
chares and timing noise) for the property-based invariant suite.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace, TraceBuilder


def structures_equal(a, b) -> bool:
    """Bit-identical placement: every event in the same phase and step."""
    return (a.step_of_event == b.step_of_event
            and a.phase_of_event == b.phase_of_event
            and a.local_step_of_event == b.local_step_of_event
            and len(a.phases) == len(b.phases))


class SyntheticTrace:
    """Builds traces from (chare, entry, time-span, events) block specs."""

    def __init__(self, num_pes: int = 2, metadata: Optional[dict] = None):
        self.builder = TraceBuilder(num_pes=num_pes, metadata=metadata)
        self._entries: Dict[Tuple[str, bool, int], int] = {}
        self._pending_sends: Dict[str, int] = {}

    # -- registries ------------------------------------------------------
    def chare(self, name: str, pe: int = 0, is_runtime: bool = False,
              array_id: int = NO_ID, index: Tuple[int, ...] = ()) -> int:
        """Add a chare; returns its id."""
        return self.builder.add_chare(name, array_id, index, is_runtime, pe)

    def array(self, name: str, shape: Tuple[int, ...] = ()) -> int:
        """Add a chare array; returns its id."""
        return self.builder.add_array(name, shape)

    def _entry(self, name: str, sdag: bool, ordinal: int) -> int:
        key = (name, sdag, ordinal)
        if key not in self._entries:
            self._entries[key] = self.builder.add_entry(
                name, is_sdag_serial=sdag, sdag_ordinal=ordinal
            )
        return self._entries[key]

    # -- blocks ------------------------------------------------------------
    def block(
        self,
        chare: int,
        entry: str,
        pe: int,
        start: float,
        end: float,
        events: Optional[List[Tuple[str, str, float]]] = None,
        sdag: bool = False,
        ordinal: int = -1,
    ) -> int:
        """Add one execution with its dependency events.

        ``events`` is a list of ``(kind, label, time)``: kind is ``"send"``
        or ``"recv"``; matching endpoints share a label — a ``send`` opens
        the label, the ``recv`` closes it.  A recv label never opened
        produces an *untraced* receive (message with missing send).
        Returns the execution id.
        """
        entry_id = self._entry(entry, sdag, ordinal)
        exec_id = self.builder.add_execution(chare, entry_id, pe, start, end)
        for kind, label, time in events or ():
            if kind == "send":
                ev = self.builder.add_event(EventKind.SEND, chare, pe, time, exec_id)
                self._pending_sends[label] = ev
            elif kind == "recv":
                ev = self.builder.add_event(EventKind.RECV, chare, pe, time, exec_id)
                send_ev = self._pending_sends.pop(label, NO_ID)
                mid = self.builder.add_message(send_event=send_ev, recv_event=ev)
                if self.builder._executions[exec_id].recv_event == NO_ID:
                    self.builder.set_execution_recv(exec_id, ev)
            else:
                raise ValueError(f"unknown event kind {kind!r}")
        return exec_id

    def idle(self, pe: int, start: float, end: float) -> None:
        """Record an idle interval."""
        self.builder.add_idle(pe, start, end)

    def build(self) -> Trace:
        """Finalize the trace."""
        return self.builder.build()


def random_trace(
    seed: int = 0,
    chares: int = 6,
    pes: int = 2,
    rounds: int = 3,
    mode: str = "charm",
    noise: float = 0.0,
    fanout: int = 2,
    runtime: bool = False,
) -> Trace:
    """Seeded, physically valid random trace for property tests.

    ``charm`` mode simulates an event-driven run: each round opens
    depth-limited message trees over the application chares; every
    delivery becomes an execution on the destination chare's PE (per-PE
    clocks keep executions disjoint, deliveries never precede their
    sends).  With ``runtime=True`` the rounds are chained through a
    runtime "main" chare — leaves report completion, main triggers the
    next round — which keeps the rounds as distinct phases in the
    recovered DAG (application/runtime message endpoints are edges, not
    merges).  ``mpi`` mode emits a round-based ring exchange (compute
    block with sends, then an exchange block receiving from both
    neighbours) and tags the trace metadata with ``{"model": "mpi"}``.
    ``noise`` jitters durations and latencies multiplicatively.
    """
    rng = random.Random(seed)
    if mode == "mpi":
        return _random_mpi_trace(rng, chares, pes, rounds, noise)
    if mode != "charm":
        raise ValueError(f"unknown mode {mode!r}")

    import heapq

    tr = SyntheticTrace(num_pes=pes, metadata={"model": "charm", "seed": seed})
    chare_ids = [tr.chare(f"C[{i}]", pe=i % pes) for i in range(chares)]
    chare_pe = {cid: i % pes for i, cid in enumerate(chare_ids)}
    main = -1
    if runtime:
        main = tr.chare("CkMain", pe=0, is_runtime=True)
        chare_pe[main] = 0
    clocks = [0.0] * pes
    entries = ["work", "step", "reduce"]
    max_depth = 3

    def jitter(x: float) -> float:
        if noise <= 0:
            return x
        return max(1e-3, x * (1.0 + rng.uniform(-noise, noise)))

    seq = 0
    label_counter = 0
    t_boot = 0.0
    # (label, send_time) completion messages awaiting the next main block
    pending_done: List[Tuple[str, float]] = []
    for _ in range(max(rounds, 1)):
        # (deliver_time, seq, label, dest_chare, depth); seq breaks ties
        queue: List[Tuple[float, int, str, int, int]] = []
        budget = chares * 6
        if runtime:
            # Main receives last round's completions, triggers this round.
            start = max(
                [clocks[0], t_boot] + [t + jitter(0.3) for _, t in pending_done]
            )
            dur = jitter(1.5)
            evs: List[Tuple[str, str, float]] = []
            for k, (lab, _) in enumerate(pending_done):
                evs.append(("recv", lab,
                            start + dur * (0.02 + 0.4 * (k + 1) / (len(pending_done) + 1))))
            pending_done = []
            roots = rng.sample(chare_ids, 1 + rng.randrange(max(1, min(fanout, chares))))
            for root in roots:
                label = f"m{label_counter}"
                label_counter += 1
                st = start + dur * rng.uniform(0.5, 0.95)
                evs.append(("send", label, st))
                heapq.heappush(queue, (st + jitter(0.5), seq, label, root, 1))
                seq += 1
            evs.sort(key=lambda e: e[2])
            tr.block(main, "trigger", 0, start, start + dur, evs)
            clocks[0] = start + dur
            t_boot = start + dur
        else:
            root = rng.choice(chare_ids)
            pe = chare_pe[root]
            start = max(clocks[pe], t_boot)
            dur = jitter(2.0)
            evs = []
            for _ in range(1 + rng.randrange(max(1, fanout))):
                label = f"m{label_counter}"
                label_counter += 1
                st = start + dur * rng.uniform(0.1, 0.9)
                evs.append(("send", label, st))
                heapq.heappush(queue, (st + jitter(0.5), seq, label,
                                       rng.choice(chare_ids), 1))
                seq += 1
            evs.sort(key=lambda e: e[2])
            tr.block(root, rng.choice(entries), pe, start, start + dur, evs)
            clocks[pe] = start + dur
            t_boot = start + dur + jitter(1.0)

        while queue:
            deliver, _, label, dest, depth = heapq.heappop(queue)
            pe = chare_pe[dest]
            start = max(clocks[pe], deliver)
            dur = jitter(1.0)
            evs = [("recv", label, start + dur * 0.01)]
            children = 0
            if depth < max_depth and budget > 0:
                for _ in range(rng.randrange(fanout + 1)):
                    lab = f"m{label_counter}"
                    label_counter += 1
                    st = start + dur * rng.uniform(0.2, 0.9)
                    evs.append(("send", lab, st))
                    heapq.heappush(queue, (st + jitter(0.5), seq, lab,
                                           rng.choice(chare_ids), depth + 1))
                    seq += 1
                    budget -= 1
                    children += 1
            if runtime and children == 0:
                # Leaf: report completion to main for round chaining.
                lab = f"m{label_counter}"
                label_counter += 1
                evs.append(("send", lab, start + dur * 0.95))
                pending_done.append((lab, start + dur * 0.95))
            evs.sort(key=lambda e: e[2])
            tr.block(dest, rng.choice(entries), pe, start, start + dur, evs)
            clocks[pe] = start + dur
    return tr.build()


def _random_mpi_trace(
    rng: "random.Random", ranks: int, pes: int, rounds: int, noise: float
) -> Trace:
    """Round-based ring exchange over ``ranks`` MPI processes."""
    tr = SyntheticTrace(num_pes=pes, metadata={"model": "mpi"})
    ids = [tr.chare(f"rank{i}", pe=i % pes) for i in range(ranks)]
    clocks = [0.0] * pes

    def jitter(x: float) -> float:
        if noise <= 0:
            return x
        return max(1e-3, x * (1.0 + rng.uniform(-noise, noise)))

    for r in range(rounds):
        send_time: Dict[str, float] = {}
        for i, cid in enumerate(ids):
            pe = i % pes
            start = clocks[pe]
            dur = jitter(2.0)
            evs: List[Tuple[str, str, float]] = []
            for off, tag in ((1, "R"), (-1, "L")):
                j = (i + off) % ranks
                if j == i:
                    continue
                label = f"r{r}_{i}_{j}_{tag}"
                st = start + dur * rng.uniform(0.3, 0.9)
                evs.append(("send", label, st))
                send_time[label] = st
            evs.sort(key=lambda e: e[2])
            tr.block(cid, "compute", pe, start, start + dur, evs)
            clocks[pe] = start + dur
        for i, cid in enumerate(ids):
            pe = i % pes
            incoming: List[Tuple[str, float]] = []
            for off, tag in ((-1, "R"), (1, "L")):
                j = (i + off) % ranks
                if j == i:
                    continue
                label = f"r{r}_{j}_{i}_{tag}"
                if label in send_time:
                    incoming.append((label, send_time[label]))
            start = max([clocks[pe]] + [t + 1e-3 for _, t in incoming])
            dur = jitter(1.0)
            evs = [
                ("recv", lab, start + dur * (0.1 + 0.3 * k))
                for k, (lab, _) in enumerate(incoming)
            ]
            tr.block(cid, "exchange", pe, start, start + dur, evs)
            clocks[pe] = start + dur
    return tr.build()
