"""Test helpers: compact construction of synthetic traces.

``SyntheticTrace`` wraps :class:`repro.trace.TraceBuilder` with a
block-oriented API so unit tests can transcribe the paper's illustrative
figures (rings, split blocks, idle scenarios) in a few lines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace, TraceBuilder


class SyntheticTrace:
    """Builds traces from (chare, entry, time-span, events) block specs."""

    def __init__(self, num_pes: int = 2, metadata: Optional[dict] = None):
        self.builder = TraceBuilder(num_pes=num_pes, metadata=metadata)
        self._entries: Dict[Tuple[str, bool, int], int] = {}
        self._pending_sends: Dict[str, int] = {}

    # -- registries ------------------------------------------------------
    def chare(self, name: str, pe: int = 0, is_runtime: bool = False,
              array_id: int = NO_ID, index: Tuple[int, ...] = ()) -> int:
        """Add a chare; returns its id."""
        return self.builder.add_chare(name, array_id, index, is_runtime, pe)

    def array(self, name: str, shape: Tuple[int, ...] = ()) -> int:
        """Add a chare array; returns its id."""
        return self.builder.add_array(name, shape)

    def _entry(self, name: str, sdag: bool, ordinal: int) -> int:
        key = (name, sdag, ordinal)
        if key not in self._entries:
            self._entries[key] = self.builder.add_entry(
                name, is_sdag_serial=sdag, sdag_ordinal=ordinal
            )
        return self._entries[key]

    # -- blocks ------------------------------------------------------------
    def block(
        self,
        chare: int,
        entry: str,
        pe: int,
        start: float,
        end: float,
        events: Optional[List[Tuple[str, str, float]]] = None,
        sdag: bool = False,
        ordinal: int = -1,
    ) -> int:
        """Add one execution with its dependency events.

        ``events`` is a list of ``(kind, label, time)``: kind is ``"send"``
        or ``"recv"``; matching endpoints share a label — a ``send`` opens
        the label, the ``recv`` closes it.  A recv label never opened
        produces an *untraced* receive (message with missing send).
        Returns the execution id.
        """
        entry_id = self._entry(entry, sdag, ordinal)
        exec_id = self.builder.add_execution(chare, entry_id, pe, start, end)
        for kind, label, time in events or ():
            if kind == "send":
                ev = self.builder.add_event(EventKind.SEND, chare, pe, time, exec_id)
                self._pending_sends[label] = ev
            elif kind == "recv":
                ev = self.builder.add_event(EventKind.RECV, chare, pe, time, exec_id)
                send_ev = self._pending_sends.pop(label, NO_ID)
                mid = self.builder.add_message(send_event=send_ev, recv_event=ev)
                if self.builder._executions[exec_id].recv_event == NO_ID:
                    self.builder.set_execution_recv(exec_id, ev)
            else:
                raise ValueError(f"unknown event kind {kind!r}")
        return exec_id

    def idle(self, pe: int, start: float, end: float) -> None:
        """Record an idle interval."""
        self.builder.add_idle(pe, start, end)

    def build(self) -> Trace:
        """Finalize the trace."""
        return self.builder.build()
