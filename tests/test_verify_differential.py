"""Full-pipeline strict verification across every bundled app generator.

For each application trace the differential harness runs the pipeline
under the whole option matrix (reordered/physical × infer on/off, plus
the index tie-break) and asserts every invariant in every variant plus
the cross-variant facts.  Also covers the ``repro verify`` CLI
acceptance path: exit 0 with a clean trace, non-zero with a report
naming the violated invariant on a corrupted one.
"""

import json

import pytest

from repro.apps import (
    btsweep,
    jacobi2d,
    lassen,
    lulesh,
    mergetree,
    multigrid,
    nasbt,
    pdes,
    sssp,
)
from repro.cli import main
from repro.trace import write_trace
from repro.verify import default_variants, run_differential
from tests.helpers import SyntheticTrace, random_trace

pytestmark = pytest.mark.verify

APP_TRACES = {
    "jacobi2d": lambda: jacobi2d.run(chares=(4, 4), pes=4, iterations=2, seed=7),
    "lulesh-charm": lambda: lulesh.run_charm(chares=8, pes=2, iterations=2, seed=3),
    "lulesh-mpi": lambda: lulesh.run_mpi(ranks=8, iterations=2, seed=3),
    "lassen-charm": lambda: lassen.run_charm(chares=8, pes=8, iterations=3, seed=1),
    "lassen-mpi": lambda: lassen.run_mpi(ranks=8, iterations=3, seed=1),
    "nasbt": lambda: nasbt.run(ranks=9, iterations=2, seed=1),
    "sssp": lambda: sssp.run(nodes=40, edges=90, parts=6, pes=3, seed=2)[0],
    "mergetree": lambda: mergetree.run(ranks=16, seed=2, imbalance=4.0),
    "pdes": lambda: pdes.run(chares=8, pes=2, seed=1),
    "multigrid": lambda: multigrid.run(fine=(4, 4), pes=4, cycles=2, seed=0),
    "btsweep": lambda: btsweep.run(tiles=(4, 4), pes=4, iterations=2, seed=0),
}


@pytest.mark.parametrize("app", sorted(APP_TRACES))
def test_app_passes_differential_verification(app):
    trace = APP_TRACES[app]()
    report = run_differential(trace)
    assert report.ok, "\n".join(
        f"[{v.invariant}] {v.message}" for v in report.all_violations()[:10]
    )
    assert len(report.results) == len(default_variants())
    # every variant actually produced a structure with stepped events
    for result in report.results:
        assert result.ok
        assert result.structure.max_step >= 0


def test_variant_matrix_shape():
    from repro.core.columnar import HAVE_NUMPY

    base = [
        "reordered/infer",
        "reordered/noinfer",
        "physical/infer",
        "physical/noinfer",
        "reordered/infer/index",
    ]
    backend_twins = (
        ["reordered/infer/columnar", "physical/noinfer/columnar",
         "reordered/infer/columnar_batched",
         "physical/noinfer/columnar_batched"]
        if HAVE_NUMPY else []
    )
    names = [name for name, _ in default_variants()]
    assert names == base + backend_twins
    assert [name for name, _ in default_variants(backends=False)] == base
    assert [name for name, _ in
            default_variants(tie_breaks=False, backends=False)] == base[:4]
    # Base variants pin the reference backend; twins request a
    # columnar-family backend, named by their suffix.
    for name, options in default_variants():
        if name.endswith("/columnar_batched"):
            expected = "columnar_batched"
        elif name.endswith("/columnar"):
            expected = "columnar"
        else:
            expected = "python"
        assert options.backend == expected, name


def test_report_is_machine_readable():
    trace = random_trace(seed=3, chares=5, pes=2, rounds=2, runtime=True)
    report = run_differential(trace)
    assert report.ok
    report.assert_ok()  # must not raise on a clean report
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["cross_violations"] == []
    for row in payload["variants"]:
        assert row["violations"] == []
        assert row["phases"] >= 1
    json.dumps(payload)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# CLI acceptance: `repro verify`
# ---------------------------------------------------------------------------
def _corrupt_trace():
    """A trace whose receive physically precedes its matching send."""
    tr = SyntheticTrace(num_pes=2)
    a = tr.chare("A", pe=0)
    b = tr.chare("B", pe=1)
    tr.block(a, "work", 0, 4.0, 6.0, [("send", "m0", 5.0)])
    tr.block(b, "work", 1, 0.5, 1.5, [("recv", "m0", 1.0)])
    return tr.build()


def test_cli_verify_clean_trace_exits_zero(tmp_path, capsys):
    trace = random_trace(seed=5, chares=5, pes=2, rounds=2, runtime=True)
    path = tmp_path / "clean.jsonl"
    write_trace(trace, str(path))
    assert main(["verify", str(path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_verify_differential_json(tmp_path, capsys):
    trace = random_trace(seed=6, chares=4, pes=2, rounds=2, runtime=True)
    path = tmp_path / "clean.jsonl"
    write_trace(trace, str(path))
    assert main(["verify", str(path), "--differential", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["invariants_violated"] == []
    assert len(payload["differential"]["variants"]) == len(default_variants())


def test_cli_verify_corrupted_trace_reports_invariant(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    write_trace(_corrupt_trace(), str(path))
    assert main(["verify", str(path)]) == 1
    out = capsys.readouterr().out
    assert "recv-after-send" in out  # names the violated invariant
    assert "FAIL" in out


def test_cli_verify_stage_table(tmp_path, capsys):
    trace = random_trace(seed=8, chares=4, pes=2, rounds=2, runtime=True)
    path = tmp_path / "clean.jsonl"
    write_trace(trace, str(path))
    assert main(["verify", str(path), "--stages"]) == 0
    out = capsys.readouterr().out
    for stage in ("initial", "dependency_merge", "local_steps", "global_steps"):
        assert stage in out
