"""The README's code examples must actually run."""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def test_quickstart_snippet_executes(capsys):
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert blocks, "README lost its python quickstart"
    namespace = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    out = capsys.readouterr().out
    assert "phases" in out  # the summary printed


def test_readme_mentions_every_deliverable():
    text = README.read_text()
    for needle in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHM.md",
                   "pytest benchmarks/ --benchmark-only", "repro experiments"):
        assert needle in text
