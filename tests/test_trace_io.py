"""Round-trip and error tests for the trace file format."""

import io

import pytest

from repro.trace import read_trace, write_trace
from repro.trace.reader import TraceFormatError


def _roundtrip(trace):
    buf = io.StringIO()
    write_trace(trace, buf)
    buf.seek(0)
    return read_trace(buf)


def test_roundtrip_preserves_counts(jacobi_trace):
    back = _roundtrip(jacobi_trace)
    assert len(back.chares) == len(jacobi_trace.chares)
    assert len(back.entries) == len(jacobi_trace.entries)
    assert len(back.executions) == len(jacobi_trace.executions)
    assert len(back.events) == len(jacobi_trace.events)
    assert len(back.messages) == len(jacobi_trace.messages)
    assert len(back.idles) == len(jacobi_trace.idles)
    assert back.num_pes == jacobi_trace.num_pes


def test_roundtrip_preserves_records(jacobi_trace):
    back = _roundtrip(jacobi_trace)
    for orig, copy in zip(jacobi_trace.executions, back.executions):
        assert (orig.chare, orig.entry, orig.pe, orig.start, orig.end,
                orig.recv_event) == (copy.chare, copy.entry, copy.pe,
                                     copy.start, copy.end, copy.recv_event)
    for orig, copy in zip(jacobi_trace.events, back.events):
        assert (orig.kind, orig.chare, orig.pe, orig.time, orig.execution) == (
            copy.kind, copy.chare, copy.pe, copy.time, copy.execution)
    for orig, copy in zip(jacobi_trace.chares, back.chares):
        assert (orig.name, orig.array_id, orig.index, orig.is_runtime,
                orig.home_pe) == (copy.name, copy.array_id, copy.index,
                                  copy.is_runtime, copy.home_pe)


def test_roundtrip_preserves_metadata(jacobi_trace):
    back = _roundtrip(jacobi_trace)
    assert back.metadata == jacobi_trace.metadata


def test_roundtrip_preserves_entry_sdag_info(jacobi_trace):
    back = _roundtrip(jacobi_trace)
    for orig, copy in zip(jacobi_trace.entries, back.entries):
        assert (orig.name, orig.is_sdag_serial, orig.sdag_ordinal) == (
            copy.name, copy.is_sdag_serial, copy.sdag_ordinal)


def test_file_roundtrip(tmp_path, jacobi_trace):
    path = tmp_path / "trace.jsonl"
    write_trace(jacobi_trace, path)
    back = read_trace(path)
    assert len(back.events) == len(jacobi_trace.events)


def test_missing_header_rejected():
    with pytest.raises(TraceFormatError, match="header"):
        read_trace(io.StringIO('{"t": "chare", "id": 0, "name": "A"}\n'))


def test_invalid_json_rejected():
    with pytest.raises(TraceFormatError, match="invalid JSON"):
        read_trace(io.StringIO("not json\n"))


def test_unknown_record_rejected():
    data = '{"t": "header", "version": 1, "num_pes": 1, "metadata": {}}\n{"t": "nope"}\n'
    with pytest.raises(TraceFormatError, match="unknown record"):
        read_trace(io.StringIO(data))


def test_non_dense_ids_rejected():
    data = (
        '{"t": "header", "version": 1, "num_pes": 1, "metadata": {}}\n'
        '{"t": "chare", "id": 5, "name": "A", "arr": -1, "idx": [], "rt": false, "pe": 0}\n'
    )
    with pytest.raises(TraceFormatError, match="not dense"):
        read_trace(io.StringIO(data))


def test_blank_lines_tolerated():
    data = '{"t": "header", "version": 1, "num_pes": 2, "metadata": {}}\n\n\n'
    trace = read_trace(io.StringIO(data))
    assert trace.num_pes == 2
    assert trace.events == []


def test_chunked_numeric_parse_emits_no_deprecation_warning(
        tmp_path, jacobi_trace):
    """The vectorized fast path must not rely on deprecated NumPy text
    parsing (``np.fromstring``): a chunked read under
    ``error::DeprecationWarning`` parses cleanly and matches the eager
    reader record-for-record."""
    import warnings

    from repro.trace.reader import read_trace_chunked

    path = tmp_path / "t.jsonl"
    write_trace(jacobi_trace, path)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        chunked = read_trace_chunked(path)
    eager = read_trace(path)
    assert len(chunked.executions) == len(eager.executions)
    assert len(chunked.events) == len(eager.events)
    # Bit-identical numeric columns, not merely equal counts.
    assert all(a.start == b.start and a.end == b.end
               for a, b in zip(chunked.executions, eager.executions))
    assert all(a.time == b.time
               for a, b in zip(chunked.events, eager.events))
