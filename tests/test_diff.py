"""Structure diffing across runs."""

import pytest

from repro.apps import jacobi2d, lulesh
from repro.core import extract_logical_structure
from repro.core.diff import diff_structures
from repro.sim.noise import ChareSlowdown


def _structure(seed, iterations=3, noise=None):
    return extract_logical_structure(
        jacobi2d.run(chares=(4, 4), pes=8, iterations=iterations,
                     seed=seed, noise=noise)
    )


def test_identical_runs_align_perfectly():
    a = _structure(seed=1)
    b = _structure(seed=1)
    diff = diff_structures(a, b)
    assert diff.similarity() == 1.0
    assert not diff.only_left and not diff.only_right
    for d in diff.matched:
        assert d.time_ratio == pytest.approx(1.0)


def test_different_seeds_same_skeleton():
    """Physical noise differs, the phase skeleton does not."""
    diff = diff_structures(_structure(seed=1), _structure(seed=99))
    assert diff.similarity() == 1.0
    for d in diff.matched:
        assert 0.5 < d.time_ratio < 2.0


def test_regression_localized_to_phase():
    base = _structure(seed=1)
    slow = _structure(seed=1, noise=ChareSlowdown([5], factor=5.0))
    diff = diff_structures(base, slow)
    assert diff.similarity() == 1.0
    worst = diff.worst_regressions(1)[0]
    # The stencil compute precedes the contribute event, so its sub-block
    # (and hence the regression) lands in the phase holding the update
    # blocks' contribute events.
    names = dict(worst.signature)
    assert any("update" in n for n in names)
    assert worst.time_ratio > 1.2
    # The pure ghost-exchange phases are much less affected.
    exchange = [d for d in diff.matched
                if any("begin_iteration" in n for n, _ in d.signature)]
    assert exchange
    assert all(d.time_ratio < worst.time_ratio for d in exchange)


def test_extra_iterations_show_as_unmatched():
    short = _structure(seed=1, iterations=2)
    long = _structure(seed=1, iterations=4)
    diff = diff_structures(short, long)
    assert not diff.only_left
    assert len(diff.only_right) == 4  # two extra iterations x (app + rt)
    assert 0 < diff.similarity() < 1


def test_different_apps_low_similarity():
    a = _structure(seed=1)
    b = extract_logical_structure(lulesh.run_charm(chares=8, pes=2,
                                                   iterations=3, seed=1))
    assert diff_structures(a, b).similarity() < 0.3
