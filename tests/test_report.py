"""Performance report rendering and the report/diff CLI commands."""


from repro.cli import main
from repro.report import performance_report
from repro.trace import write_trace


def test_report_sections_present(jacobi_structure):
    text = performance_report(jacobi_structure)
    for section in ("== trace ==", "== logical structure ==",
                    "== critical path ==", "== differential duration",
                    "== idle experienced ==", "== imbalance =="):
        assert section in text
    assert "phase kinds: ararar" in text


def test_report_critical_path_spans_iterations(jacobi_structure):
    text = performance_report(jacobi_structure)
    # The update compute dominates the path across all 3 iterations.
    line = next(l for l in text.splitlines() if l.strip().endswith("update"))
    assert float(line.split()[0]) > 150.0


def test_cli_report(tmp_path, jacobi_trace, capsys):
    path = tmp_path / "t.jsonl"
    write_trace(jacobi_trace, path)
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "== critical path ==" in out


def test_cli_diff(tmp_path, jacobi_trace, capsys):
    path = tmp_path / "t.jsonl"
    write_trace(jacobi_trace, path)
    assert main(["diff", str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert "similarity: 1.00" in out
