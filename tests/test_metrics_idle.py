"""Idle experienced (Section 4, Figure 11)."""

import pytest

from repro.core import extract_logical_structure
from repro.metrics import idle_experienced
from tests.helpers import SyntheticTrace


def _fig11_structure():
    """Three serial blocks after an idle span on one PE:

    * block X runs directly after the idle -> experiences it;
    * block Y's dependency (its send) started before the idle ended ->
      experiences it;
    * block Z's dependency started after the idle ended -> does not, and
      propagation stops there.
    """
    st = SyntheticTrace(num_pes=2)
    main = st.chare("M", pe=0)
    other = st.chare("O", pe=1)
    # Sends from PE 1 at various times.
    st.block(other, "src", 1, 0.0, 30.0, [
        ("send", "to_x", 1.0),
        ("send", "to_y", 8.0),    # before idle end (10.0)
        ("send", "to_z", 25.0),   # after idle end
        ("send", "to_w", 5.0),    # before idle end, but behind Z
    ])
    st.idle(0, 4.0, 10.0)
    st.block(main, "X", 0, 10.0, 12.0, [("recv", "to_x", 10.0)])
    st.block(main, "Y", 0, 13.0, 15.0, [("recv", "to_y", 13.0)])
    st.block(main, "Z", 0, 27.0, 29.0, [("recv", "to_z", 27.0)])
    st.block(main, "W", 0, 30.0, 31.0, [("recv", "to_w", 30.0)])
    trace = st.build()
    return extract_logical_structure(trace)


def test_fig11_first_block_always_charged():
    result = idle_experienced(_fig11_structure())
    structure = _fig11_structure()
    names = {b.id: structure.trace.entry(
        structure.trace.executions[b.executions[0]].entry).name
        for b in structure.blocks}
    charged = {names[b] for b in result.by_block}
    assert "X" in charged


def test_fig11_propagates_to_waiting_dependency():
    structure = _fig11_structure()
    result = idle_experienced(structure)
    names = {b.id: structure.trace.entry(
        structure.trace.executions[b.executions[0]].entry).name
        for b in structure.blocks}
    charged = {names[b] for b in result.by_block}
    assert "Y" in charged      # send at t=8 < idle end 10
    assert "Z" not in charged  # send at t=25 > idle end
    assert "W" not in charged  # propagation stopped at Z


def test_charge_amount_is_idle_duration():
    structure = _fig11_structure()
    result = idle_experienced(structure)
    assert all(v == pytest.approx(6.0) for v in result.by_block.values())
    assert result.total() == pytest.approx(12.0)  # X and Y


def test_by_event_anchors_on_first_event():
    structure = _fig11_structure()
    result = idle_experienced(structure)
    for ev, val in result.by_event.items():
        assert val > 0
        block = structure.blocks[structure.block_of_event[ev]]
        assert block.events[0] == ev


def test_no_idle_no_metric(jacobi_structure):
    result = idle_experienced(jacobi_structure)
    # Jacobi has real idles (reduction waits), so the metric is non-empty
    # and every charged block follows an idle interval on its PE.
    trace = jacobi_structure.trace
    for block_id, value in result.by_block.items():
        block = jacobi_structure.blocks[block_id]
        idles = trace.idles_by_pe[block.pe]
        assert any(iv.end <= block.start + 1e-9 for iv in idles)
        assert value > 0


def test_max_block_helper():
    structure = _fig11_structure()
    result = idle_experienced(structure)
    assert result.by_block[result.max_block()] == max(result.by_block.values())


def _inside_idle_structure():
    """A block that *starts inside* the recorded idle span.

    Tracers close idle intervals at a coarser grain than block starts, so
    the block the idle was waiting on can begin before the interval's
    recorded end.  That block is still "the serial block that runs
    directly after" the idle (Section 4) and must receive the charge —
    cutting the search at ``idle.end`` silently skipped it.
    """
    st = SyntheticTrace(num_pes=2)
    main = st.chare("M", pe=0)
    other = st.chare("O", pe=1)
    st.block(other, "src", 1, 0.0, 20.0, [
        ("send", "to_early", 0.5),
        ("send", "to_a", 1.0),
        ("send", "to_b", 18.0),
    ])
    st.block(main, "early", 0, 1.0, 3.0, [("recv", "to_early", 1.0)])
    st.idle(0, 4.0, 10.0)
    st.block(main, "A", 0, 6.0, 12.0, [("recv", "to_a", 6.0)])   # inside span
    st.block(main, "B", 0, 19.0, 21.0, [("recv", "to_b", 19.0)])
    return extract_logical_structure(st.build())


def test_block_starting_inside_idle_span_is_charged():
    structure = _inside_idle_structure()
    result = idle_experienced(structure)
    names = {b.id: structure.trace.entry(
        structure.trace.executions[b.executions[0]].entry).name
        for b in structure.blocks}
    charged = {names[b] for b in result.by_block}
    assert "A" in charged       # starts at 6.0 inside idle [4, 10]
    assert "early" not in charged  # started before the idle began
    assert "B" not in charged   # dependency sent after the idle ended
    assert result.total() == pytest.approx(6.0)
