#!/usr/bin/env python
"""Reordering for message-passing traces (paper Figures 9/10).

Runs the distributed merge-tree construction on simulated MPI ranks with
data-dependent load imbalance, then compares physical-time stepping with
the Section 3.2.1 reordering: physical order scatters the early levels,
reordering restores the binomial-tree ladder.

Usage::

    python examples/mpi_reordering.py [ranks]
"""

import sys

from repro import extract_logical_structure
from repro.apps import mergetree
from repro.trace import write_trace


def histogram(structure):
    hist = {}
    for step in structure.step_of_event:
        if step >= 0:
            hist[step] = hist.get(step, 0) + 1
    return [hist.get(s, 0) for s in range(structure.max_step + 1)]


def main() -> None:
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    trace = mergetree.run(ranks=ranks, seed=2, imbalance=5.0)
    print(f"{trace}")

    physical = extract_logical_structure(trace, order="physical")
    reordered = extract_logical_structure(trace, order="reordered")

    print(f"\nsteps: physical={physical.max_step + 1} "
          f"reordered={reordered.max_step + 1}")
    print(f"{'step':>5} {'physical':>9} {'reordered':>9}   ideal ladder")
    h_ph, h_re = histogram(physical), histogram(reordered)
    ideal = ranks // 2
    for step in range(min(len(h_ph), len(h_re), 14)):
        marker = ideal if step % 2 == 0 else ideal
        print(f"{step:>5} {h_ph[step]:>9} {h_re[step]:>9}   {marker}")
        if step % 2 == 1:
            ideal //= 2

    # Traces are plain files: persist one for later analysis.
    write_trace(trace, "mergetree_trace.jsonl")
    print("\ntrace written to mergetree_trace.jsonl "
          "(reload with repro.read_trace)")


if __name__ == "__main__":
    main()
