#!/usr/bin/env python
"""Find a straggler with the Section 4 metrics on a Jacobi 2D run.

Injects one slow chare and one slow processor, recovers the logical
structure, and walks through the three paper metrics — idle experienced,
differential duration, and imbalance — showing how each points at a
different aspect of the same problem.

Usage::

    python examples/jacobi2d_analysis.py
"""

from repro import extract_logical_structure
from repro.apps import jacobi2d
from repro.metrics import differential_duration, idle_experienced, imbalance
from repro.sim.noise import ChareSlowdown, ComposedNoise, SlowProcessor
from repro.viz import render_metric

SLOW_CHARE = 6
SLOW_PE = 5


def main() -> None:
    noise = ComposedNoise(
        ChareSlowdown([SLOW_CHARE], factor=4.0),
        SlowProcessor([SLOW_PE], factor=1.6),
    )
    trace = jacobi2d.run(chares=(4, 4), pes=8, iterations=3, seed=7, noise=noise)
    structure = extract_logical_structure(trace)
    print(f"{trace}\n{structure.summary()}\n")

    # Differential duration: which task is slower than its same-step peers?
    diff = differential_duration(structure)
    worst = diff.max_event()
    chare = trace.chares[trace.events[worst].chare]
    print(f"differential duration: worst event on {chare.name} "
          f"(+{diff.by_event[worst]:.0f} time units vs peers)")
    print(render_metric(structure, diff.by_event, max_steps=44), "\n")

    # Idle experienced: who waits because of it?
    idle = idle_experienced(structure)
    print(f"idle experienced: {len(idle.by_block)} blocks wait through "
          f"{idle.total():.0f} units of processor idleness")
    print(render_metric(structure, idle.by_event, max_steps=44), "\n")

    # Imbalance: how uneven is each phase across processors?
    imb = imbalance(structure)
    worst_phase = imb.worst_phase()
    print(f"imbalance: worst phase {worst_phase} spreads "
          f"{imb.max_by_phase[worst_phase]:.0f} units between most- and "
          f"least-loaded PEs")
    loads = sorted(
        ((pe, v) for (p, pe), v in imb.by_phase_pe.items() if p == worst_phase),
        key=lambda kv: -kv[1],
    )
    for pe, v in loads:
        marker = "  <- straggler PE" if pe == SLOW_PE else ""
        print(f"   PE {pe}: +{v:7.1f}{marker}")


if __name__ == "__main__":
    main()
