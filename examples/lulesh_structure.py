#!/usr/bin/env python
"""Compare MPI and Charm++ LULESH logical structures (paper Figure 16).

Runs both implementations, extracts structures, verifies the repeating
phase patterns the paper reports (MPI: three exchanges + allreduce;
Charm++: two mirrored exchanges + allreduce), and shows what happens to
the Charm++ structure when the Section 3.1.4 inference is disabled
(Figure 17).

Usage::

    python examples/lulesh_structure.py
"""

from repro import extract_logical_structure
from repro.apps import lulesh
from repro.core.patterns import detect_period, repeating_unit, signature_sequence
from repro.sim.charm import TracingOptions
from repro.viz import render_logical


def describe(name: str, structure) -> None:
    print(f"\n=== {name} ===")
    print(structure.summary())
    for entry in repeating_unit(structure, min_repeats=2):
        sig = ", ".join(f"{n.split('::')[-1]}x{c}" for n, c in entry["signature"])
        print(f"  repeats x{entry['repeats']}: [{entry['kind']:11s}] {sig}")


def main() -> None:
    mpi_trace = lulesh.run_mpi(ranks=8, iterations=4, seed=3)
    mpi = extract_logical_structure(mpi_trace, order="physical")
    describe("MPI LULESH, 8 processes", mpi)

    charm_trace = lulesh.run_charm(chares=8, pes=2, iterations=4, seed=3)
    charm = extract_logical_structure(charm_trace)
    describe("Charm++ LULESH, 8 chares / 2 PEs", charm)
    print("\nCharm++ logical structure (first 60 steps):")
    print(render_logical(charm, max_steps=60))

    # Figure 17: degrade the trace (no SDAG control info) and drop the
    # inference stage — phases shatter and are forced in sequence.
    degraded = lulesh.run_charm(
        chares=8, pes=2, iterations=4, seed=3,
        tracing=TracingOptions(record_sdag=False),
    )
    with_inf = extract_logical_structure(degraded, infer=True)
    without = extract_logical_structure(degraded, infer=False)
    print("\n=== Figure 17: the value of dependency inference ===")
    print(f"  with inference   : {len(with_inf.phases):4d} phases, "
          f"{with_inf.max_step + 1:4d} steps")
    print(f"  without inference: {len(without.phases):4d} phases, "
          f"{without.max_step + 1:4d} steps")


if __name__ == "__main__":
    main()
