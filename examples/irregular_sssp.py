#!/usr/bin/env python
"""Irregular, data-driven execution: asynchronous SSSP with quiescence.

Stencil codes have phases by construction; graph algorithms do not — work
is wherever the wavefront of relaxations happens to be, and termination is
itself a distributed question (answered here by the runtime's quiescence
detection).  This example shows what the logical structure looks like for
such an app, verifies the computed distances against networkx's Dijkstra,
and uses timeline clustering to summarize the per-partition behaviour.

Usage::

    python examples/irregular_sssp.py
"""

from repro import extract_logical_structure
from repro.apps import sssp
from repro.core.patterns import kind_sequence
from repro.metrics import sub_block_durations
from repro.viz import cluster_timelines, render_clustered


def main() -> None:
    trace, distances = sssp.run(nodes=80, edges=200, parts=8, pes=4, seed=2)
    reference = sssp.reference_distances(80, 200, seed=2)
    assert distances == reference, "distances must match Dijkstra"
    print(f"{trace}")
    print(f"SSSP converged: {len(distances)} nodes, "
          f"max distance {max(distances.values())}")

    structure = extract_logical_structure(trace)
    print(f"\nstructure: {structure.summary()}")
    print(f"phase kinds: {kind_sequence(structure)}")
    print("(one dominant application phase — no iteration structure —")
    print(" with quiescence-detection runtime phases alongside it)")

    relax = [p for p in structure.application_phases()]
    biggest = max(relax, key=len)
    print(f"\nrelaxation phase: {len(biggest.events)} events over "
          f"{biggest.max_local_step + 1} logical steps on "
          f"{len(biggest.chares)} partitions")

    # Summarize per-partition work with clustering over sub-block time.
    durations = sub_block_durations(structure)
    clusters = cluster_timelines(structure, durations, k=3)
    print("\npartition clusters by work profile:")
    print(render_clustered(structure, durations, clusters, max_steps=60))


if __name__ == "__main__":
    main()
