#!/usr/bin/env python
"""Quickstart: simulate an app, recover its logical structure, render it.

Runs the NAS BT-style sweep code on 9 simulated MPI processes (the paper's
Figure 1 workload), extracts the logical structure, and prints both the
logical-time and physical-time views plus a phase summary.

Usage::

    python examples/quickstart.py
"""

from repro import extract_logical_structure
from repro.apps import nasbt
from repro.viz import render_logical, render_physical


def main() -> None:
    # 1. Produce a trace.  Any Trace works the same way — from the bundled
    #    simulators, or loaded from disk with repro.read_trace(path).
    trace = nasbt.run(ranks=9, iterations=2, seed=1)
    print(f"trace: {trace}")

    # 2. Recover the logical structure (phase finding + step assignment,
    #    with the idealized-replay reordering enabled by default).
    structure = extract_logical_structure(trace)
    print(f"structure: {structure.summary()}")

    # 3. Compare the two organizations of the same events.
    print("\n--- logical structure (chares x logical steps) ---")
    print(render_logical(structure))
    print("\n--- physical time (chares x time bins) ---")
    print(render_physical(trace, structure, bins=96))

    # 4. Inspect the phase DAG.
    print("\nphases (linearized):")
    for pid in structure.phase_sequence():
        phase = structure.phase(pid)
        kind = "runtime" if phase.is_runtime else "app"
        print(
            f"  phase {pid:3d} [{kind:7s}] leap={phase.leap:3d} "
            f"steps {phase.offset}..{phase.max_global_step} "
            f"events={len(phase)}"
        )


if __name__ == "__main__":
    main()
