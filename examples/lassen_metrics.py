#!/usr/bin/env python
"""LASSEN wavefront analysis (paper Figures 20-23).

Shows how differential duration exposes the data-dependent wavefront in
logical time, and how over-decomposition (64 chares on 8 PEs) spreads the
work compared to the 8-chare run.

Usage::

    python examples/lassen_metrics.py
"""

from repro import extract_logical_structure
from repro.apps import lassen
from repro.metrics import differential_duration, imbalance
from repro.viz import render_metric


def analyze(chares: int, iterations: int = 6):
    trace = lassen.run_charm(chares=chares, pes=8, iterations=iterations, seed=5)
    structure = extract_logical_structure(trace)
    diff = differential_duration(structure)
    imb = imbalance(structure)
    return trace, structure, diff, imb


def main() -> None:
    results = {n: analyze(n) for n in (8, 64)}

    for n, (trace, structure, diff, imb) in results.items():
        print(f"\n=== Charm++ LASSEN, {n} chares / 8 PEs ===")
        print(structure.summary())
        worst = diff.max_event()
        print(f"max differential duration: {diff.by_event[worst]:.1f} on "
              f"{trace.chares[trace.events[worst].chare].name}")
        print(f"max phase imbalance      : {max(imb.max_by_phase.values()):.1f}")

    _, s8, d8, i8 = results[8]
    _, s64, d64, i64 = results[64]
    print("\n=== Figure 23: over-decomposition spreads the front ===")
    print(f"  max differential duration: 8 chares={d8.max_value():.1f}, "
          f"64 chares={d64.max_value():.1f} "
          f"({d8.max_value() / d64.max_value():.1f}x better; paper ~4x)")
    print(f"  max imbalance            : 8 chares="
          f"{max(i8.max_by_phase.values()):.1f}, 64 chares="
          f"{max(i64.max_by_phase.values()):.1f}")

    print("\n8-chare differential duration in logical time "
          "(same chares hot every iteration):")
    print(render_metric(s8, d8.by_event, max_steps=56))


if __name__ == "__main__":
    main()
