#!/usr/bin/env python
"""Tour of the runtime services and analysis tooling beyond the paper.

1. Run Jacobi with a deliberately bad initial placement and periodic
   measurement-based load balancing (chare migration at AtSync points).
2. Arm quiescence detection and observe it firing after the work drains.
3. Skew the trace's per-PE clocks, then repair it with the timestamp
   synchronization post-pass.
4. Produce the combined performance report and an SVG rendering.

Usage::

    python examples/runtime_services.py
"""

from repro import extract_logical_structure
from repro.apps import jacobi2d
from repro.metrics import imbalance, profile_table, usage_profile
from repro.report import performance_report
from repro.trace.clocksync import apply_clock_skew, count_violations, synchronize_trace
from repro.viz import write_svg


def main() -> None:
    # --- load balancing ---------------------------------------------------
    print("=== load balancing (4 heavy chares start on one PE) ===")
    from repro.sim.noise import ChareSlowdown

    trace = jacobi2d.run(
        chares=(4, 4), pes=4, iterations=6, seed=7,
        noise=ChareSlowdown([0, 1, 2, 3], factor=4.0), lb_period=2,
    )
    structure = extract_logical_structure(trace)
    imb = imbalance(structure)
    app_phases = sorted(
        (p for p in structure.application_phases() if len(p) > 8),
        key=lambda p: p.offset,
    )
    print("per-iteration imbalance (LB every 2 iterations):")
    for i, phase in enumerate(app_phases):
        print(f"  iteration {i}: {imb.max_by_phase.get(phase.id, 0.0):8.1f}")
    for step in trace.metadata.get("lb_steps", []):
        print(f"  LB step at t={step['time']:.0f}: {step['migrations']} migrations")

    # --- quiescence detection ------------------------------------------------
    print("\n=== quiescence detection ===")
    from repro.sim.charm import Chare, CharmRuntime

    class Worker(Chare):
        def start(self, _):
            self.compute(3.0)
            self.send(self.array[((self.index[0] + 1) % len(self.array),)],
                      "bounce", 5)

        def bounce(self, hops):
            self.compute(4.0)
            if hops:
                self.send(self.array[((self.index[0] + 1) % len(self.array),)],
                          "bounce", hops - 1)

        def quiet(self, _):
            print(f"  quiescence detected at t={self.now:.1f}")

    rt = CharmRuntime(num_pes=2)
    arr = rt.create_array("Worker", Worker, shape=(4,))
    rt.start_quiescence_detection(arr[(0,)], "quiet", at=1.0)
    for c in arr:
        rt.seed(c, "start")
    rt.run()
    qd_trace = rt.finish()
    print(f"  counters: created={sum(rt.messages_created)} "
          f"processed={sum(rt.messages_processed)}")

    # --- clock synchronization -----------------------------------------------
    print("\n=== clock skew repair ===")
    skewed = apply_clock_skew(trace, [40.0 * pe for pe in range(trace.num_pes)])
    print(f"  violations after skewing: {count_violations(skewed)}")
    fixed, stats = synchronize_trace(skewed)
    print(f"  after offset estimation + amortization: "
          f"{stats.violations_after} (offsets {stats.pe_offsets})")

    # --- report + profile + svg ---------------------------------------------
    print("\n=== combined report ===")
    print(performance_report(structure, top=3))
    print("\n=== Projections-style profile (top entries) ===")
    print(profile_table(usage_profile(trace), top=5))
    write_svg(structure, "jacobi_lb_structure.svg", max_steps=120)
    print("\nwrote jacobi_lb_structure.svg")


if __name__ == "__main__":
    main()
