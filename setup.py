"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments lacking the ``wheel`` package (legacy ``setup.py develop``
path needs no wheel building).
"""

from setuptools import setup

setup()
