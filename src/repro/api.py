"""The stable public API of the reproduction, in one flat namespace.

Everything a script needs to go from a trace on disk to a verified
:class:`~repro.core.structure.LogicalStructure` imports from here::

    from repro.api import extract, PipelineOptions

    structure = extract("trace.json", order="reordered", backend="auto")
    print(structure.summary())

The facade is intentionally thin: each name is re-exported from the
subsystem that owns it (``repro.core`` for the pipeline, ``repro.trace``
for I/O, ``repro.verify`` for checking, ``repro.batch`` for campaigns).
Internals may move between submodules across versions; the names listed
in ``__all__`` here are the compatibility surface.

:func:`extract` is the preferred entry point — it accepts a path, an
open stream, an in-memory :class:`~repro.trace.model.Trace`, or a
:class:`~repro.trace.source.TraceSource`, an optional
:class:`PipelineOptions`, and keyword overrides applied on top of it.
Path and stream inputs are materialized per ``options.ingest``
("chunked" streams the file into columnar buffers; "eager" builds the
object-backed trace; "auto" picks chunked when NumPy is available) —
bit-identical either way.  The historical ``read_trace`` → ``extract``
idiom keeps working: a Trace input is used as-is.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.batch import (
    BatchExtractor,
    BatchReport,
    BatchResult,
    StructureCache,
    trace_digest,
)
from repro.core.pipeline import (
    PipelineOptions,
    PipelineStats,
    extract_logical_structure,
)
from repro.core.structure import LogicalStructure, Phase
from repro.resilience import (
    DegradationReport,
    RunJournal,
    StageOutcome,
    read_journal,
)
from repro.trace.faults import (
    FAULT_KINDS,
    fault_corpus,
    inject_fault,
    inject_faults,
)
from repro.trace.model import Trace, TraceBuilder
from repro.trace.reader import (
    ReaderStats,
    TraceFormatError,
    read_trace,
    read_trace_chunked,
)
from repro.trace.repair import RepairReport, detect_defects, repair_trace
from repro.trace.source import (
    FileTraceSource,
    MemoryTraceSource,
    StreamTraceSource,
    TraceSource,
    open_trace,
)
from repro.serve import ArtifactStore, JobService
from repro.trace.validate import validate_trace
from repro.trace.writer import write_trace
from repro.verify import (
    StageHook,
    StageRecorder,
    StrictVerifier,
    check_structure,
    run_differential,
    verify_structure,
)

__all__ = [
    "ArtifactStore",
    "BatchExtractor",
    "BatchReport",
    "BatchResult",
    "DegradationReport",
    "FAULT_KINDS",
    "FileTraceSource",
    "JobService",
    "LogicalStructure",
    "Phase",
    "MemoryTraceSource",
    "PipelineOptions",
    "PipelineStats",
    "ReaderStats",
    "RepairReport",
    "RunJournal",
    "StageHook",
    "StageOutcome",
    "StageRecorder",
    "StreamTraceSource",
    "StrictVerifier",
    "StructureCache",
    "Trace",
    "TraceBuilder",
    "TraceFormatError",
    "TraceSource",
    "check_structure",
    "detect_defects",
    "extract",
    "extract_logical_structure",
    "fault_corpus",
    "inject_fault",
    "inject_faults",
    "open_trace",
    "read_journal",
    "read_trace",
    "read_trace_chunked",
    "repair_trace",
    "run_differential",
    "trace_digest",
    "validate_trace",
    "verify_structure",
    "write_trace",
]


def extract(
    source: Union[str, Path, Trace, TraceSource],
    options: Optional[PipelineOptions] = None,
    *,
    stats: Optional[PipelineStats] = None,
    **overrides,
) -> LogicalStructure:
    """Extract logical structure from a trace path, stream, Trace, or
    :class:`TraceSource`.

    ``options`` supplies the baseline (defaults if omitted) and
    ``overrides`` are field overrides applied on top via
    :meth:`PipelineOptions.with_overrides`, so both styles — a shared
    options object, quick one-off keywords, or a mix — go through one
    unambiguous path.  Unknown override names raise :class:`TypeError`.
    Path and stream sources are materialized per ``opts.ingest``
    (chunked columnar by default when NumPy is available); an in-memory
    Trace or a pre-built TraceSource is used as-is.
    """
    opts = (options if options is not None else PipelineOptions())
    if overrides:
        opts = opts.with_overrides(**overrides)
    trace = source if isinstance(source, Trace) else (
        open_trace(source, ingest=opts.ingest).trace())
    return extract_logical_structure(trace, options=opts, stats=stats)
