"""Text renderers and exporters for logical structures.

The paper's figures were drawn with Ravel; here the same information —
chares × logical steps colored by phase or metric, and chares × physical
time — is rendered as character grids (:mod:`repro.viz.ascii`) and as
JSON/CSV for external plotting (:mod:`repro.viz.export`).
"""

from repro.viz.ascii import (
    render_logical,
    render_metric,
    render_physical,
    render_physical_pe,
)
from repro.viz.cluster import TimelineClusters, cluster_timelines, render_clustered
from repro.viz.export import structure_to_json, structure_to_rows, write_csv
from repro.viz.html import render_html, write_html
from repro.viz.svg import render_physical_svg, render_svg, write_svg

__all__ = [
    "render_logical",
    "render_metric",
    "render_physical",
    "render_physical_pe",
    "render_svg",
    "render_physical_svg",
    "write_svg",
    "render_html",
    "write_html",
    "structure_to_json",
    "structure_to_rows",
    "write_csv",
    "TimelineClusters",
    "cluster_timelines",
    "render_clustered",
]
