"""Character-grid renderings of traces and logical structures.

Layout follows the paper's convention: one row per chare, application
chares on top (sorted by array then index), runtime chares grouped at the
bottom; columns are logical steps (or physical-time bins).  Cells show the
phase of the event occupying that (chare, step) — letters/digits cycling
by phase id — or a metric intensity from ``.`` (zero) to ``9`` (maximum).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.core.structure import LogicalStructure
from repro.trace.model import Trace

_PHASE_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _chare_rows(trace: Trace, chares: Optional[Sequence[int]] = None) -> List[int]:
    """Row order: application chares first (by array/index), runtime last."""
    ids = list(chares) if chares is not None else [c.id for c in trace.chares]
    app = [c for c in ids if not trace.chares[c].is_runtime]
    rt = [c for c in ids if trace.chares[c].is_runtime]
    app.sort(key=lambda c: (trace.chares[c].array_id, trace.chares[c].index, c))
    rt.sort(key=lambda c: (trace.chares[c].home_pe, c))
    return app + rt


def _row_label(trace: Trace, chare: int, width: int = 14) -> str:
    name = trace.chares[chare].name
    if len(name) > width:
        name = name[: width - 1] + "~"
    return name.rjust(width)


def render_logical(
    structure: LogicalStructure,
    chares: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
) -> str:
    """Render chares × logical steps, cells keyed by phase id."""
    trace = structure.trace
    rows = _chare_rows(trace, chares)
    last = structure.max_step if max_steps is None else min(structure.max_step, max_steps - 1)
    grid = structure.steps_by_chare()
    lines = []
    for chare in rows:
        cells = []
        row = grid.get(chare, {})
        for step in range(last + 1):
            ev = row.get(step)
            if ev is None:
                cells.append(" ")
            else:
                phase = structure.phase_of_event[ev]
                cells.append(_PHASE_GLYPHS[phase % len(_PHASE_GLYPHS)])
        lines.append(f"{_row_label(trace, chare)} |{''.join(cells)}|")
    return "\n".join(lines)


def render_metric(
    structure: LogicalStructure,
    metric: Mapping[int, float],
    chares: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
) -> str:
    """Render chares × logical steps with metric intensity per event.

    ``.`` marks an event with zero (or missing) metric value; digits 1-9
    scale linearly to the metric's maximum.
    """
    trace = structure.trace
    rows = _chare_rows(trace, chares)
    last = structure.max_step if max_steps is None else min(structure.max_step, max_steps - 1)
    grid = structure.steps_by_chare()
    peak = max((v for v in metric.values() if v > 0), default=0.0)
    lines = []
    for chare in rows:
        cells = []
        row = grid.get(chare, {})
        for step in range(last + 1):
            ev = row.get(step)
            if ev is None:
                cells.append(" ")
                continue
            value = metric.get(ev, 0.0)
            if value <= 0 or peak <= 0:
                cells.append(".")
            else:
                cells.append(str(max(1, min(9, round(9 * value / peak)))))
        lines.append(f"{_row_label(trace, chare)} |{''.join(cells)}|")
    return "\n".join(lines)


def render_physical_pe(
    trace: Trace,
    structure: Optional[LogicalStructure] = None,
    bins: int = 100,
) -> str:
    """Render PEs × physical-time bins (the classic Projections view).

    Cells show the phase glyph of the execution covering the bin (``#``
    without a structure); ``-`` marks recorded idle time.
    """
    end = trace.end_time()
    if end <= 0:
        return ""
    width = end / bins
    lines = []
    for pe in range(trace.num_pes):
        cells = [" "] * bins
        for idle in trace.idles_by_pe.get(pe, ()):
            lo = min(bins - 1, int(idle.start / width))
            hi = min(bins - 1, int(max(idle.start, idle.end - 1e-12) / width))
            for b in range(lo, hi + 1):
                cells[b] = "-"
        for xid in trace.executions_by_pe.get(pe, ()):
            ex = trace.executions[xid]
            glyph = "#"
            if structure is not None:
                phase = -1
                for ev in trace.events_of(xid):
                    phase = structure.phase_of_event[ev]
                    if phase >= 0:
                        break
                glyph = _PHASE_GLYPHS[phase % len(_PHASE_GLYPHS)] if phase >= 0 else "#"
            lo = min(bins - 1, int(ex.start / width))
            hi = min(bins - 1, int(max(ex.start, ex.end - 1e-12) / width))
            for b in range(lo, hi + 1):
                cells[b] = glyph
        lines.append(f"{('PE ' + str(pe)).rjust(14)} |{''.join(cells)}|")
    return "\n".join(lines)


def render_physical(
    trace: Trace,
    structure: Optional[LogicalStructure] = None,
    bins: int = 100,
    chares: Optional[Sequence[int]] = None,
) -> str:
    """Render chares × physical-time bins.

    Cells show the phase (when a structure is given) of the execution
    covering the bin, ``#`` without a structure, and ``-`` for idle gaps.
    """
    rows = _chare_rows(trace, chares)
    end = trace.end_time()
    if end <= 0:
        return ""
    width = end / bins
    lines = []
    for chare in rows:
        cells = [" "] * bins
        for xid in trace.executions_by_chare.get(chare, ()):
            ex = trace.executions[xid]
            glyph = "#"
            if structure is not None:
                phase = -1
                for ev in trace.events_of(xid):
                    phase = structure.phase_of_event[ev]
                    if phase >= 0:
                        break
                glyph = _PHASE_GLYPHS[phase % len(_PHASE_GLYPHS)] if phase >= 0 else "#"
            lo = min(bins - 1, int(ex.start / width))
            hi = min(bins - 1, int(max(ex.start, ex.end - 1e-12) / width))
            for b in range(lo, hi + 1):
                cells[b] = glyph
        lines.append(f"{_row_label(trace, chare)} |{''.join(cells)}|")
    return "\n".join(lines)
