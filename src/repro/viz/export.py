"""Structured exports of logical structures for external tooling."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.core.structure import LogicalStructure


def structure_to_rows(
    structure: LogicalStructure,
    metrics: Optional[Dict[str, Mapping[int, float]]] = None,
) -> List[Dict[str, object]]:
    """One row per stepped event: identity, placement, optional metrics."""
    trace = structure.trace
    metrics = metrics or {}
    rows: List[Dict[str, object]] = []
    for ev, step in enumerate(structure.step_of_event):
        if step < 0:
            continue
        rec = trace.events[ev]
        entry = ""
        if rec.execution >= 0:
            entry = trace.entry(trace.executions[rec.execution].entry).name
        row: Dict[str, object] = {
            "event": ev,
            "kind": rec.kind.name,
            "chare": rec.chare,
            "chare_name": trace.chares[rec.chare].name,
            "is_runtime": trace.chares[rec.chare].is_runtime,
            "pe": rec.pe,
            "time": rec.time,
            "entry": entry,
            "phase": structure.phase_of_event[ev],
            "step": step,
            "local_step": structure.local_step_of_event[ev],
        }
        for name, mapping in metrics.items():
            row[name] = mapping.get(ev, 0.0)
        rows.append(row)
    rows.sort(key=lambda r: (r["step"], r["chare"]))
    return rows


def structure_to_json(
    structure: LogicalStructure,
    metrics: Optional[Dict[str, Mapping[int, float]]] = None,
) -> str:
    """JSON document: summary, phase DAG, and per-event placement rows."""
    doc = {
        "summary": structure.summary(),
        "phases": [
            {
                "id": p.id,
                "leap": p.leap,
                "is_runtime": p.is_runtime,
                "offset": p.offset,
                "max_local_step": p.max_local_step,
                "events": len(p.events),
                "chares": sorted(p.chares),
                "preds": sorted(p.preds),
                "succs": sorted(p.succs),
            }
            for p in structure.phases
        ],
        "events": structure_to_rows(structure, metrics),
    }
    return json.dumps(doc, indent=1)


def write_csv(
    structure: LogicalStructure,
    path: Union[str, Path],
    metrics: Optional[Dict[str, Mapping[int, float]]] = None,
) -> None:
    """Write the per-event rows as CSV."""
    rows = structure_to_rows(structure, metrics)
    if not rows:
        Path(path).write_text("")
        return
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
