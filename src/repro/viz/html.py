"""Self-contained HTML reports (no external assets or scripts).

Bundles the summary, the combined performance report, the Projections-style
profile, and the SVG rendering of the logical structure into one file that
opens in any browser — the shareable artifact of an analysis session.
"""

from __future__ import annotations

from html import escape
from typing import Mapping, Optional

from repro.core.structure import LogicalStructure
from repro.viz.svg import render_physical_svg, render_svg

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       max-width: 1200px; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
pre { background: #f6f6f4; padding: 1em; overflow-x: auto;
      font-size: 12px; line-height: 1.35; }
.summary td { padding: 2px 14px 2px 0; }
.svgwrap { overflow-x: auto; border: 1px solid #ddd; padding: 4px; }
"""


def render_html(
    structure: LogicalStructure,
    title: str = "Logical structure report",
    metric: Optional[Mapping[int, float]] = None,
    metric_name: str = "",
    max_steps: Optional[int] = 200,
    include_report: bool = True,
    include_profile: bool = True,
) -> str:
    """Render a standalone HTML document for a structure."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
    ]

    summary = structure.summary()
    parts.append("<h2>Summary</h2><table class='summary'>")
    for key, value in summary.items():
        parts.append(
            f"<tr><td>{escape(str(key))}</td><td>{escape(str(value))}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Logical structure"
                 + (f" — colored by {escape(metric_name)}" if metric else "")
                 + "</h2>")
    parts.append("<div class='svgwrap'>")
    parts.append(render_svg(structure, metric=metric, max_steps=max_steps))
    parts.append("</div>")

    parts.append("<h2>Physical time (per PE)</h2>")
    parts.append("<div class='svgwrap'>")
    parts.append(render_physical_svg(structure))
    parts.append("</div>")

    if include_report:
        from repro.report import performance_report

        parts.append("<h2>Performance report</h2>")
        parts.append(f"<pre>{escape(performance_report(structure))}</pre>")

    if include_profile:
        from repro.metrics import profile_table, usage_profile

        parts.append("<h2>Usage profile</h2>")
        parts.append(
            f"<pre>{escape(profile_table(usage_profile(structure.trace)))}</pre>"
        )

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html(structure: LogicalStructure, path, **kwargs) -> None:
    """Render and write an HTML report file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(structure, **kwargs))
