"""Clustering chare timelines for scalable views.

The paper's future work asks for "new visualization techniques … that
scale to large numbers of parallel tasks".  Ravel's answer (and ours) is
clustering: chare timelines with similar metric behaviour collapse into
one representative row.  Timelines are embedded as per-logical-step metric
vectors and grouped with a small k-medoids — medoids are real chares, so
the rendered representative is an actual timeline, not an average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.structure import LogicalStructure
from repro.viz.ascii import render_metric


@dataclass
class TimelineClusters:
    """Result of clustering chare timelines."""

    #: chare id -> cluster index
    assignment: Dict[int, int] = field(default_factory=dict)
    #: medoid chare id per cluster
    medoids: List[int] = field(default_factory=list)

    def members(self, cluster: int) -> List[int]:
        """Chares assigned to one cluster."""
        return sorted(c for c, k in self.assignment.items() if k == cluster)

    @property
    def k(self) -> int:
        return len(self.medoids)


def _embed(structure: LogicalStructure, metric: Mapping[int, float],
           chares: Sequence[int]) -> np.ndarray:
    """Per-chare vectors of metric values over global steps."""
    steps = structure.max_step + 1
    matrix = np.zeros((len(chares), steps))
    index = {c: i for i, c in enumerate(chares)}
    trace = structure.trace
    for ev, step in enumerate(structure.step_of_event):
        if step < 0:
            continue
        chare = trace.events[ev].chare
        row = index.get(chare)
        if row is not None:
            matrix[row, step] += metric.get(ev, 0.0)
    return matrix


def cluster_timelines(
    structure: LogicalStructure,
    metric: Mapping[int, float],
    k: int = 4,
    chares: Optional[Sequence[int]] = None,
    rounds: int = 8,
    seed: int = 0,
) -> TimelineClusters:
    """Group chare timelines into ``k`` clusters by metric similarity.

    Defaults to application chares only.  Uses k-medoids with greedy
    farthest-point initialization; deterministic for a given seed.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    trace = structure.trace
    if chares is None:
        chares = trace.application_chares()
    chares = list(chares)
    if not chares:
        return TimelineClusters()
    k = min(k, len(chares))

    matrix = _embed(structure, metric, chares)
    # Pairwise Euclidean distances.
    sq = np.sum(matrix ** 2, axis=1)
    dist = np.sqrt(np.maximum(sq[:, None] + sq[None, :] - 2 * matrix @ matrix.T, 0.0))

    rng = np.random.default_rng(seed)
    medoids = [int(rng.integers(len(chares)))]
    while len(medoids) < k:
        # Farthest point from the current medoid set.
        d = dist[:, medoids].min(axis=1)
        medoids.append(int(np.argmax(d)))

    assign = np.argmin(dist[:, medoids], axis=1)
    for _ in range(rounds):
        changed = False
        for ci in range(k):
            members = np.where(assign == ci)[0]
            if len(members) == 0:
                continue
            within = dist[np.ix_(members, members)].sum(axis=1)
            best = int(members[int(np.argmin(within))])
            if best != medoids[ci]:
                medoids[ci] = best
                changed = True
        new_assign = np.argmin(dist[:, medoids], axis=1)
        if not changed and np.array_equal(new_assign, assign):
            break
        assign = new_assign

    result = TimelineClusters(medoids=[chares[m] for m in medoids])
    for i, chare in enumerate(chares):
        result.assignment[chare] = int(assign[i])
    return result


def render_clustered(
    structure: LogicalStructure,
    metric: Mapping[int, float],
    clusters: TimelineClusters,
    max_steps: Optional[int] = None,
) -> str:
    """Render one representative (medoid) row per cluster, with counts."""
    lines: List[str] = []
    for ci, medoid in enumerate(clusters.medoids):
        count = len(clusters.members(ci))
        header = f"cluster {ci}: {count} chares, medoid " \
                 f"{structure.trace.chares[medoid].name}"
        lines.append(header)
        lines.append(render_metric(structure, metric, chares=[medoid],
                                   max_steps=max_steps))
    return "\n".join(lines)
