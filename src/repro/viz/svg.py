"""SVG renderings of logical structures (Ravel-style, dependency arrows
included).

Produces self-contained SVG documents with one lane per chare (application
chares on top, runtime chares grouped below a separator, as in the paper's
figures), one box per dependency event placed at its logical step, colored
by phase or by metric intensity, and optional message lines between
matched send/receive pairs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.structure import LogicalStructure

#: Categorical phase palette (cycled); chosen for adjacent contrast.
_PALETTE = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
]

_CELL_W = 14
_CELL_H = 12
_PAD_X = 120
_PAD_Y = 24


def _rows(structure: LogicalStructure) -> List[int]:
    trace = structure.trace
    app = [c.id for c in trace.chares if not c.is_runtime]
    rt = [c.id for c in trace.chares if c.is_runtime]
    app.sort(key=lambda c: (trace.chares[c].array_id, trace.chares[c].index, c))
    rt.sort(key=lambda c: (trace.chares[c].home_pe, c))
    return app + rt


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))


def render_svg(
    structure: LogicalStructure,
    metric: Optional[Mapping[int, float]] = None,
    max_steps: Optional[int] = None,
    show_messages: bool = True,
    title: str = "",
) -> str:
    """Render the logical structure as an SVG document string.

    Without ``metric``, events are colored by phase; with it, by a
    white-to-red intensity ramp over the metric values.
    """
    trace = structure.trace
    rows = _rows(structure)
    row_of = {chare: i for i, chare in enumerate(rows)}
    n_app = sum(1 for c in rows if not trace.chares[c].is_runtime)
    last_step = structure.max_step if max_steps is None else min(
        structure.max_step, max_steps - 1)

    width = _PAD_X + (last_step + 1) * _CELL_W + 20
    height = _PAD_Y + len(rows) * _CELL_H + 20
    peak = 0.0
    if metric:
        peak = max((v for v in metric.values() if v > 0), default=0.0)

    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="9">'
    )
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    if title:
        out.append(f'<text x="{_PAD_X}" y="14" font-size="11">{_esc(title)}</text>')

    def cell_xy(chare: int, step: int):
        return (_PAD_X + step * _CELL_W, _PAD_Y + row_of[chare] * _CELL_H)

    # Row labels and the application/runtime separator.
    for chare in rows:
        x, y = 4, _PAD_Y + row_of[chare] * _CELL_H + _CELL_H - 3
        out.append(f'<text x="{x}" y="{y}">{_esc(trace.chares[chare].name[:16])}</text>')
    if 0 < n_app < len(rows):
        y = _PAD_Y + n_app * _CELL_H - 1
        out.append(
            f'<line x1="0" y1="{y}" x2="{width}" y2="{y}" '
            f'stroke="#444" stroke-dasharray="4,3"/>'
        )

    # Message lines go underneath the event boxes.
    placed: Dict[int, tuple] = {}
    for ev, step in enumerate(structure.step_of_event):
        if 0 <= step <= last_step:
            placed[ev] = cell_xy(trace.events[ev].chare, step)
    if show_messages:
        for msg in trace.messages:
            if not msg.is_complete():
                continue
            a = placed.get(msg.send_event)
            b = placed.get(msg.recv_event)
            if a is None or b is None:
                continue
            x1 = a[0] + _CELL_W * 0.75
            y1 = a[1] + _CELL_H * 0.5
            x2 = b[0] + _CELL_W * 0.25
            y2 = b[1] + _CELL_H * 0.5
            out.append(
                f'<line x1="{x1:.0f}" y1="{y1:.0f}" x2="{x2:.0f}" '
                f'y2="{y2:.0f}" stroke="#999" stroke-width="0.5"/>'
            )

    # Event boxes.
    for ev, (x, y) in placed.items():
        if metric is not None:
            value = metric.get(ev, 0.0)
            if peak > 0 and value > 0:
                frac = min(1.0, value / peak)
                r = 255
                g = int(235 * (1 - frac))
                b = int(220 * (1 - frac))
                fill = f"rgb({r},{g},{b})"
            else:
                fill = "#eeeeee"
        else:
            phase = structure.phase_of_event[ev]
            fill = _PALETTE[phase % len(_PALETTE)]
        out.append(
            f'<rect x="{x + 1}" y="{y + 1}" width="{_CELL_W - 2}" '
            f'height="{_CELL_H - 2}" fill="{fill}" stroke="#333" '
            f'stroke-width="0.4"><title>event {ev} step '
            f'{structure.step_of_event[ev]} phase '
            f'{structure.phase_of_event[ev]}</title></rect>'
        )

    out.append("</svg>")
    return "\n".join(out)


def render_physical_svg(
    structure: LogicalStructure,
    width_px: int = 900,
    title: str = "",
) -> str:
    """Per-PE Gantt chart in physical time, colored by phase.

    The companion to :func:`render_svg`: the same events on the paper's
    *bottom* axis (Figure 1), showing the interleaving and idle gaps the
    logical view abstracts away.
    """
    trace = structure.trace
    end = trace.end_time()
    if end <= 0:
        return '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'
    scale = (width_px - _PAD_X - 20) / end
    height = _PAD_Y + trace.num_pes * _CELL_H + 20
    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height}" font-family="monospace" font-size="9">'
    )
    out.append(f'<rect width="{width_px}" height="{height}" fill="white"/>')
    if title:
        out.append(f'<text x="{_PAD_X}" y="14" font-size="11">{_esc(title)}</text>')
    for pe in range(trace.num_pes):
        y = _PAD_Y + pe * _CELL_H
        out.append(f'<text x="4" y="{y + _CELL_H - 3}">PE {pe}</text>')
        for idle in trace.idles_by_pe.get(pe, ()):
            x = _PAD_X + idle.start * scale
            w = max(0.5, idle.duration() * scale)
            out.append(
                f'<rect x="{x:.1f}" y="{y + _CELL_H * 0.35:.1f}" '
                f'width="{w:.1f}" height="{_CELL_H * 0.3:.1f}" fill="#222"/>'
            )
        for xid in trace.executions_by_pe.get(pe, ()):
            ex = trace.executions[xid]
            phase = -1
            for ev in trace.events_of(xid):
                phase = structure.phase_of_event[ev]
                if phase >= 0:
                    break
            fill = _PALETTE[phase % len(_PALETTE)] if phase >= 0 else "#cccccc"
            x = _PAD_X + ex.start * scale
            w = max(0.6, ex.duration() * scale)
            name = _esc(trace.entry(ex.entry).name)
            out.append(
                f'<rect x="{x:.1f}" y="{y + 1}" width="{w:.1f}" '
                f'height="{_CELL_H - 2}" fill="{fill}" stroke="#333" '
                f'stroke-width="0.3"><title>{name} '
                f'[{ex.start:.1f}, {ex.end:.1f}] phase {phase}</title></rect>'
            )
    out.append("</svg>")
    return "\n".join(out)


def write_svg(structure: LogicalStructure, path, **kwargs) -> None:
    """Render and write an SVG file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_svg(structure, **kwargs))
