"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro simulate jacobi2d --chares 8x8 --pes 8 --iterations 2 -o t.jsonl
    repro analyze t.jsonl --render logical --metric diffdur
    repro analyze t.jsonl --svg structure.svg --csv events.csv
    repro validate t.jsonl
    repro verify t.jsonl --differential --json
    repro sync skewed.jsonl -o fixed.jsonl --min-latency 0.5
    repro serve --data-dir /var/lib/repro --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import PipelineOptions, PipelineStats, extract_logical_structure
from repro.core.patterns import kind_sequence, repeating_unit
from repro.trace import read_trace, validate_trace, write_trace
from repro.trace.clocksync import count_violations, synchronize_trace
from repro.trace.validate import TraceValidationError


def _parse_chares(text: str):
    if "x" in text:
        parts = tuple(int(p) for p in text.split("x"))
        return parts
    return int(text)


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float with a clear error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if value != value or value <= 0:  # NaN or non-positive
        raise argparse.ArgumentTypeError(
            f"expected a positive number of seconds, got {text!r}")
    return value


def _non_negative_float(text: str) -> float:
    """argparse type: a float >= 0 with a clear error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if value != value or value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer >= 0 with a clear error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}")
    return value


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 with a clear error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}")
    return value


def add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    """Install the shared extraction-pipeline flags on ``parser``.

    Every subcommand that runs the pipeline (analyze, report, diff,
    verify, batch) takes the same knobs; this is the one place they are
    declared so help text and defaults cannot drift apart.
    """
    parser.add_argument("--order", choices=["reordered", "physical"],
                        default="reordered")
    parser.add_argument("--mode", choices=["auto", "charm", "mpi"],
                        default="auto")
    parser.add_argument("--infer", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="Section 3.1.4 inference (--no-infer for "
                             "Figure 17 mode)")
    parser.add_argument("--tie-break", choices=["chare_id", "index"],
                        default="chare_id")
    parser.add_argument("--backend",
                        choices=["auto", "python", "columnar",
                                 "columnar_batched"],
                        default="auto",
                        help="pipeline kernels: columnar_batched (NumPy + "
                             "batched union-find merges), columnar (NumPy, "
                             "per-candidate merges), or pure python; auto "
                             "picks columnar_batched when NumPy is available")
    parser.add_argument("--shard-workers", type=_positive_int, default=None,
                        metavar="N",
                        help="worker processes for the PE-sharded serial-"
                             "block scan (columnar_batched backend only); "
                             "result-neutral, default in-process")
    parser.add_argument("--repair", choices=["off", "warn", "fix"],
                        default="off",
                        help="pre-extraction trace repair: warn reports "
                             "defects, fix repairs what is safely repairable")
    parser.add_argument("--on-error", choices=["raise", "fallback", "degrade"],
                        default="raise",
                        help="stage-failure policy: raise (fail fast), "
                             "fallback (try each stage's safe paths), degrade "
                             "(also accept a partial result)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write atomic between-stage checkpoints to DIR; "
                             "an interrupted run with the same trace+options "
                             "resumes after its last completed stage")
    parser.add_argument("--stage-deadline", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per stage; a breach "
                             "soft-aborts the stage (handled per --on-error)")
    parser.add_argument("--max-rss-mb", type=_positive_float, default=None,
                        metavar="MIB",
                        help="process RSS ceiling while a stage runs; a "
                             "breach soft-aborts the stage")
    parser.add_argument("--hook-errors", choices=["warn", "raise"],
                        default="warn",
                        help="user stage-hook exceptions: warn and continue "
                             "(default) or abort extraction")
    parser.add_argument("--ingest", choices=["auto", "eager", "chunked"],
                        default="auto",
                        help="trace ingestion: chunked streams the file into "
                             "columnar buffers (bounded memory), eager builds "
                             "per-record objects; auto picks chunked when "
                             "NumPy is available (bit-identical results)")


def pipeline_options_from_args(args: argparse.Namespace) -> PipelineOptions:
    """Build :class:`PipelineOptions` from :func:`add_pipeline_options` args."""
    return PipelineOptions(
        mode=args.mode, order=args.order, infer=args.infer,
        tie_break=args.tie_break, backend=args.backend,
        shard_workers=args.shard_workers,
        repair=args.repair,
        on_error=args.on_error, checkpoint_dir=args.checkpoint_dir,
        stage_deadline=args.stage_deadline, max_rss_mb=args.max_rss_mb,
        hook_errors=args.hook_errors, ingest=args.ingest,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro import apps

    name = args.app
    kwargs = {"seed": args.seed}
    if name == "jacobi2d":
        shape = _parse_chares(args.chares or "8x8")
        trace = apps.jacobi2d.run(chares=shape, pes=args.pes,
                                  iterations=args.iterations, **kwargs)
    elif name == "lulesh":
        if args.model == "mpi":
            trace = apps.lulesh.run_mpi(ranks=args.ranks,
                                        iterations=args.iterations, **kwargs)
        else:
            trace = apps.lulesh.run_charm(chares=int(args.chares or 8),
                                          pes=args.pes,
                                          iterations=args.iterations, **kwargs)
    elif name == "lassen":
        if args.model == "mpi":
            trace = apps.lassen.run_mpi(ranks=args.ranks,
                                        iterations=args.iterations, **kwargs)
        else:
            trace = apps.lassen.run_charm(chares=int(args.chares or 8),
                                          pes=args.pes,
                                          iterations=args.iterations, **kwargs)
    elif name == "pdes":
        trace = apps.pdes.run(chares=int(args.chares or 16), pes=args.pes, **kwargs)
    elif name == "mergetree":
        trace = apps.mergetree.run(ranks=args.ranks, **kwargs)
    elif name == "nasbt":
        trace = apps.nasbt.run(ranks=args.ranks, iterations=args.iterations,
                               **kwargs)
    else:
        print(f"unknown app {name!r}", file=sys.stderr)
        return 2
    write_trace(trace, args.output)
    print(f"wrote {args.output}: {trace}")
    return 0


def _load(path: str, ingest: str = "auto"):
    from repro.trace import open_trace

    return open_trace(path, ingest=ingest).trace()


def cmd_analyze(args: argparse.Namespace) -> int:
    trace = _load(args.trace, args.ingest)
    options = pipeline_options_from_args(args)
    stats = PipelineStats()
    structure = extract_logical_structure(trace, options=options, stats=stats)

    metric_map = None
    if args.metric:
        from repro import metrics as m

        if args.metric == "diffdur":
            metric_map = m.differential_duration(structure).by_event
        elif args.metric == "idle":
            metric_map = m.idle_experienced(structure).by_event
        elif args.metric == "imbalance":
            metric_map = m.imbalance(structure).by_event
        elif args.metric == "lateness":
            metric_map = m.lateness(structure)
        else:
            print(f"unknown metric {args.metric!r}", file=sys.stderr)
            return 2

    if args.json:
        from repro.report import analysis_document

        payload = {} if metric_map is None else {args.metric: metric_map}
        doc = analysis_document(structure, stats, payload or None)
        print(json.dumps(doc, indent=1))
        return 0

    print(structure.summary())
    if stats.repair is not None:
        from repro.trace.repair import RepairReport

        print(f"repair: {RepairReport.from_dict(stats.repair).summary()}")
    if structure.degradation is not None and structure.degradation.degraded:
        print(f"degraded: {structure.degradation.summary()}")
    print(f"phase kinds: {kind_sequence(structure)}")
    unit = repeating_unit(structure, min_repeats=2)
    if unit:
        print(f"repeating unit ({unit[0]['repeats']}x):")
        for entry in unit:
            sig = ", ".join(f"{n.split('::')[-1]}x{c}"
                            for n, c in entry["signature"])
            print(f"  [{entry['kind']:11s}] {sig}")

    if args.render or metric_map is not None:
        from repro.viz import render_logical, render_metric, render_physical

        if metric_map is not None:
            print(render_metric(structure, metric_map, max_steps=args.max_steps))
        elif args.render == "physical":
            print(render_physical(trace, structure))
        else:
            print(render_logical(structure, max_steps=args.max_steps))

    if args.svg:
        from repro.viz import write_svg

        write_svg(structure, args.svg, metric=metric_map,
                  max_steps=args.max_steps)
        print(f"wrote {args.svg}")
    if args.html:
        from repro.viz import write_html

        write_html(structure, args.html, metric=metric_map,
                   metric_name=args.metric or "",
                   title=f"Logical structure: {args.trace}")
        print(f"wrote {args.html}")
    if args.csv:
        from repro.viz import write_csv

        payload = {} if metric_map is None else {args.metric: metric_map}
        write_csv(structure, args.csv, payload or None)
        print(f"wrote {args.csv}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.metrics import profile_table, usage_profile

    trace = _load(args.trace)
    print(profile_table(usage_profile(trace), top=args.top))
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro import metrics as m
    from repro.viz import cluster_timelines, render_clustered

    trace = _load(args.trace)
    structure = extract_logical_structure(trace)
    if args.metric == "idle":
        metric = m.idle_experienced(structure).by_event
    elif args.metric == "imbalance":
        metric = m.imbalance(structure).by_event
    else:
        metric = m.differential_duration(structure).by_event
    clusters = cluster_timelines(structure, metric, k=args.k)
    print(render_clustered(structure, metric, clusters,
                           max_steps=args.max_steps))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import performance_report

    trace = _load(args.trace, args.ingest)
    structure = extract_logical_structure(
        trace, options=pipeline_options_from_args(args)
    )
    print(performance_report(structure, top=args.top))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.diff import diff_structures

    options = pipeline_options_from_args(args)
    left = extract_logical_structure(_load(args.left, args.ingest),
                                     options=options)
    right = extract_logical_structure(_load(args.right, args.ingest),
                                      options=options)
    diff = diff_structures(left, right)
    print(f"similarity: {diff.similarity():.2f} "
          f"({len(diff.matched)} matched, {len(diff.only_left)} only-left, "
          f"{len(diff.only_right)} only-right)")
    for d in diff.worst_regressions(args.top):
        sig = ", ".join(n.split("::")[-1] for n, _ in d.signature)
        print(f"  x{d.time_ratio:5.2f}  {d.time_left:9.1f} -> "
              f"{d.time_right:9.1f}  [{sig}]")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments, get, run_experiment

    if args.list:
        for exp in all_experiments():
            print(f"{exp.id:10s} {exp.paper:20s} {exp.title}")
        return 0
    targets = ([get(i) for i in args.ids] if args.ids
               else all_experiments())
    failed = 0
    for exp in targets:
        report = run_experiment(exp)
        print(report.summary())
        if not report.passed:
            failed += 1
    print(f"\n{len(targets) - failed}/{len(targets)} experiments passed")
    return 1 if failed else 0


def cmd_validate(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    try:
        validate_trace(trace, check_pe_overlap=not args.allow_overlap)
    except TraceValidationError as exc:
        print(exc)
        return 1
    violations = count_violations(trace)
    print(f"OK: {trace} ({violations} clock violations)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.report import verification_report
    from repro.trace.validate import collect_trace_problems
    from repro.verify import StageRecorder, check_structure, run_differential

    trace = _load(args.trace, args.ingest)
    violations = collect_trace_problems(trace)

    structure = None
    recorder = None
    differential = None
    if not violations:
        if args.differential:
            differential = run_differential(trace)
            violations = differential.all_violations()
        else:
            recorder = StageRecorder()
            options = pipeline_options_from_args(args).with_overrides(
                hooks=recorder
            )
            structure = extract_logical_structure(trace, options=options)
            violations = check_structure(structure)
    else:
        print("trace-level validation failed; skipping structure extraction",
              file=sys.stderr)

    payload = verification_report(
        trace, violations, structure=structure,
        stages=recorder.records if recorder else None,
        differential=differential,
    )
    if args.json:
        print(json.dumps(payload, indent=1))
    else:
        if recorder is not None and args.stages:
            print(f"{'stage':18s} {'ms':>8s} {'parts':>7s} {'merges':>7s}")
            for r in recorder.records:
                parts = "" if r.partitions < 0 else str(r.partitions)
                merges = "" if r.merges < 0 else str(r.merges)
                print(f"{r.stage:18s} {r.seconds * 1e3:8.2f} {parts:>7s} "
                      f"{merges:>7s}")
        if differential is not None:
            for result in differential.results:
                mark = "ok" if result.ok else "FAIL"
                print(f"variant {result.name:24s} {mark}  "
                      f"phases={len(result.structure.phases)} "
                      f"steps={result.structure.max_step + 1}")
        if violations:
            names = ", ".join(payload["invariants_violated"])
            print(f"FAIL: {len(violations)} violation(s) of: {names}")
            for v in violations[:20]:
                print(f"  [{v.invariant}] {v.message}")
            if len(violations) > 20:
                print(f"  ... and {len(violations) - 20} more")
        else:
            checked = ("all variants" if differential is not None
                       else "all invariants")
            print(f"OK: {checked} hold on {trace}")
    return 1 if violations else 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchExtractor, StructureCache

    if args.resume is not None and args.journal is not None:
        print("batch: --resume already names the journal; "
              "use one of --journal/--resume", file=sys.stderr)
        return 2
    journal = args.resume if args.resume is not None else args.journal
    cache = (StructureCache(args.cache_dir)
             if args.cache_dir is not None else None)
    try:
        extractor = BatchExtractor(
            options=pipeline_options_from_args(args),
            jobs=args.jobs, cache=cache,
            timeout=args.timeout, retries=args.retries, backoff=args.backoff,
            journal=journal, resume=args.resume is not None,
        )
        report = extractor.run(args.traces)
    except ValueError as exc:  # e.g. journal written under other options
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        for r in report.results:
            retried = f" ({r.attempts} attempts)" if r.attempts > 1 else ""
            if r.ok:
                if r.resumed:
                    tag = "resumed"
                elif r.cached:
                    tag = "cached"
                else:
                    tag = f"{r.seconds * 1e3:7.1f}ms"
                line = (f"ok   {r.source:40s} {tag:>10s} "
                        f"phases={r.summary.get('phases', '?')} "
                        f"steps={int(r.summary.get('max_step', -1)) + 1}"
                        f"{retried}")
                repair = r.summary.get("repair")
                if repair and not repair.get("clean", True):
                    line += f" repair={_repair_tag(repair)}"
                degradation = r.summary.get("degradation")
                if degradation and degradation.get("degraded"):
                    stages = [s for s in degradation.get("stages", [])
                              if s.get("status") in ("fallback", "skipped")]
                    line += f" degraded={len(stages)} stage(s)"
                print(line)
            else:
                print(f"FAIL {r.source:40s} {r.error}{retried}")
        done = sum(1 for r in report.results if r.ok)
        timeouts = len(report.timeouts)
        timed = f", {timeouts} timed out" if timeouts else ""
        resumed = len(report.resumed)
        resumed_tag = f", {resumed} resumed" if resumed else ""
        print(f"{done}/{len(report.results)} traces extracted "
              f"({report.cache_hits} cached{resumed_tag}{timed}) in "
              f"{report.total_seconds:.2f}s with {report.jobs} job(s)")
    return 0 if report.ok else 1


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.batch import StructureCache

    cache = StructureCache(args.dir)
    if args.prune:
        if (args.max_entries is None and args.max_bytes is None
                and args.shard_bytes is None):
            print("cache: --prune needs --max-entries, --max-bytes, "
                  "and/or --shard-bytes", file=sys.stderr)
            return 2
        removed = cache.prune(args.max_entries, args.max_bytes,
                              args.shard_bytes)
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {args.dir}")
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=1))
    else:
        line = (f"cache {stats['directory']}: {stats['disk_entries']} "
                f"entr{'y' if stats['disk_entries'] == 1 else 'ies'}, "
                f"{stats['disk_bytes']} bytes")
        if stats["shards"]:
            line += f" across {len(stats['shards'])} shard(s)"
        print(line)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import JobService, run_server

    chaos = None
    if args.chaos:
        from repro.chaos import FaultPlan

        try:
            chaos = FaultPlan(specs=tuple(args.chaos), seed=args.chaos_seed)
        except ValueError as exc:
            print(f"serve: bad --chaos spec: {exc}", file=sys.stderr)
            return 2
        print(f"serve: CHAOS MODE — {len(args.chaos)} fault spec(s), "
              f"seed {args.chaos_seed} (testing only)", file=sys.stderr)
    service = JobService(
        args.data_dir,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        shard_prefix=args.shard_prefix,
        max_shard_bytes=args.shard_bytes,
        max_queue=args.max_queue,
        max_queue_age=args.max_queue_age,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        chaos=chaos,
    )
    run_server(service, host=args.host, port=args.port,
               drain_timeout=args.drain_timeout,
               read_timeout=args.read_timeout,
               handler_timeout=args.handler_timeout)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve.client import ClientError, ServeClient

    client = ServeClient(args.url, timeout=args.timeout,
                         retries=args.retries, backoff=args.backoff)
    try:
        if args.stats:
            stats = client.stats()
            if args.json:
                print(json.dumps(stats, indent=1))
            else:
                jobs = stats.get("jobs", {})
                job_line = ", ".join(f"{k}: {v}" for k, v in jobs.items())
                rejected = stats.get("rejected", {})
                breaker = stats.get("breaker", {})
                health = stats.get("health", {})
                print(f"serve {args.url}: {job_line}")
                print(f" queue depth {stats.get('queue_depth', 0)}"
                      f"/{stats.get('max_queue') or 'unbounded'}, "
                      f"workers {stats.get('workers', 0)}, "
                      f"recovered {stats.get('recovered', 0)}")
                print(f" rejected: queue_full "
                      f"{rejected.get('queue_full', 0)}, breaker "
                      f"{rejected.get('breaker', 0)}; shed: expired "
                      f"{stats.get('shed', {}).get('expired', 0)}")
                print(f" breaker {breaker.get('state', '?')} "
                      f"(opened {breaker.get('opened', 0)}x, threshold "
                      f"{breaker.get('threshold', '?')})")
                print(f" ledger {stats.get('ledger', {}).get('mode', '?')}, "
                      f"health {health.get('status', '?')}"
                      + ("".join(f"\n  degraded[{k}]: {v}" for k, v in
                                 (health.get('reasons') or {}).items())))
            return 0
        if args.trace is None:
            print("submit: a trace file is required (or use --stats)",
                  file=sys.stderr)
            return 2
        options = {}
        if args.options:
            try:
                options = json.loads(args.options)
            except ValueError as exc:
                print(f"submit: --options is not valid JSON: {exc}",
                      file=sys.stderr)
                return 2
        data = Path(args.trace).read_bytes()
        ref = client.upload(data)["trace"]
        record = client.submit(ref, options)
        if args.no_wait:
            print(json.dumps(record, indent=1))
            return 0
        if record["status"] not in ("done", "failed", "expired"):
            record = client.wait(record["job"], deadline=args.deadline,
                                 poll=args.poll)
        if record["status"] != "done":
            print(f"submit: job {record['job']} {record['status']}: "
                  f"{record.get('error', '')}", file=sys.stderr)
            return 1
        sys.stdout.write(client.result(record["job"]))
        return 0
    except ClientError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1


def _repair_tag(repair: dict) -> str:
    """Compact per-row repair annotation for batch table output."""
    detected = sum(repair.get("detected", {}).values())
    residual = sum(repair.get("residual", {}).values())
    if repair.get("mode") == "warn":
        return f"{detected} defect(s) detected"
    return f"{detected} detected/{residual} residual"


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.trace.faults import FAULT_KINDS, fault_corpus, inject_faults
    from repro.trace.repair import detect_defects

    trace = _load(args.trace)
    report: dict = {"source": args.trace, "seed": args.seed,
                    "severity": args.severity, "variants": {}}

    if args.corpus is not None:
        from pathlib import Path

        out_dir = Path(args.corpus)
        out_dir.mkdir(parents=True, exist_ok=True)
        stem = Path(args.trace).stem
        kinds = args.kind or list(FAULT_KINDS)
        for kind, bad in fault_corpus(trace, kinds, seed=args.seed,
                                      severity=args.severity).items():
            path = out_dir / f"{stem}.{kind}.jsonl"
            write_trace(bad, path)
            report["variants"][kind] = {
                "output": str(path),
                "defects": detect_defects(bad),
            }
            if not args.json:
                print(f"wrote {path}: {bad}")
    else:
        if not args.kind:
            print("faults: provide --kind (repeatable) or --corpus DIR",
                  file=sys.stderr)
            return 2
        bad = inject_faults(trace, args.kind, seed=args.seed,
                            severity=args.severity)
        write_trace(bad, args.output)
        report["variants"]["+".join(args.kind)] = {
            "output": args.output,
            "defects": detect_defects(bad),
        }
        if not args.json:
            print(f"wrote {args.output}: {bad}")

    if args.json:
        print(json.dumps(report, indent=1))
    elif not args.corpus:
        defects = next(iter(report["variants"].values()))["defects"]
        det = ", ".join(f"{k}={v}" for k, v in sorted(defects.items()))
        print(f"defects: [{det or 'none detected'}]")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import all_rules, run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.severity:7s}  {rule.title}")
        return 0
    paths = args.paths
    if not paths:
        # Default target: the installed repro package itself.
        paths = [str(Path(__file__).resolve().parent)]
    try:
        report = run_lint(paths, rule_ids=args.rules, jobs=args.jobs,
                          cache_path=args.cache)
    except ValueError as exc:  # unknown rule id
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.human())
    return report.exit_code(args.fail_on)


def cmd_sync(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    fixed, stats = synchronize_trace(trace, min_latency=args.min_latency)
    write_trace(fixed, args.output)
    print(json.dumps({
        "violations_before": stats.violations_before,
        "violations_after_offsets": stats.violations_after_offsets,
        "violations_after": stats.violations_after,
        "amortized_blocks": stats.amortized_blocks,
        "pe_offsets": [round(o, 3) for o in stats.pe_offsets],
    }, indent=1))
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recover logical structure from Charm++/MPI event traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a proxy app, write its trace")
    sim.add_argument("app", choices=["jacobi2d", "lulesh", "lassen", "pdes",
                                     "mergetree", "nasbt"])
    sim.add_argument("-o", "--output", default="trace.jsonl")
    sim.add_argument("--chares", default=None,
                     help="chare count, or WxH for jacobi2d")
    sim.add_argument("--ranks", type=int, default=8)
    sim.add_argument("--pes", type=int, default=8)
    sim.add_argument("--iterations", type=int, default=2)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--model", choices=["charm", "mpi"], default="charm")
    sim.set_defaults(func=cmd_simulate)

    ana = sub.add_parser("analyze", help="extract and inspect logical structure")
    ana.add_argument("trace")
    add_pipeline_options(ana)
    ana.add_argument("--render", choices=["logical", "physical"], default=None)
    ana.add_argument("--metric",
                     choices=["diffdur", "idle", "imbalance", "lateness"],
                     default=None)
    ana.add_argument("--max-steps", type=int, default=120)
    ana.add_argument("--svg", default=None, help="write an SVG rendering")
    ana.add_argument("--html", default=None,
                     help="write a standalone HTML report")
    ana.add_argument("--csv", default=None, help="write per-event rows")
    ana.add_argument("--json", action="store_true",
                     help="dump the full structure as JSON")
    ana.set_defaults(func=cmd_analyze)

    pro = sub.add_parser("profile", help="Projections-style usage profile")
    pro.add_argument("trace")
    pro.add_argument("--top", type=int, default=10)
    pro.set_defaults(func=cmd_profile)

    clu = sub.add_parser("cluster", help="cluster chare timelines by metric")
    clu.add_argument("trace")
    clu.add_argument("--metric", choices=["diffdur", "idle", "imbalance"],
                     default="diffdur")
    clu.add_argument("-k", type=int, default=4)
    clu.add_argument("--max-steps", type=int, default=100)
    clu.set_defaults(func=cmd_cluster)

    rep = sub.add_parser("report", help="combined performance report")
    rep.add_argument("trace")
    add_pipeline_options(rep)
    rep.add_argument("--top", type=int, default=5)
    rep.set_defaults(func=cmd_report)

    dif = sub.add_parser("diff", help="compare two traces' structures")
    dif.add_argument("left")
    dif.add_argument("right")
    add_pipeline_options(dif)
    dif.add_argument("--top", type=int, default=5)
    dif.set_defaults(func=cmd_diff)

    bat = sub.add_parser(
        "batch",
        help="extract many traces in parallel with a structure cache",
    )
    bat.add_argument("traces", nargs="+", help="trace files to extract")
    add_pipeline_options(bat)
    bat.add_argument("--jobs", type=int, default=1,
                     help="worker processes (1 = serial)")
    bat.add_argument("--cache-dir", default=None,
                     help="persist per-trace summaries keyed by content "
                          "digest + options; clean reruns are skipped")
    bat.add_argument("--json", action="store_true",
                     help="emit the machine-readable batch report")
    bat.add_argument("--timeout", type=_positive_float, default=None,
                     help="per-trace wall-clock seconds (a positive number); "
                          "a worker exceeding it is killed (forces process "
                          "workers)")
    bat.add_argument("--retries", type=_non_negative_int, default=0,
                     help="re-run a timed-out/crashed trace up to N times "
                          "(a non-negative integer)")
    bat.add_argument("--backoff", type=_non_negative_float, default=0.5,
                     help="base seconds between retries (doubles per attempt)")
    bat.add_argument("--journal", default=None, metavar="FILE",
                     help="append one durable JSON line per finished trace "
                          "to FILE (crash-safe run journal)")
    bat.add_argument("--resume", default=None, metavar="FILE",
                     help="resume from journal FILE: traces it records as "
                          "done are skipped, the rest run (and keep "
                          "appending to it)")
    bat.set_defaults(func=cmd_batch)

    cch = sub.add_parser(
        "cache",
        help="inspect or prune a batch structure-cache directory",
    )
    cch.add_argument("dir", help="cache directory (as given to --cache-dir)")
    cch.add_argument("--stats", action="store_true",
                     help="print occupancy (the default action)")
    cch.add_argument("--prune", action="store_true",
                     help="evict least-recently-used entries beyond the caps")
    cch.add_argument("--max-entries", type=_positive_int, default=None,
                     help="entry-count cap for --prune")
    cch.add_argument("--max-bytes", type=_positive_int, default=None,
                     help="total-size cap (bytes) for --prune")
    cch.add_argument("--shard-bytes", type=_positive_int, default=None,
                     help="per-shard byte quota for --prune (sharded "
                          "artifact stores)")
    cch.add_argument("--json", action="store_true",
                     help="emit machine-readable stats")
    cch.set_defaults(func=cmd_cache)

    srv = sub.add_parser(
        "serve",
        help="run the extraction service: HTTP job queue + artifact store",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=_non_negative_int, default=8177,
                     help="TCP port (0 = ephemeral; the ready line prints "
                          "the bound port)")
    srv.add_argument("--data-dir", required=True, metavar="DIR",
                     help="durable service root (uploads/, artifacts/, "
                          "jobs.jsonl); restarts resume its job backlog")
    srv.add_argument("--workers", type=_non_negative_int, default=1,
                     help="job worker threads (0 = accept and journal jobs "
                          "without processing; the backlog drains on the "
                          "next start with workers > 0)")
    srv.add_argument("--timeout", type=_positive_float, default=None,
                     help="per-job wall-clock seconds; a job exceeding it "
                          "is killed (forces process isolation per job)")
    srv.add_argument("--retries", type=_non_negative_int, default=0,
                     help="re-run a timed-out/crashed job up to N times")
    srv.add_argument("--max-entries", type=_positive_int, default=None,
                     help="artifact-store entry cap (LRU eviction)")
    srv.add_argument("--max-bytes", type=_positive_int, default=None,
                     help="artifact-store total byte cap (LRU eviction)")
    srv.add_argument("--shard-prefix", type=_non_negative_int, default=2,
                     help="hex chars of artifact key per shard directory "
                          "(0 = flat layout)")
    srv.add_argument("--shard-bytes", type=_positive_int, default=None,
                     help="byte quota per artifact shard")
    srv.add_argument("--max-queue", type=_positive_int, default=None,
                     help="admission bound: reject submissions with 429 + "
                          "Retry-After once this many jobs are waiting")
    srv.add_argument("--max-queue-age", type=_positive_float, default=None,
                     help="shed jobs older than this (seconds) at dequeue "
                          "with status 'expired' instead of running them")
    srv.add_argument("--breaker-threshold", type=_positive_int, default=5,
                     help="consecutive distinct-job worker crashes that "
                          "open the circuit breaker (503 + Retry-After)")
    srv.add_argument("--breaker-cooldown", type=_positive_float, default=30.0,
                     help="seconds the breaker stays open before a "
                          "half-open probe job is admitted")
    srv.add_argument("--read-timeout", type=_positive_float, default=30.0,
                     help="per-connection socket read/write deadline "
                          "(seconds; slow-loris defense)")
    srv.add_argument("--handler-timeout", type=_positive_float, default=None,
                     help="per-request handler deadline (seconds; 503 on "
                          "overrun)")
    srv.add_argument("--drain-timeout", type=_positive_float, default=None,
                     help="on SIGTERM/SIGINT, wait up to this many seconds "
                          "for in-flight jobs before exiting (default: "
                          "wait until drained)")
    srv.add_argument("--chaos", action="append", default=None,
                     metavar="SITE:KIND[:k=v,...]",
                     help="TESTING ONLY - inject a deterministic fault "
                          "(repeatable), e.g. store.fsync:enospc:at=2 or "
                          "worker.run:crash:at=1")
    srv.add_argument("--chaos-seed", type=int, default=0,
                     help="seed for rate-based --chaos faults")
    srv.set_defaults(func=cmd_serve)

    sbm = sub.add_parser(
        "submit",
        help="submit a trace to a running extraction service and print "
             "the result (retries through backpressure)",
    )
    sbm.add_argument("trace", nargs="?", default=None,
                     help="trace file to upload and analyze")
    sbm.add_argument("--url", default="http://127.0.0.1:8177",
                     help="service base URL")
    sbm.add_argument("--options", default=None, metavar="JSON",
                     help='pipeline options object, e.g. '
                          '\'{"order": "physical"}\'')
    sbm.add_argument("--timeout", type=_positive_float, default=30.0,
                     help="per-request socket timeout (seconds)")
    sbm.add_argument("--retries", type=_non_negative_int, default=5,
                     help="retry budget for 408/429/503 and transport "
                          "failures (capped exponential backoff + jitter)")
    sbm.add_argument("--backoff", type=_positive_float, default=0.25,
                     help="base backoff delay (seconds)")
    sbm.add_argument("--deadline", type=_positive_float, default=120.0,
                     help="seconds to wait for the job to finish")
    sbm.add_argument("--poll", type=_positive_float, default=0.2,
                     help="job status poll interval (seconds)")
    sbm.add_argument("--no-wait", action="store_true",
                     help="print the job record immediately instead of "
                          "waiting for the result")
    sbm.add_argument("--stats", action="store_true",
                     help="print the service's backpressure counters "
                          "(queue depth, rejections, breaker state) "
                          "instead of submitting")
    sbm.add_argument("--json", action="store_true",
                     help="with --stats: emit machine-readable output")
    sbm.set_defaults(func=cmd_submit)

    flt = sub.add_parser(
        "faults",
        help="derive corrupted trace variants for robustness testing",
    )
    flt.add_argument("trace")
    flt.add_argument("--kind", action="append", default=None,
                     choices=["truncate", "drop_messages", "dup_messages",
                              "orphan_recv", "negative_duration",
                              "clock_skew"],
                     help="fault to inject (repeat to compound; "
                          "default with --corpus: all kinds)")
    flt.add_argument("-o", "--output", default="faulted.jsonl",
                     help="output path for single-variant mode")
    flt.add_argument("--corpus", default=None, metavar="DIR",
                     help="write one variant per kind into DIR")
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument("--severity", type=float, default=0.25,
                     help="damage fraction in [0, 1]")
    flt.add_argument("--json", action="store_true",
                     help="emit variant paths and detected-defect counts")
    flt.set_defaults(func=cmd_faults)

    exp = sub.add_parser("experiments",
                         help="run the paper's experiments (scaled)")
    exp.add_argument("ids", nargs="*",
                     help="experiment ids (default: all); see --list")
    exp.add_argument("--list", action="store_true")
    exp.set_defaults(func=cmd_experiments)

    val = sub.add_parser("validate", help="check trace structural invariants")
    val.add_argument("trace")
    val.add_argument("--allow-overlap", action="store_true")
    val.set_defaults(func=cmd_validate)

    ver = sub.add_parser(
        "verify",
        help="verify the paper's structural invariants on a trace's structure",
    )
    ver.add_argument("trace")
    add_pipeline_options(ver)
    ver.add_argument("--differential", action="store_true",
                     help="run the full option-variant matrix and cross-checks")
    ver.add_argument("--stages", action="store_true",
                     help="print the per-stage timing/merge table")
    ver.add_argument("--json", action="store_true",
                     help="emit the machine-readable report")
    ver.set_defaults(func=cmd_verify)

    lnt = sub.add_parser(
        "lint",
        help="static determinism/dataflow/concurrency analysis of the "
             "pipeline source",
    )
    lnt.add_argument("paths", nargs="*",
                     help="files or directories to lint (default: the "
                          "installed repro package)")
    lnt.add_argument("--rules", action="append", default=None,
                     metavar="RULE",
                     help="run only this rule id (repeatable); unknown "
                          "ids are an error")
    lnt.add_argument("--fail-on", choices=["warning", "error"],
                     default="error",
                     help="exit nonzero on findings at or above this "
                          "severity (default: error)")
    lnt.add_argument("--json", action="store_true",
                     help="emit the machine-readable report "
                          "(docs/STATIC_ANALYSIS.md documents the schema)")
    lnt.add_argument("--list-rules", action="store_true",
                     help="print the rule catalog and exit")
    lnt.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="analyze files with N worker processes "
                          "(0 = one per CPU; default 1). The JSON "
                          "report is byte-identical at any worker "
                          "count, except the timing block")
    lnt.add_argument("--cache", default=None, metavar="PATH",
                     help="incremental result cache file; unchanged "
                          "files reuse their cached findings, keyed by "
                          "content sha256 and rule-set version")
    lnt.set_defaults(func=cmd_lint)

    syn = sub.add_parser("sync", help="repair cross-PE clock skew")
    syn.add_argument("trace")
    syn.add_argument("-o", "--output", default="synced.jsonl")
    syn.add_argument("--min-latency", type=float, default=0.0)
    syn.set_defaults(func=cmd_sync)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
