"""Experiment definitions and the runner.

Experiments here are sized for interactive use (seconds each); the
benchmark suite runs the larger configurations with timing.  Every claim
is a named predicate over the experiment's artifacts, so a report lists
exactly which of the paper's shape statements held.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import extract_logical_structure
from repro.core.patterns import detect_period, kind_sequence, signature_sequence


@dataclass
class Claim:
    """One checkable statement about an experiment's artifacts."""

    description: str
    check: Callable[[Dict[str, Any]], bool]


@dataclass
class Experiment:
    """A workload factory plus the paper's claims about its result."""

    id: str
    title: str
    paper: str  # where in the paper the claim lives
    build: Callable[[], Dict[str, Any]]
    claims: List[Claim] = field(default_factory=list)


@dataclass
class ExperimentReport:
    """Outcome of running one experiment."""

    id: str
    title: str
    seconds: float = 0.0
    results: List[tuple] = field(default_factory=list)  # (description, ok)
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.error is None and all(ok for _d, ok in self.results)

    def summary(self) -> str:
        lines = [f"[{self.id}] {self.title} ({self.seconds:.1f}s)"]
        if self.error:
            lines.append(f"  ERROR: {self.error}")
        for description, ok in self.results:
            lines.append(f"  {'PASS' if ok else 'FAIL'}  {description}")
        return "\n".join(lines)


_REGISTRY: Dict[str, Experiment] = {}


def _register(experiment: Experiment) -> Experiment:
    _REGISTRY[experiment.id] = experiment
    return experiment


def all_experiments() -> List[Experiment]:
    """All registered experiments, in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get(experiment_id: str) -> Experiment:
    """Look up one experiment by id (e.g. ``"fig16"``)."""
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def run_experiment(experiment: Experiment) -> ExperimentReport:
    """Build the experiment's artifacts and evaluate every claim."""
    report = ExperimentReport(id=experiment.id, title=experiment.title)
    start = time.perf_counter()
    try:
        artifacts = experiment.build()
        for claim in experiment.claims:
            try:
                ok = bool(claim.check(artifacts))
            except Exception as exc:  # a broken claim is a failed claim
                ok = False
                report.results.append(
                    (f"{claim.description} (raised {type(exc).__name__})", ok)
                )
                continue
            report.results.append((claim.description, ok))
    except Exception as exc:
        report.error = f"{type(exc).__name__}: {exc}"
    report.seconds = time.perf_counter() - start
    return report


def run_all() -> List[ExperimentReport]:
    """Run every registered experiment."""
    return [run_experiment(e) for e in all_experiments()]


# ---------------------------------------------------------------------------
# Experiment definitions (interactive scale)
# ---------------------------------------------------------------------------
def _build_fig01():
    from repro.apps import nasbt

    trace = nasbt.run(ranks=9, iterations=2, seed=1)
    return {"trace": trace, "structure": extract_logical_structure(trace)}


_register(Experiment(
    id="fig01",
    title="NAS BT: logical structure vs physical time",
    paper="Figure 1",
    build=_build_fig01,
    claims=[
        Claim("pipelined sweeps give a deep logical schedule (>= 24 steps)",
              lambda a: a["structure"].max_step + 1 >= 24),
        Claim("sweep phases span whole rows of processes",
              lambda a: any(len(p.chares) >= 3 for p in a["structure"].phases)),
    ],
))


def _build_fig08():
    from repro.apps import jacobi2d

    trace = jacobi2d.run(chares=(8, 8), pes=8, iterations=2, seed=1)
    return {
        "trace": trace,
        "reordered": extract_logical_structure(trace, order="reordered"),
        "physical": extract_logical_structure(trace, order="physical"),
    }


_register(Experiment(
    id="fig08",
    title="Jacobi 2D: recorded vs reordered step assignment",
    paper="Figure 8",
    build=_build_fig08,
    claims=[
        Claim("alternating application/runtime phases (arar)",
              lambda a: kind_sequence(a["reordered"]) == "arar"),
        Claim("reordering is at least as compact as recorded order",
              lambda a: a["reordered"].max_step <= a["physical"].max_step),
    ],
))


def _build_fig10():
    from repro.apps import mergetree

    trace = mergetree.run(ranks=256, seed=2, imbalance=5.0)
    re = extract_logical_structure(trace, order="reordered")
    ph = extract_logical_structure(trace, order="physical")

    def at(structure, step):
        return sum(1 for s in structure.step_of_event if s == step)

    return {"trace": trace, "reordered": re, "physical": ph, "at": at}


_register(Experiment(
    id="fig10",
    title="Merge tree: reordering restores the parallel ladder",
    paper="Figure 10",
    build=_build_fig10,
    claims=[
        Claim("reordered step 0 holds every leaf send",
              lambda a: a["at"](a["reordered"], 0) == a["trace"].num_pes // 2),
        Claim("physical order loses initial parallelism or stretches",
              lambda a: a["at"](a["physical"], 0) < a["trace"].num_pes // 2
              or a["physical"].max_step > a["reordered"].max_step),
    ],
))


def _build_fig1x_metrics():
    from repro.apps import jacobi2d
    from repro.metrics import differential_duration, idle_experienced, imbalance
    from repro.sim.noise import ChareSlowdown, ComposedNoise, SlowProcessor

    trace = jacobi2d.run(
        chares=(4, 4), pes=8, iterations=3, seed=7,
        noise=ComposedNoise(ChareSlowdown([6], factor=4.0),
                            SlowProcessor([5], factor=1.6)),
    )
    structure = extract_logical_structure(trace)
    return {
        "trace": trace,
        "structure": structure,
        "idle": idle_experienced(structure),
        "diff": differential_duration(structure),
        "imb": imbalance(structure),
    }


_register(Experiment(
    id="fig12-15",
    title="Jacobi metrics: idle experienced, differential duration, imbalance",
    paper="Figures 12/14/15",
    build=_build_fig1x_metrics,
    claims=[
        Claim("reduction waits surface as idle experienced",
              lambda a: a["idle"].total() > 0),
        Claim("differential duration isolates the slow chare",
              lambda a: a["trace"].events[a["diff"].max_event()].chare == 6),
        Claim("per-phase imbalance is zero on the least-loaded PE",
              lambda a: min(
                  v for (_p, _pe), v in a["imb"].by_phase_pe.items()) == 0.0),
    ],
))


def _build_fig16():
    from repro.apps import lulesh

    charm = lulesh.run_charm(chares=8, pes=2, iterations=3, seed=3)
    mpi = lulesh.run_mpi(ranks=8, iterations=3, seed=3)
    return {
        "charm": extract_logical_structure(charm),
        "mpi": extract_logical_structure(mpi, order="physical"),
    }


def _charm_unit_is(a, kinds):
    s = a["charm"]
    sigs = signature_sequence(s)
    period, start, repeats = detect_period(sigs, min_repeats=2)
    if period != len(kinds) or repeats < 2:
        return False
    order = s.phase_sequence()
    unit = [s.phase(order[start + i]) for i in range(period)]
    return ["r" if p.is_runtime else "a" for p in unit] == kinds


_register(Experiment(
    id="fig16",
    title="LULESH: Charm++ 2 phases + allreduce vs MPI 3 phases + allreduce",
    paper="Figure 16",
    build=_build_fig16,
    claims=[
        Claim("Charm++ repeats two application phases plus an allreduce",
              lambda a: _charm_unit_is(a, ["a", "a", "r"])),
        Claim("MPI repeats three p2p phases plus an allreduce",
              lambda a: detect_period(signature_sequence(a["mpi"]),
                                      min_repeats=2)[0] == 4),
    ],
))


def _build_fig17():
    from repro.apps import lulesh
    from repro.sim.charm import TracingOptions

    trace = lulesh.run_charm(chares=8, pes=2, iterations=3, seed=3,
                             tracing=TracingOptions(record_sdag=False))
    return {
        "with": extract_logical_structure(trace, infer=True),
        "without": extract_logical_structure(trace, infer=False),
    }


_register(Experiment(
    id="fig17",
    title="LULESH: structure shatters without Section 3.1.4 inference",
    paper="Figure 17",
    build=_build_fig17,
    claims=[
        Claim("phases split by > 2x without inference",
              lambda a: len(a["without"].phases) > 2 * len(a["with"].phases)),
        Claim("the schedule stretches without inference",
              lambda a: a["without"].max_step > a["with"].max_step),
    ],
))


def _build_fig20():
    from repro.apps import lassen

    charm = lassen.run_charm(chares=8, pes=8, iterations=4, seed=1)
    mpi = lassen.run_mpi(ranks=8, iterations=4, seed=1)
    return {
        "charm": extract_logical_structure(charm),
        "mpi": extract_logical_structure(mpi, order="physical"),
    }


_register(Experiment(
    id="fig20",
    title="LASSEN: p2p + allreduce repetition; Charm++ control phases",
    paper="Figure 20",
    build=_build_fig20,
    claims=[
        Claim("MPI repeats p2p + allreduce (period 2)",
              lambda a: detect_period(signature_sequence(a["mpi"]),
                                      min_repeats=2)[0] == 2),
        Claim("Charm++ shows the per-chare two-step control phases",
              lambda a: sum(1 for p in a["charm"].phases
                            if not p.is_runtime and len(p.events) == 2) == 8 * 4),
    ],
))


def _build_fig23():
    from repro.apps import lassen
    from repro.metrics import differential_duration, imbalance

    out = {}
    for n in (8, 64):
        trace = lassen.run_charm(chares=n, pes=8, iterations=8, seed=5)
        s = extract_logical_structure(trace)
        cutoff = s.max_step * 0.6
        late = {p.id for p in s.phases if p.offset >= cutoff}
        diff = differential_duration(s)
        d = max((v for e, v in diff.by_event.items()
                 if s.phase_of_event[e] in late), default=0.0)
        imb = imbalance(s)
        i = max((v for p, v in imb.max_by_phase.items() if p in late),
                default=0.0)
        out[n] = (d, i)
    return {"metrics": out}


_register(Experiment(
    id="fig23",
    title="LASSEN: over-decomposition spreads the wavefront's work",
    paper="Figures 21-23",
    build=_build_fig23,
    claims=[
        Claim("64-chare late differential duration < half of 8-chare",
              lambda a: a["metrics"][64][0] < 0.5 * a["metrics"][8][0]),
        Claim("64-chare late imbalance below 8-chare",
              lambda a: a["metrics"][64][1] < a["metrics"][8][1]),
    ],
))


def _build_fig24():
    from repro.apps import pdes

    untraced = pdes.run(chares=16, pes=4, seed=1)
    traced = pdes.run(chares=16, pes=4, seed=1, traced_completion=True)
    return {
        "untraced": extract_logical_structure(untraced),
        "traced": extract_logical_structure(traced),
    }


def _steps_overlap(structure):
    app = {structure.step_of_event[e]
           for p in structure.application_phases() for e in p.events}
    rt = {structure.step_of_event[e]
          for p in structure.runtime_phases() for e in p.events}
    return bool(app & rt)


_register(Experiment(
    id="fig24",
    title="PDES: untraced completion detector floats concurrently",
    paper="Figure 24",
    build=_build_fig24,
    claims=[
        Claim("untraced detector shares global steps with the simulation",
              lambda a: _steps_overlap(a["untraced"])),
        Claim("tracing the call sequences the detector after the simulation",
              lambda a: max(a["traced"].runtime_phases(), key=len).offset
              > max(a["traced"].application_phases(), key=len).offset),
    ],
))


def _build_scaling():
    from repro.apps import lulesh
    from repro.core.pipeline import PipelineStats

    seconds = {}
    events = {}
    for iters in (8, 16, 32):
        trace = lulesh.run_charm(chares=64, pes=8, iterations=iters, seed=3)
        stats = PipelineStats()
        extract_logical_structure(trace, stats=stats)
        seconds[iters] = stats.total_seconds
        events[iters] = len(trace.events)
    return {"seconds": seconds, "events": events}


_register(Experiment(
    id="fig18-19",
    title="Extraction-time scaling with iterations",
    paper="Figures 18/19 (scaled sweep)",
    build=_build_scaling,
    claims=[
        Claim("time grows with trace size",
              lambda a: a["seconds"][32] > a["seconds"][8]),
        Claim("growth is near-proportional (< 3x per 4x events)",
              lambda a: (a["seconds"][32] / a["seconds"][8])
              < 3.0 * (a["events"][32] / a["events"][8])),
    ],
))
