"""Programmatic registry of the paper's experiments.

`pytest benchmarks/` regenerates every figure with timing; this package
exposes the same experiments as plain library calls for scripted use —
``repro experiments --list`` / ``repro experiments fig16`` from the CLI,
or::

    from repro.experiments import get, run_experiment
    report = run_experiment(get("fig16"))
    print(report.summary())

Each experiment is a workload factory plus a list of *claims* (the shape
assertions EXPERIMENTS.md records); running one returns which claims held.
"""

from repro.experiments.registry import (
    Claim,
    Experiment,
    ExperimentReport,
    all_experiments,
    get,
    run_all,
    run_experiment,
)

__all__ = [
    "Claim",
    "Experiment",
    "ExperimentReport",
    "all_experiments",
    "get",
    "run_all",
    "run_experiment",
]
