"""The :class:`Trace` container and its mutable :class:`TraceBuilder`.

A :class:`Trace` is an immutable-by-convention bundle of the record types in
:mod:`repro.trace.events` plus the derived indexes the analysis algorithms
need (events per execution, message endpoints per event, executions per
chare/PE in time order).  Indexes are built once, at :meth:`TraceBuilder.build`
time, so algorithm code never sorts or scans the raw lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.events import (
    NO_ID,
    Chare,
    ChareArray,
    DepEvent,
    EntryMethod,
    EventKind,
    Execution,
    IdleInterval,
    Message,
)


class Trace:
    """A complete event trace with derived lookup indexes.

    Do not mutate a built trace; create a new one through
    :class:`TraceBuilder` instead.  All ``*s`` attributes are lists indexed
    by the dense integer id of the record they hold.
    """

    def __init__(
        self,
        chares: List[Chare],
        entries: List[EntryMethod],
        arrays: List[ChareArray],
        executions: List[Execution],
        events: List[DepEvent],
        messages: List[Message],
        idles: List[IdleInterval],
        num_pes: int,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.chares = chares
        self.entries = entries
        self.arrays = arrays
        self.executions = executions
        self.events = events
        self.messages = messages
        self.idles = idles
        self.num_pes = num_pes
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._build_indexes()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_indexes(self) -> None:
        n_exec = len(self.executions)
        self.events_by_execution: List[List[int]] = [[] for _ in range(n_exec)]
        for ev in self.events:
            if ev.execution != NO_ID:
                self.events_by_execution[ev.execution].append(ev.id)
        for lst in self.events_by_execution:
            lst.sort(key=lambda eid: (self.events[eid].time, eid))

        n_events = len(self.events)
        # A RECV event terminates exactly one message; a SEND event may
        # start several (broadcast fan-out).
        self.messages_by_send: List[List[int]] = [[] for _ in range(n_events)]
        self.message_by_recv: List[int] = [NO_ID] * n_events
        for msg in self.messages:
            if msg.send_event != NO_ID:
                self.messages_by_send[msg.send_event].append(msg.id)
            if msg.recv_event != NO_ID:
                self.message_by_recv[msg.recv_event] = msg.id

        self.executions_by_chare: Dict[int, List[int]] = {c.id: [] for c in self.chares}
        self.executions_by_pe: Dict[int, List[int]] = {pe: [] for pe in range(self.num_pes)}
        for ex in self.executions:
            self.executions_by_chare[ex.chare].append(ex.id)
            self.executions_by_pe.setdefault(ex.pe, []).append(ex.id)
        for lst in self.executions_by_chare.values():
            lst.sort(key=lambda xid: (self.executions[xid].start, xid))
        for lst in self.executions_by_pe.values():
            lst.sort(key=lambda xid: (self.executions[xid].start, xid))

        self.idles_by_pe: Dict[int, List[IdleInterval]] = {pe: [] for pe in range(self.num_pes)}
        for idle in self.idles:
            self.idles_by_pe.setdefault(idle.pe, []).append(idle)
        for ilst in self.idles_by_pe.values():
            ilst.sort(key=lambda iv: iv.start)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def event(self, event_id: int) -> DepEvent:
        """Return the dependency event with the given id."""
        return self.events[event_id]

    def execution(self, exec_id: int) -> Execution:
        """Return the execution (serial block) with the given id."""
        return self.executions[exec_id]

    def chare(self, chare_id: int) -> Chare:
        """Return the chare with the given id."""
        return self.chares[chare_id]

    def entry(self, entry_id: int) -> EntryMethod:
        """Return the entry method with the given id."""
        return self.entries[entry_id]

    def message(self, message_id: int) -> Message:
        """Return the message with the given id."""
        return self.messages[message_id]

    def events_of(self, exec_id: int) -> List[int]:
        """Event ids inside an execution, in physical-time order."""
        return self.events_by_execution[exec_id]

    def is_runtime_chare(self, chare_id: int) -> bool:
        """True when the chare belongs to the runtime, not the application."""
        return self.chares[chare_id].is_runtime

    def partner_chares(self, event_id: int) -> List[int]:
        """Chare ids on the far side of every message touching ``event_id``.

        Unmatched endpoints (untraced partners) contribute nothing.
        """
        ev = self.events[event_id]
        partners: List[int] = []
        if ev.kind == EventKind.SEND:
            for mid in self.messages_by_send[event_id]:
                recv = self.messages[mid].recv_event
                if recv != NO_ID:
                    partners.append(self.events[recv].chare)
        else:
            mid = self.message_by_recv[event_id]
            if mid != NO_ID:
                send = self.messages[mid].send_event
                if send != NO_ID:
                    partners.append(self.events[send].chare)
        return partners

    def event_is_runtime_related(self, event_id: int) -> bool:
        """True when the event touches the runtime on either side.

        Used to split serial blocks at application/runtime boundaries when
        forming initial partitions (Section 3.1.1, Figure 2).
        """
        ev = self.events[event_id]
        if self.is_runtime_chare(ev.chare):
            return True
        return any(self.is_runtime_chare(c) for c in self.partner_chares(event_id))

    def runtime_related_flags(self) -> List[bool]:
        """Per-event :meth:`event_is_runtime_related`, computed in bulk.

        One pass over events plus one over messages — O(events+messages)
        instead of per-event partner scans; the initial-partition stage is
        hot enough for this to matter (Section 3.3).
        """
        runtime_chare = [c.is_runtime for c in self.chares]
        flags = [runtime_chare[ev.chare] for ev in self.events]
        for msg in self.messages:
            if not msg.is_complete():
                continue
            send, recv = msg.send_event, msg.recv_event
            if runtime_chare[self.events[send].chare]:
                flags[recv] = True
            if runtime_chare[self.events[recv].chare]:
                flags[send] = True
        return flags

    def application_chares(self) -> List[int]:
        """Ids of all application (non-runtime) chares."""
        return [c.id for c in self.chares if not c.is_runtime]

    def runtime_chares(self) -> List[int]:
        """Ids of all runtime chares."""
        return [c.id for c in self.chares if c.is_runtime]

    def end_time(self) -> float:
        """Physical end time of the trace (latest execution end)."""
        if not self.executions:
            return 0.0
        return max(ex.end for ex in self.executions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(chares={len(self.chares)}, executions={len(self.executions)}, "
            f"events={len(self.events)}, messages={len(self.messages)}, "
            f"pes={self.num_pes})"
        )


class TraceBuilder:
    """Incrementally assembles a :class:`Trace`.

    Simulator tracing modules and the trace reader both funnel through this
    builder so that id assignment and index construction live in one place.
    """

    def __init__(self, num_pes: int = 1, metadata: Optional[Dict[str, object]] = None):
        self.num_pes = num_pes
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._chares: List[Chare] = []
        self._entries: List[EntryMethod] = []
        self._arrays: List[ChareArray] = []
        self._executions: List[Execution] = []
        self._events: List[DepEvent] = []
        self._messages: List[Message] = []
        self._idles: List[IdleInterval] = []

    # -- registries -----------------------------------------------------
    def add_entry(
        self,
        name: str,
        chare_type: str = "",
        is_sdag_serial: bool = False,
        sdag_ordinal: int = -1,
    ) -> int:
        """Register an entry method; returns its id."""
        eid = len(self._entries)
        self._entries.append(
            EntryMethod(eid, name, chare_type, is_sdag_serial, sdag_ordinal)
        )
        return eid

    def add_array(self, name: str, shape: Tuple[int, ...] = ()) -> int:
        """Register a chare array; returns its id."""
        aid = len(self._arrays)
        self._arrays.append(ChareArray(aid, name, shape))
        return aid

    def add_chare(
        self,
        name: str,
        array_id: int = NO_ID,
        index: Tuple[int, ...] = (),
        is_runtime: bool = False,
        home_pe: int = 0,
    ) -> int:
        """Register a chare; returns its id."""
        cid = len(self._chares)
        self._chares.append(Chare(cid, name, array_id, tuple(index), is_runtime, home_pe))
        return cid

    # -- records ---------------------------------------------------------
    def add_execution(
        self,
        chare: int,
        entry: int,
        pe: int,
        start: float,
        end: float,
        recv_event: int = NO_ID,
    ) -> int:
        """Record one serial block; returns its id."""
        xid = len(self._executions)
        self._executions.append(Execution(xid, chare, entry, pe, start, end, recv_event))
        return xid

    def add_event(
        self,
        kind: EventKind,
        chare: int,
        pe: int,
        time: float,
        execution: int = NO_ID,
    ) -> int:
        """Record one dependency event; returns its id."""
        evid = len(self._events)
        self._events.append(DepEvent(evid, kind, chare, pe, time, execution))
        return evid

    def add_message(self, send_event: int = NO_ID, recv_event: int = NO_ID) -> int:
        """Record a matched (or half-matched) message; returns its id."""
        mid = len(self._messages)
        self._messages.append(Message(mid, send_event, recv_event))
        return mid

    def set_recv_event(self, message_id: int, recv_event: int) -> None:
        """Attach the receive endpoint to an already-recorded message."""
        self._messages[message_id].recv_event = recv_event

    def set_execution_recv(self, exec_id: int, recv_event: int) -> None:
        """Attach the triggering RECV event to an execution."""
        self._executions[exec_id].recv_event = recv_event

    def set_execution_end(self, exec_id: int, end: float) -> None:
        """Finalize the end time of an execution."""
        self._executions[exec_id].end = end

    def set_event_execution(self, event_id: int, exec_id: int) -> None:
        """Attach an event to its owning execution after the fact.

        Needed by collective tracing, where a rank's SEND event is recorded
        when it enters the collective but the region's span is only known
        once every participant has arrived.
        """
        self._events[event_id].execution = exec_id

    def add_idle(self, pe: int, start: float, end: float) -> None:
        """Record an idle interval on a processor (zero-length spans dropped)."""
        if end > start:
            self._idles.append(IdleInterval(pe, start, end))

    # -- finalization ----------------------------------------------------
    def build(self) -> Trace:
        """Freeze the builder into a fully indexed :class:`Trace`."""
        return Trace(
            chares=self._chares,
            entries=self._entries,
            arrays=self._arrays,
            executions=self._executions,
            events=self._events,
            messages=self._messages,
            idles=self._idles,
            num_pes=self.num_pes,
            metadata=self.metadata,
        )
