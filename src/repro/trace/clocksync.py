"""Clock skew injection and timestamp synchronization.

Traces are stitched together from per-processor clocks that are never
perfectly aligned.  Section 4 of the paper notes that metrics comparing
times across processors (idle experienced) can be distorted by clock
synchronization problems and points at post-processing corrections
(Rabenseifner's controlled logical clock; Becker/Rabenseifner/Wolf).
This module provides both sides:

* :func:`apply_clock_skew` — perturb a trace with per-PE offsets and
  linear drift, producing the misaligned timestamps a real multi-node
  tracer records (possibly with receive-before-send violations);
* :func:`synchronize_trace` — repair a trace: estimate per-PE offsets
  from message constraints (difference-constraint relaxation), then run a
  controlled-logical-clock style forward amortization that pushes any
  still-violating receive (and everything after it on its processor)
  forward until every receive trails its send by the minimum latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import NO_ID
from repro.trace.model import Trace, TraceBuilder


# ---------------------------------------------------------------------------
# Skew injection
# ---------------------------------------------------------------------------
def apply_clock_skew(
    trace: Trace,
    offsets: Sequence[float],
    drifts: Optional[Sequence[float]] = None,
) -> Trace:
    """Return a copy of ``trace`` with each PE's clock transformed.

    A timestamp ``t`` recorded on PE ``p`` becomes
    ``t * (1 + drifts[p]) + offsets[p]``.  Chare/entry registries and all
    record relationships are preserved; only times change.
    """
    if len(offsets) < trace.num_pes:
        raise ValueError("need one offset per PE")
    if drifts is not None and len(drifts) < trace.num_pes:
        raise ValueError("need one drift per PE")

    def warp(t: float, pe: int) -> float:
        rate = 1.0 + (drifts[pe] if drifts is not None else 0.0)
        return t * rate + offsets[pe]

    return _rebuild(trace, warp)


def _rebuild(trace: Trace, warp) -> Trace:
    """Clone a trace with every timestamp passed through ``warp(t, pe)``."""
    b = TraceBuilder(num_pes=trace.num_pes, metadata=dict(trace.metadata))
    for entry in trace.entries:
        b.add_entry(entry.name, entry.chare_type, entry.is_sdag_serial,
                    entry.sdag_ordinal)
    for arr in trace.arrays:
        b.add_array(arr.name, arr.shape)
    for chare in trace.chares:
        b.add_chare(chare.name, chare.array_id, chare.index,
                    chare.is_runtime, chare.home_pe)
    for ex in trace.executions:
        b.add_execution(ex.chare, ex.entry, ex.pe,
                        warp(ex.start, ex.pe), warp(ex.end, ex.pe),
                        recv_event=ex.recv_event)
    for ev in trace.events:
        b.add_event(ev.kind, ev.chare, ev.pe, warp(ev.time, ev.pe),
                    ev.execution)
    for msg in trace.messages:
        b.add_message(msg.send_event, msg.recv_event)
    for idle in trace.idles:
        b.add_idle(idle.pe, warp(idle.start, idle.pe), warp(idle.end, idle.pe))
    return b.build()


# ---------------------------------------------------------------------------
# Synchronization
# ---------------------------------------------------------------------------
@dataclass
class SyncStats:
    """Diagnostics of a synchronization run."""

    violations_before: int = 0
    violations_after_offsets: int = 0
    violations_after: int = 0
    offset_rounds: int = 0
    pe_offsets: List[float] = field(default_factory=list)
    amortized_blocks: int = 0


def count_violations(trace: Trace, min_latency: float = 0.0) -> int:
    """Messages whose receive precedes send + ``min_latency``."""
    bad = 0
    for msg in trace.messages:
        if msg.is_complete():
            send = trace.events[msg.send_event]
            recv = trace.events[msg.recv_event]
            if recv.time < send.time + min_latency - 1e-9:
                bad += 1
    return bad


def estimate_pe_offsets(
    trace: Trace, min_latency: float = 0.0, max_rounds: int = 50
) -> Tuple[List[float], int]:
    """Estimate per-PE clock corrections from message constraints.

    Every complete cross-PE message imposes
    ``o[recv_pe] - o[send_pe] >= send_t + min_latency - recv_t``; the
    smallest non-negative corrections satisfying all satisfiable
    constraints are found by Bellman-Ford style relaxation.  Conflicting
    constraint cycles (genuine out-of-order effects, not constant skew)
    terminate relaxation at ``max_rounds``; the leftover violations are
    handled by forward amortization.
    """
    constraints: List[Tuple[int, int, float]] = []
    for msg in trace.messages:
        if not msg.is_complete():
            continue
        send = trace.events[msg.send_event]
        recv = trace.events[msg.recv_event]
        if send.pe == recv.pe:
            continue
        bound = send.time + min_latency - recv.time
        constraints.append((send.pe, recv.pe, bound))

    offsets = [0.0] * trace.num_pes
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = False
        for src, dst, bound in constraints:
            needed = offsets[src] + bound
            if offsets[dst] < needed - 1e-9:
                offsets[dst] = needed
                changed = True
        if not changed:
            break
    # Normalize: the earliest PE keeps its clock.
    lo = min(offsets)
    offsets = [o - lo for o in offsets]
    return offsets, rounds


def forward_amortize(trace: Trace, min_latency: float = 0.0) -> Tuple[Trace, int]:
    """Controlled-logical-clock pass: push violating receives forward.

    Blocks are processed globally in corrected-time order; when a block's
    events include a receive earlier than its (already processed) send
    plus ``min_latency``, the block and everything after it on its PE
    shift forward by the deficit.  Per-PE event order and block spans are
    preserved; the returned trace has no violations.
    """
    exec_shift: Dict[int, float] = {}
    pe_shift = [0.0] * trace.num_pes
    new_time: Dict[int, float] = {}
    amortized = 0

    # Process executions in start order; ties by id keep determinism.
    order = sorted(range(len(trace.executions)),
                   key=lambda x: (trace.executions[x].start, x))
    # Events must be handled send-before-recv; within a global sweep by
    # block start this holds for cross-PE messages after shifting, so a
    # fixed point loop over unresolved receives handles chains.
    for xid in order:
        ex = trace.executions[xid]
        shift = pe_shift[ex.pe]
        # Does any receive in this block violate?
        deficit = 0.0
        for evid in trace.events_of(xid):
            ev = trace.events[evid]
            if ev.kind.name != "RECV":
                continue
            mid = trace.message_by_recv[evid]
            if mid == NO_ID:
                continue
            send = trace.messages[mid].send_event
            if send == NO_ID:
                continue
            send_rec = trace.events[send]
            send_time = new_time.get(send, send_rec.time)
            need = send_time + min_latency - (ev.time + shift)
            if need > deficit:
                deficit = need
        if deficit > 1e-12:
            shift += deficit
            pe_shift[ex.pe] = shift
            amortized += 1
        exec_shift[xid] = shift
        for evid in trace.events_of(xid):
            new_time[evid] = trace.events[evid].time + shift

    # Rebuild with the computed shifts.  Idle intervals are left as-is:
    # they are per-PE-local observations unaffected by the per-block
    # corrections (a conservative choice; the metric layer treats them as
    # lower bounds after amortization).
    b = TraceBuilder(num_pes=trace.num_pes, metadata=dict(trace.metadata))
    for entry in trace.entries:
        b.add_entry(entry.name, entry.chare_type, entry.is_sdag_serial,
                    entry.sdag_ordinal)
    for arr in trace.arrays:
        b.add_array(arr.name, arr.shape)
    for chare in trace.chares:
        b.add_chare(chare.name, chare.array_id, chare.index,
                    chare.is_runtime, chare.home_pe)
    for ex in trace.executions:
        s = exec_shift.get(ex.id, 0.0)
        b.add_execution(ex.chare, ex.entry, ex.pe, ex.start + s, ex.end + s,
                        recv_event=ex.recv_event)
    for ev in trace.events:
        t = new_time.get(ev.id, ev.time)
        b.add_event(ev.kind, ev.chare, ev.pe, t, ev.execution)
    for msg in trace.messages:
        b.add_message(msg.send_event, msg.recv_event)
    for idle in trace.idles:
        b.add_idle(idle.pe, idle.start, idle.end)
    return b.build(), amortized


def synchronize_trace(
    trace: Trace, min_latency: float = 0.0, max_rounds: int = 50
) -> Tuple[Trace, SyncStats]:
    """Repair cross-processor timestamp skew in a trace.

    Two stages: constant per-PE offset estimation, then forward
    amortization for whatever the constant model cannot explain (drift,
    genuine reordering).  The result has no receive-before-send
    violations at the given ``min_latency``.
    """
    stats = SyncStats()
    stats.violations_before = count_violations(trace, min_latency)
    offsets, rounds = estimate_pe_offsets(trace, min_latency, max_rounds)
    stats.offset_rounds = rounds
    stats.pe_offsets = offsets
    if any(o > 1e-12 for o in offsets):
        trace = apply_clock_skew(trace, offsets)
    stats.violations_after_offsets = count_violations(trace, min_latency)
    # A single amortization sweep processes blocks in (stale) start order,
    # so chained violations can need several passes; each pass only moves
    # events forward, and the pass count is bounded in practice by the
    # longest violating dependency chain.
    for _ in range(20):
        if count_violations(trace, min_latency) == 0:
            break
        trace, amortized = forward_amortize(trace, min_latency)
        stats.amortized_blocks += amortized
    stats.violations_after = count_violations(trace, min_latency)
    return trace, stats
