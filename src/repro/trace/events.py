"""Core record types for event traces.

The model follows the terminology of the paper:

* A *chare* is a migratable parallel object that owns data and executes
  tasks.  Chares are either *application* chares (user code) or *runtime*
  chares (e.g. a per-processor ``CkReductionMgr``).  Processes in an MPI
  trace are modelled as one application chare per rank, pinned to its PE.
* An *entry method* is a task definition.  SDAG ``serial`` sections are
  compiled into generic entry methods carrying an ordinal related to their
  parsing order; the ordinal drives the happened-before inference of
  Section 2.1.
* An :class:`Execution` is one run-to-completion invocation of an entry
  method on a chare — a *serial block* in the paper's vocabulary.
* A :class:`DepEvent` is a dependency event inside a serial block: a SEND
  (remote method invocation call) or a RECV (the delivery that started the
  block, or an explicit receive in message-passing traces).
* A :class:`Message` pairs a SEND event with a RECV event.  Either endpoint
  may be :data:`NO_ID` when the runtime did not trace it — exactly the
  situation the paper's inference heuristics (Section 3.1.4) compensate for.

All record types are flat, slotted dataclasses keyed by dense integer ids so
that large traces (the paper analyses runs up to 13.8k chares) stay cheap to
store and iterate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple

#: Sentinel id meaning "not recorded in the trace".
NO_ID = -1


class EventKind(IntEnum):
    """Kind of a dependency event."""

    SEND = 0
    RECV = 1


@dataclass(frozen=True)
class EntryMethod:
    """A task definition (entry method of a chare type).

    Parameters
    ----------
    id:
        Dense integer id, unique within a trace.
    name:
        Human-readable name, e.g. ``"Jacobi::recvGhost"``.
    chare_type:
        Name of the chare type declaring this method.
    is_sdag_serial:
        True when the method is a compiler-generated SDAG ``serial``
        section.  Such methods participate in the serial-numbering
        happened-before inference.
    sdag_ordinal:
        Parsing-order number of the serial section (``-1`` when not SDAG).
        Serial sections with consecutive ordinals observed back-to-back on
        a chare are inferred to be ordered (Section 2.1).
    """

    id: int
    name: str
    chare_type: str = ""
    is_sdag_serial: bool = False
    sdag_ordinal: int = -1


@dataclass(frozen=True)
class ChareArray:
    """An indexed collection of chares (Section 2.1).

    Arrays matter to the analysis because broadcasts and reductions are
    expressed over them, and because the paper's extended trace format
    records a chare-array id with each application event (Section 5).
    """

    id: int
    name: str
    shape: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Chare:
    """A unit of data/task encapsulation — one timeline in logical views.

    Application chares group tasks by the sub-domain they encapsulate;
    runtime chares (``is_runtime=True``) are grouped by their parent
    process, per Section 2: "we group application-level tasks by their
    parent chares, but group all runtime tasks by their parent process."
    """

    id: int
    name: str
    array_id: int = NO_ID
    index: Tuple[int, ...] = ()
    is_runtime: bool = False
    home_pe: int = 0


@dataclass
class Execution:
    """One run-to-completion execution of an entry method: a serial block.

    ``recv_event`` is the id of the RECV dependency event whose delivery
    started this block, or :data:`NO_ID` when the invocation was not traced
    (e.g. program start, or runtime-internal control flow that the tracing
    framework does not record).
    """

    id: int
    chare: int
    entry: int
    pe: int
    start: float
    end: float
    recv_event: int = NO_ID

    def duration(self) -> float:
        """Wall-clock span of the block."""
        return self.end - self.start


@dataclass
class DepEvent:
    """A dependency event (send or receive) inside a serial block.

    Events are the atoms of the logical structure: the ordering algorithm
    assigns each one a logical step.  ``execution`` is :data:`NO_ID` only
    for synthetic traces used in unit tests.
    """

    id: int
    kind: EventKind
    chare: int
    pe: int
    time: float
    execution: int = NO_ID


@dataclass
class Message:
    """A matched send/receive pair (remote method invocation).

    Broadcasts are fanned out into one message per recipient, all sharing
    the same SEND event; the resulting extra partition-graph edges are
    merged away by the dependency merge, as the paper notes in its
    complexity discussion (Section 3.3).
    """

    id: int
    send_event: int = NO_ID
    recv_event: int = NO_ID

    def is_complete(self) -> bool:
        """True when both endpoints were recorded."""
        return self.send_event != NO_ID and self.recv_event != NO_ID


@dataclass(frozen=True)
class IdleInterval:
    """A span during which a processor's scheduler had no work.

    These drive the *idle experienced* metric (Section 4).
    """

    pe: int
    start: float
    end: float

    def duration(self) -> float:
        """Length of the idle span."""
        return self.end - self.start
