"""Fault injection: derive corrupted variants of any trace.

Real campaign data is messy in ways the simulators never are — logs cut
off mid-write, tracers drop or double-deliver message records, serial
blocks lose their begin/end pairing, per-node clocks drift apart.  This
module turns a well-formed :class:`~repro.trace.model.Trace` into a
corrupted one exhibiting exactly one (or several) of those defects, so
the repair layer (:mod:`repro.trace.repair`), the batch driver, and the
test suite can exercise ingestion against realistic damage instead of
hoping it never happens.

Every injector is deterministic given ``seed`` and keeps the result
*constructible*: record ids stay dense and message endpoints stay
in-range (the :class:`Trace` index builder requires both), but the
referential and physical invariants checked by
:func:`repro.trace.validate.validate_trace` are deliberately broken.

Fault kinds (:data:`FAULT_KINDS`):

``truncate``
    Cut the record stream at a time quantile: executions starting after
    the cutoff vanish, as do their events; surviving executions whose
    triggering RECV record was lost keep a *stale* ``recv_event`` id —
    the dangling-reference shape of a log killed mid-write.
``drop_messages``
    Lose a fraction of message records; both endpoints become untraced
    events (legal but structure-degrading — dependencies disappear).
``dup_messages``
    Double-deliver a fraction of complete messages, violating the
    one-message-per-receive invariant (``recv-unique``).
``orphan_recv``
    Lose a fraction of execution records; their dependency events become
    orphans (``execution == NO_ID``) — receives with no serial block.
``negative_duration``
    Corrupt a fraction of executions so ``end`` precedes ``start``
    (a lost/garbled end record), leaving their events outside the span.
``clock_skew``
    Shift every PE's clock by a random offset proportional to the trace
    span, producing receive-before-send violations across PEs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.trace.events import NO_ID
from repro.trace.model import Trace, TraceBuilder


def _builder_with_registries(trace: Trace) -> TraceBuilder:
    """A new builder carrying the trace's registries and metadata."""
    b = TraceBuilder(num_pes=trace.num_pes, metadata=dict(trace.metadata))
    for entry in trace.entries:
        b.add_entry(entry.name, entry.chare_type, entry.is_sdag_serial,
                    entry.sdag_ordinal)
    for arr in trace.arrays:
        b.add_array(arr.name, arr.shape)
    for chare in trace.chares:
        b.add_chare(chare.name, chare.array_id, chare.index,
                    chare.is_runtime, chare.home_pe)
    return b


def _rebuild(
    trace: Trace,
    keep_exec: Callable[[int], bool] = lambda x: True,
    keep_event: Callable[[int], bool] = lambda e: True,
    keep_message: Callable[[int], bool] = lambda m: True,
    exec_span: Optional[Dict[int, Tuple[float, float]]] = None,
) -> Trace:
    """Clone ``trace`` with records filtered and ids re-densified.

    References to dropped records are remapped to :data:`NO_ID`.
    Messages lose a dropped send endpoint (orphan receive) but are
    dropped entirely when their receive endpoint is gone.
    """
    exec_span = exec_span or {}
    b = _builder_with_registries(trace)

    exec_map: Dict[int, int] = {}
    for ex in trace.executions:
        if not keep_exec(ex.id):
            continue
        start, end = exec_span.get(ex.id, (ex.start, ex.end))
        exec_map[ex.id] = b.add_execution(ex.chare, ex.entry, ex.pe,
                                          start, end, recv_event=NO_ID)

    event_map: Dict[int, int] = {}
    for ev in trace.events:
        if not keep_event(ev.id):
            continue
        owner = exec_map.get(ev.execution, NO_ID)
        event_map[ev.id] = b.add_event(ev.kind, ev.chare, ev.pe, ev.time,
                                       owner)

    for ex in trace.executions:
        new_id = exec_map.get(ex.id)
        if new_id is None or ex.recv_event == NO_ID:
            continue
        mapped = event_map.get(ex.recv_event)
        if mapped is not None:
            b.set_execution_recv(new_id, mapped)

    for msg in trace.messages:
        if not keep_message(msg.id):
            continue
        send = event_map.get(msg.send_event, NO_ID)
        recv = event_map.get(msg.recv_event, NO_ID)
        if msg.recv_event != NO_ID and recv == NO_ID:
            continue  # the receive record is gone: nothing to anchor
        if send == NO_ID and recv == NO_ID:
            continue
        b.add_message(send_event=send, recv_event=recv)

    for idle in trace.idles:
        b.add_idle(idle.pe, idle.start, idle.end)
    return b.build()


def _sample(rng: random.Random, ids: Sequence[int], severity: float) -> set:
    """A random subset of ``ids``: ``severity`` fraction, at least one."""
    if not ids:
        return set()
    k = max(1, int(round(len(ids) * min(max(severity, 0.0), 1.0))))
    return set(rng.sample(list(ids), min(k, len(ids))))


# ---------------------------------------------------------------------------
# Injectors
# ---------------------------------------------------------------------------
def truncate(trace: Trace, rng: random.Random, severity: float) -> Trace:
    """Cut the serialized record stream at a ``1 - severity`` fraction.

    The on-disk format writes registries, then executions, events,
    messages, and idles (:mod:`repro.trace.writer`); a log killed
    mid-write keeps a prefix of that stream.  Record ids stay dense
    (prefixes of id-ordered lists), but executions whose triggering RECV
    record falls past the cut keep a *dangling* ``recv_event`` id, and
    kept receives lose their message records — the reference damage the
    repair layer exists to clean up.
    """
    n_x, n_e, n_m, n_i = (len(trace.executions), len(trace.events),
                          len(trace.messages), len(trace.idles))
    total = n_x + n_e + n_m + n_i
    if total == 0:
        return trace
    keep = int(total * min(max(1.0 - severity, 0.0), 1.0))
    keep = min(keep, total - 1)  # always lose at least the last record
    k_x = min(n_x, keep)
    k_e = min(n_e, max(0, keep - n_x))
    k_m = min(n_m, max(0, keep - n_x - n_e))
    k_i = max(0, keep - n_x - n_e - n_m)

    b = _builder_with_registries(trace)
    for ex in trace.executions[:k_x]:
        # recv_event kept verbatim: ids >= k_e now dangle.
        b.add_execution(ex.chare, ex.entry, ex.pe, ex.start, ex.end,
                        recv_event=ex.recv_event)
    for ev in trace.events[:k_e]:
        b.add_event(ev.kind, ev.chare, ev.pe, ev.time, ev.execution)
    for msg in trace.messages[:k_m]:
        b.add_message(msg.send_event, msg.recv_event)
    for idle in trace.idles[:k_i]:
        b.add_idle(idle.pe, idle.start, idle.end)
    return b.build()


def drop_messages(trace: Trace, rng: random.Random, severity: float) -> Trace:
    """Lose a fraction of message records (dependencies go untraced)."""
    dropped = _sample(rng, [m.id for m in trace.messages], severity)
    return _rebuild(trace, keep_message=lambda m: m not in dropped)


def dup_messages(trace: Trace, rng: random.Random, severity: float) -> Trace:
    """Double-deliver a fraction of complete messages (recv reuse)."""
    complete = [m.id for m in trace.messages if m.is_complete()]
    doubled = _sample(rng, complete, severity)
    b = _builder_with_registries(trace)
    # Nothing is dropped, so every id survives unchanged; replay the
    # records verbatim plus one extra copy of each doubled message.
    for ex in trace.executions:
        b.add_execution(ex.chare, ex.entry, ex.pe, ex.start, ex.end,
                        recv_event=ex.recv_event)
    for ev in trace.events:
        b.add_event(ev.kind, ev.chare, ev.pe, ev.time, ev.execution)
    for msg in trace.messages:
        b.add_message(msg.send_event, msg.recv_event)
        if msg.id in doubled:
            b.add_message(msg.send_event, msg.recv_event)
    for idle in trace.idles:
        b.add_idle(idle.pe, idle.start, idle.end)
    return b.build()


def orphan_recv(trace: Trace, rng: random.Random, severity: float) -> Trace:
    """Lose a fraction of execution records, orphaning their events."""
    if not trace.executions:
        return trace
    dropped = _sample(rng, [ex.id for ex in trace.executions], severity)
    return _rebuild(trace, keep_exec=lambda x: x not in dropped)


def negative_duration(trace: Trace, rng: random.Random,
                      severity: float) -> Trace:
    """Corrupt a fraction of executions so ``end`` precedes ``start``."""
    positive = [ex.id for ex in trace.executions if ex.end > ex.start]
    corrupted = _sample(rng, positive, severity)
    spans = {
        x: (trace.executions[x].start,
            trace.executions[x].start
            - (trace.executions[x].end - trace.executions[x].start))
        for x in corrupted
    }
    return _rebuild(trace, exec_span=spans)


def clock_skew(trace: Trace, rng: random.Random, severity: float) -> Trace:
    """Shift each PE's clock by up to ``severity`` of the trace span."""
    from repro.trace.clocksync import apply_clock_skew

    span = max(trace.end_time(), 1.0)
    offsets = [0.0] + [
        rng.uniform(-1.0, 1.0) * severity * span
        for _ in range(max(trace.num_pes - 1, 0))
    ]
    return apply_clock_skew(trace, offsets)


#: Registry of injectors, keyed by the stable fault-kind name.
FAULTS: Dict[str, Callable[[Trace, random.Random, float], Trace]] = {
    "truncate": truncate,
    "drop_messages": drop_messages,
    "dup_messages": dup_messages,
    "orphan_recv": orphan_recv,
    "negative_duration": negative_duration,
    "clock_skew": clock_skew,
}

#: Stable, ordered fault-kind names (the ``repro faults`` choices).
FAULT_KINDS: Tuple[str, ...] = tuple(FAULTS)


def inject_fault(trace: Trace, kind: str, seed: int = 0,
                 severity: float = 0.25) -> Trace:
    """Return a corrupted copy of ``trace`` exhibiting one fault kind."""
    if kind not in FAULTS:
        raise ValueError(
            f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
        )
    # String seeding hashes via sha512 — stable across interpreter runs
    # (tuple seeding would go through salted hash()).
    rng = random.Random(f"{seed}:{kind}")
    return FAULTS[kind](trace, rng, severity)


def inject_faults(trace: Trace, kinds: Iterable[str], seed: int = 0,
                  severity: float = 0.25) -> Trace:
    """Apply several fault kinds in sequence (compound damage)."""
    for kind in kinds:
        trace = inject_fault(trace, kind, seed=seed, severity=severity)
    return trace


def fault_corpus(trace: Trace, kinds: Optional[Sequence[str]] = None,
                 seed: int = 0, severity: float = 0.25) -> Dict[str, Trace]:
    """One corrupted variant per fault kind — the standard test corpus."""
    return {
        kind: inject_fault(trace, kind, seed=seed, severity=severity)
        for kind in (kinds if kinds is not None else FAULT_KINDS)
    }
