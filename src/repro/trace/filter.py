"""Trace subsetting: time windows and chare selections.

Large traces are analyzed piecewise (the paper's complexity section
suggests out-of-core operation as future work); these helpers carve a
consistent sub-trace:

* executions outside the selection are dropped along with their events;
* messages keep their receive side when it survives — a send that was cut
  away leaves the receive *untraced*, exactly the missing-dependency shape
  the Section 3.1.4 inference handles, so sliced traces remain analyzable;
* idle intervals are clipped to time windows.
"""

from __future__ import annotations

from typing import Iterable

from repro.trace.events import NO_ID
from repro.trace.model import Trace, TraceBuilder


def slice_time(trace: Trace, start: float, end: float) -> Trace:
    """Keep executions that overlap the window ``[start, end]``."""
    if end < start:
        raise ValueError("end must be >= start")
    return _subset(
        trace,
        lambda ex: ex.end >= start and ex.start <= end,
        idle_clip=(start, end),
    )


def filter_chares(trace: Trace, chares: Iterable[int]) -> Trace:
    """Keep executions belonging to the given chare ids."""
    selected = set(chares)
    for c in selected:
        if not (0 <= c < len(trace.chares)):
            raise ValueError(f"unknown chare id {c}")
    return _subset(trace, lambda ex: ex.chare in selected)


def filter_application(trace: Trace) -> Trace:
    """Drop runtime chares' executions (the developers'-eye sub-trace)."""
    return _subset(trace, lambda ex: not trace.is_runtime_chare(ex.chare))


def _subset(trace: Trace, keep, idle_clip=None) -> Trace:
    b = TraceBuilder(num_pes=trace.num_pes, metadata=dict(trace.metadata))
    # Registries are copied wholesale (ids stay stable for chares/entries;
    # dropping unused registry rows would complicate cross-references for
    # no memory win at these scales).
    for entry in trace.entries:
        b.add_entry(entry.name, entry.chare_type, entry.is_sdag_serial,
                    entry.sdag_ordinal)
    for arr in trace.arrays:
        b.add_array(arr.name, arr.shape)
    for chare in trace.chares:
        b.add_chare(chare.name, chare.array_id, chare.index,
                    chare.is_runtime, chare.home_pe)

    exec_map = {}
    for ex in trace.executions:
        if keep(ex):
            exec_map[ex.id] = b.add_execution(
                ex.chare, ex.entry, ex.pe, ex.start, ex.end
            )
    event_map = {}
    for ev in trace.events:
        if ev.execution in exec_map:
            event_map[ev.id] = b.add_event(
                ev.kind, ev.chare, ev.pe, ev.time, exec_map[ev.execution]
            )
    for msg in trace.messages:
        recv = event_map.get(msg.recv_event)
        if recv is None:
            continue  # a message is anchored by its receive
        send = event_map.get(msg.send_event, NO_ID)
        b.add_message(send_event=send, recv_event=recv)
    # Re-link execution recv events.
    for old_id, new_id in exec_map.items():
        old_recv = trace.executions[old_id].recv_event
        if old_recv != NO_ID and old_recv in event_map:
            b.set_execution_recv(new_id, event_map[old_recv])

    for idle in trace.idles:
        if idle_clip is None:
            b.add_idle(idle.pe, idle.start, idle.end)
        else:
            lo = max(idle.start, idle_clip[0])
            hi = min(idle.end, idle_clip[1])
            if hi > lo:
                b.add_idle(idle.pe, lo, hi)
    return b.build()
