"""Columnar trace storage: dense NumPy columns plus a lazy :class:`Trace`.

The chunked reader (:func:`repro.trace.reader.read_trace_chunked`) parses
a JSONL trace directly into the per-record-type arrays of
:class:`TraceColumns` — no per-event dataclass objects on the hot path.
:class:`ColumnarTrace` wraps those columns in the full :class:`Trace`
API:

* ``events`` / ``executions`` / ``messages`` / ``idles`` are
  :class:`LazyRecordList` views that materialize a dataclass record only
  when one is actually indexed or iterated (the columnar pipeline never
  does on its hot path);
* the derived indexes (``events_by_execution``,
  ``executions_by_chare``, ...) are built **on first access**, each by a
  vectorized kernel that replays the exact insertion-and-sort order of
  :meth:`Trace._build_indexes` — the columnar pipeline only ever touches
  ``executions_by_chare``;
* the :class:`~repro.core.columnar.EventTable` / ``ExecTable`` caches are
  seeded straight from the columns (``EventTable.from_columns``), which
  removes the ``np.fromiter``-over-objects table build that dominated
  the million-event profile.

Bit-identity with the eager path is the contract: every index kernel
here reproduces the python loop's dict/list orders element for element,
and the differential twins in ``tests/test_streaming_ingest.py`` hold
the line.  Instances pickle compactly (arrays, not objects), so
pipeline checkpoints of a streamed trace double as stream snapshots.

This module must not import :mod:`repro.core` at import time (the core
imports the trace model); the table seeding imports lazily.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.trace.events import (
    NO_ID,
    Chare,
    ChareArray,
    DepEvent,
    EntryMethod,
    EventKind,
    Execution,
    IdleInterval,
    Message,
)
from repro.trace.model import Trace

#: Default number of execution rows per window when the initial-partition
#: scan runs incrementally over a streamed trace (see
#: :mod:`repro.core.streaming`).
DEFAULT_INGEST_WINDOW = 65536


class TraceColumns:
    """Dense columns of every bulk record type of one trace.

    Executions: ``ex_chare``/``ex_entry``/``ex_pe``/``ex_recv`` (int64),
    ``ex_start``/``ex_end`` (float64).  Events: ``ev_kind`` (int8),
    ``ev_chare``/``ev_pe``/``ev_exec`` (int64), ``ev_time`` (float64).
    Messages: ``msg_send``/``msg_recv`` (int64).  Idles: ``idle_pe``
    (int64), ``idle_start``/``idle_end`` (float64).  Row *i* of each
    family is the record with dense id *i*.
    """

    __slots__ = (
        "ex_chare", "ex_entry", "ex_pe", "ex_start", "ex_end", "ex_recv",
        "ev_kind", "ev_chare", "ev_pe", "ev_time", "ev_exec",
        "msg_send", "msg_recv",
        "idle_pe", "idle_start", "idle_end",
    )

    def __init__(self, ex_chare, ex_entry, ex_pe, ex_start, ex_end, ex_recv,
                 ev_kind, ev_chare, ev_pe, ev_time, ev_exec,
                 msg_send, msg_recv, idle_pe, idle_start, idle_end):
        self.ex_chare = ex_chare
        self.ex_entry = ex_entry
        self.ex_pe = ex_pe
        self.ex_start = ex_start
        self.ex_end = ex_end
        self.ex_recv = ex_recv
        self.ev_kind = ev_kind
        self.ev_chare = ev_chare
        self.ev_pe = ev_pe
        self.ev_time = ev_time
        self.ev_exec = ev_exec
        self.msg_send = msg_send
        self.msg_recv = msg_recv
        self.idle_pe = idle_pe
        self.idle_start = idle_start
        self.idle_end = idle_end

    @property
    def n_events(self) -> int:
        return len(self.ev_kind)

    @property
    def n_executions(self) -> int:
        return len(self.ex_chare)

    @property
    def n_messages(self) -> int:
        return len(self.msg_send)

    @property
    def n_idles(self) -> int:
        return len(self.idle_pe)

    def nbytes(self) -> int:
        """Total bytes held by the column arrays."""
        return sum(getattr(self, name).nbytes for name in self.__slots__)

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceColumns":
        """Columns extracted from an eager (object-backed) trace."""
        ex = trace.executions
        ev = trace.events
        msgs = trace.messages
        idles = trace.idles
        m, n, g, k = len(ex), len(ev), len(msgs), len(idles)
        return cls(
            ex_chare=np.fromiter((x.chare for x in ex), np.int64, m),
            ex_entry=np.fromiter((x.entry for x in ex), np.int64, m),
            ex_pe=np.fromiter((x.pe for x in ex), np.int64, m),
            ex_start=np.fromiter((x.start for x in ex), np.float64, m),
            ex_end=np.fromiter((x.end for x in ex), np.float64, m),
            ex_recv=np.fromiter((x.recv_event for x in ex), np.int64, m),
            ev_kind=np.fromiter((int(e.kind) for e in ev), np.int8, n),
            ev_chare=np.fromiter((e.chare for e in ev), np.int64, n),
            ev_pe=np.fromiter((e.pe for e in ev), np.int64, n),
            ev_time=np.fromiter((e.time for e in ev), np.float64, n),
            ev_exec=np.fromiter((e.execution for e in ev), np.int64, n),
            msg_send=np.fromiter((x.send_event for x in msgs), np.int64, g),
            msg_recv=np.fromiter((x.recv_event for x in msgs), np.int64, g),
            idle_pe=np.fromiter((x.pe for x in idles), np.int64, k),
            idle_start=np.fromiter((x.start for x in idles), np.float64, k),
            idle_end=np.fromiter((x.end for x in idles), np.float64, k),
        )


class LazyRecordList(Sequence):
    """Sequence view over columns that builds records on demand.

    Supports everything algorithm code does with the eager record lists
    — ``len``, indexing (negative and slice included), iteration — while
    holding no per-record objects.  Records are **rebuilt on every
    access**; they compare equal to their eager twins but are not
    identical across accesses, which is safe because nothing in the tree
    mutates records after a trace is built (the repair pass rebuilds via
    :class:`~repro.trace.model.TraceBuilder`).
    """

    __slots__ = ("columns", "_n")

    def __init__(self, columns: TraceColumns):
        self.columns = columns
        self._n = self._length(columns)

    @staticmethod
    def _length(columns: TraceColumns) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _make(self, i: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._make(j) for j in range(*i.indices(self._n))]
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError("list index out of range")
        return self._make(i)

    def __iter__(self):
        make = self._make
        for i in range(self._n):
            yield make(i)

    def __eq__(self, other):
        # Element-wise, so lazy lists compare equal to the eager lists
        # they mirror; list == LazyRecordList also lands here via
        # reflected dispatch (list.__eq__ returns NotImplemented).
        if isinstance(other, (list, tuple, Sequence)) and not isinstance(
                other, (str, bytes)):
            return self._n == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None  # mutable-sequence semantics, like list

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self._n})"


class ExecutionList(LazyRecordList):
    """Lazy ``trace.executions``."""

    __slots__ = ()

    @staticmethod
    def _length(columns: TraceColumns) -> int:
        return columns.n_executions

    def _make(self, i: int) -> Execution:
        c = self.columns
        return Execution(i, int(c.ex_chare[i]), int(c.ex_entry[i]),
                         int(c.ex_pe[i]), float(c.ex_start[i]),
                         float(c.ex_end[i]), int(c.ex_recv[i]))


class EventList(LazyRecordList):
    """Lazy ``trace.events``."""

    __slots__ = ()

    @staticmethod
    def _length(columns: TraceColumns) -> int:
        return columns.n_events

    def _make(self, i: int) -> DepEvent:
        c = self.columns
        return DepEvent(i, EventKind(int(c.ev_kind[i])), int(c.ev_chare[i]),
                        int(c.ev_pe[i]), float(c.ev_time[i]),
                        int(c.ev_exec[i]))


class MessageList(LazyRecordList):
    """Lazy ``trace.messages``."""

    __slots__ = ()

    @staticmethod
    def _length(columns: TraceColumns) -> int:
        return columns.n_messages

    def _make(self, i: int) -> Message:
        c = self.columns
        return Message(i, int(c.msg_send[i]), int(c.msg_recv[i]))


class IdleList(LazyRecordList):
    """Lazy ``trace.idles``."""

    __slots__ = ()

    @staticmethod
    def _length(columns: TraceColumns) -> int:
        return columns.n_idles

    def _make(self, i: int) -> IdleInterval:
        c = self.columns
        return IdleInterval(int(c.idle_pe[i]), float(c.idle_start[i]),
                            float(c.idle_end[i]))


# ----------------------------------------------------------------------
# Vectorized index kernels — each replays Trace._build_indexes exactly.
# ----------------------------------------------------------------------
def _wrap_refs(refs, n: int, eids):
    """Python-list index semantics for a column of list references.

    ``refs`` are raw reference values (``NO_ID`` already filtered out);
    negative values index from the end, like the eager loop's
    ``lst[ref]``; out-of-range values raise the same ``IndexError``.
    """
    wrapped = np.where(refs < 0, refs + n, refs)
    if len(wrapped) and bool(((wrapped < 0) | (wrapped >= n)).any()):
        raise IndexError("list index out of range")
    return wrapped, eids


def _events_by_execution(cols: TraceColumns) -> List[List[int]]:
    n_exec = cols.n_executions
    out: List[List[int]] = [[] for _ in range(n_exec)]
    refs = cols.ev_exec
    valid = refs != NO_ID
    if not bool(valid.any()):
        return out
    eids = np.flatnonzero(valid)
    wrapped, eids = _wrap_refs(refs[valid], n_exec, eids)
    # Per-execution lists sorted by (time, event id), exactly like the
    # eager append-then-sort.
    order = np.lexsort((eids, cols.ev_time[eids], wrapped))
    sx = wrapped[order]
    se = eids[order].tolist()
    starts = np.flatnonzero(np.r_[True, sx[1:] != sx[:-1]])
    ends = np.r_[starts[1:], len(sx)]
    for s, e in zip(starts.tolist(), ends.tolist()):
        out[int(sx[s])] = se[s:e]
    return out


def _messages_by_send(cols: TraceColumns) -> List[List[int]]:
    n_events = cols.n_events
    out: List[List[int]] = [[] for _ in range(n_events)]
    sends = cols.msg_send
    valid = sends != NO_ID
    if not bool(valid.any()):
        return out
    mids = np.flatnonzero(valid)
    wrapped, mids = _wrap_refs(sends[valid], n_events, mids)
    # Stable group-by preserves message-id append order within a send.
    order = np.argsort(wrapped, kind="stable")
    sx = wrapped[order]
    sm = mids[order].tolist()
    starts = np.flatnonzero(np.r_[True, sx[1:] != sx[:-1]])
    ends = np.r_[starts[1:], len(sx)]
    for s, e in zip(starts.tolist(), ends.tolist()):
        out[int(sx[s])] = sm[s:e]
    return out


def _message_by_recv(cols: TraceColumns) -> List[int]:
    n_events = cols.n_events
    arr = np.full(n_events, NO_ID, np.int64)
    recvs = cols.msg_recv
    valid = recvs != NO_ID
    if bool(valid.any()):
        mids = np.flatnonzero(valid)
        wrapped, mids = _wrap_refs(recvs[valid], n_events, mids)
        # Fancy assignment in message-id order: a later message
        # overwrites an earlier one, like the eager loop.
        arr[wrapped] = mids
    return arr.tolist()


def _grouped(order, keys_sorted, values_sorted):
    """(key, [values]) pairs from pre-sorted key/value arrays."""
    starts = np.flatnonzero(np.r_[True, keys_sorted[1:] != keys_sorted[:-1]])
    ends = np.r_[starts[1:], len(keys_sorted)]
    vals = values_sorted.tolist()
    for s, e in zip(starts.tolist(), ends.tolist()):
        yield int(keys_sorted[s]), vals[s:e]


def _executions_by_chare(cols: TraceColumns, n_chares: int) -> Dict[int, List[int]]:
    out: Dict[int, List[int]] = {cid: [] for cid in range(n_chares)}
    ch = cols.ex_chare
    m = len(ch)
    if m:
        bad = (ch < 0) | (ch >= n_chares)
        if bool(bad.any()):
            # The eager loop raises KeyError on the first execution whose
            # chare id is not a registry key.
            raise KeyError(int(ch[int(np.flatnonzero(bad)[0])]))
        xids = np.arange(m, dtype=np.int64)
        order = np.lexsort((xids, cols.ex_start, ch))
        for cid, vals in _grouped(order, ch[order], xids[order]):
            out[cid] = vals
    return out


def _by_pe(pe_col, sort_cols, values, num_pes: int) -> Dict[int, list]:
    """Grouped-by-PE dict with the eager key order: ``range(num_pes)``
    first, then out-of-range PEs in first-encounter (record id) order."""
    out: Dict[int, list] = {pe: [] for pe in range(num_pes)}
    m = len(pe_col)
    if not m:
        return out
    extra = (pe_col < 0) | (pe_col >= num_pes)
    if bool(extra.any()):
        for pe in pe_col[extra].tolist():
            out.setdefault(pe, [])
    order = np.lexsort(sort_cols + (pe_col,))
    for pe, vals in _grouped(order, pe_col[order], values[order]):
        out[pe] = vals
    return out


class ColumnarTrace(Trace):
    """A :class:`Trace` backed by :class:`TraceColumns`.

    The chare/entry/array registries are eager (they are small and the
    heuristics read their names); the bulk record lists are lazy views
    and every derived index is computed vectorized on first access.
    ``ingest_window`` (when set by the chunked reader) sizes the
    incremental windows of the streaming initial-partition scan.
    """

    #: Indexes (and table caches) served lazily by ``__getattr__``.
    _LAZY_ATTRS = frozenset({
        "events_by_execution", "messages_by_send", "message_by_recv",
        "executions_by_chare", "executions_by_pe", "idles_by_pe",
        "_columnar_table", "_columnar_execs",
    })

    def __init__(
        self,
        columns: TraceColumns,
        chares: List[Chare],
        entries: List[EntryMethod],
        arrays: List[ChareArray],
        num_pes: int,
        metadata: Optional[Dict[str, object]] = None,
        ingest_window: Optional[int] = DEFAULT_INGEST_WINDOW,
    ) -> None:
        self.columns = columns
        self.ingest_window = ingest_window
        super().__init__(
            chares=chares, entries=entries, arrays=arrays,
            executions=ExecutionList(columns), events=EventList(columns),
            messages=MessageList(columns), idles=IdleList(columns),
            num_pes=num_pes, metadata=metadata,
        )

    # Indexes are built lazily (see __getattr__); the columnar pipeline
    # only ever touches executions_by_chare, so eager construction would
    # waste both time and the memory of the per-event id lists.
    def _build_indexes(self) -> None:
        pass

    def __getattr__(self, name: str):
        if name not in ColumnarTrace._LAZY_ATTRS:
            raise AttributeError(name)
        cols = self.__dict__.get("columns")
        if cols is None:  # mid-unpickle: nothing to compute from yet
            raise AttributeError(name)
        value = self._compute_lazy(name, cols)
        setattr(self, name, value)
        return value

    def _compute_lazy(self, name: str, cols: TraceColumns):
        if name == "events_by_execution":
            return _events_by_execution(cols)
        if name == "messages_by_send":
            return _messages_by_send(cols)
        if name == "message_by_recv":
            return _message_by_recv(cols)
        if name == "executions_by_chare":
            return _executions_by_chare(cols, len(self.chares))
        if name == "executions_by_pe":
            xids = np.arange(cols.n_executions, dtype=np.int64)
            return _by_pe(cols.ex_pe, (xids, cols.ex_start), xids,
                          self.num_pes)
        if name == "idles_by_pe":
            # Values are IdleInterval records sorted stably by start.
            iids = np.arange(cols.n_idles, dtype=np.int64)
            by_pe = _by_pe(cols.idle_pe, (iids, cols.idle_start), iids,
                           self.num_pes)
            idles = self.idles
            return {pe: [idles[i] for i in ids] for pe, ids in by_pe.items()}
        # _columnar_table / _columnar_execs: seed the pipeline's cached
        # tables straight from the columns (imported lazily — the core
        # package imports this package).
        from repro.core.columnar import EventTable, ExecTable

        if name == "_columnar_table":
            return EventTable.from_columns(
                kind=cols.ev_kind, chare=cols.ev_chare, pe=cols.ev_pe,
                time=cols.ev_time, execution=cols.ev_exec,
                msg_send=cols.msg_send, msg_recv=cols.msg_recv,
            )
        assert name == "_columnar_execs"
        return ExecTable.from_columns(
            start=cols.ex_start, end=cols.ex_end, pe=cols.ex_pe,
            entry=cols.ex_entry, chare=cols.ex_chare,
            recv_event=cols.ex_recv, entries=self.entries,
        )

    def end_time(self) -> float:
        if not cols_len(self.columns.ex_end):
            return 0.0
        return float(self.columns.ex_end.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarTrace(chares={len(self.chares)}, "
            f"executions={self.columns.n_executions}, "
            f"events={self.columns.n_events}, "
            f"messages={self.columns.n_messages}, pes={self.num_pes})"
        )


def cols_len(arr) -> int:
    """len() of a column array (tiny helper to keep end_time readable)."""
    return int(arr.shape[0])
