"""Trace defect detection and repair (the ingestion-hardening pass).

Extraction assumes the physical-realizability invariants that
:func:`repro.trace.validate.validate_trace` checks; real traces break
them (see :mod:`repro.trace.faults` for the taxonomy).  This module sits
between ingestion and the pipeline:

* :func:`detect_defects` counts every violated invariant plus the
  defects the validator deliberately tolerates (orphan events);
* :func:`repair_trace` applies the *safe* subset of repairs — resetting
  dangling references, dropping orphans and duplicate deliveries,
  clamping corrupted execution spans, re-synchronizing skewed clocks —
  and reports everything it saw and did as a :class:`RepairReport`.

Repair is conservative by design: an action is taken only when it cannot
invent information (a dangling reference is provably wrong; a plausible
but unmatched message is left alone).  Defects with no safe repair are
surfaced in :attr:`RepairReport.residual` rather than guessed at.

The pipeline runs this pass when ``PipelineOptions.repair`` is ``"warn"``
(detect and report only) or ``"fix"`` (detect, repair, re-detect);
``"off"`` preserves the historical garbage-in/garbage-out behavior.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.trace.events import NO_ID
from repro.trace.model import Trace, TraceBuilder
from repro.trace.validate import Violation, collect_trace_problems

#: Repair modes accepted by ``PipelineOptions.repair``.
REPAIR_MODES = ("off", "warn", "fix")

#: Detection → applied-repair rounds before giving up on convergence
#: (each round can expose defects the previous one masked).
MAX_ROUNDS = 4


@dataclass
class RepairReport:
    """What the repair pass saw and did, as per-defect counts.

    ``detected`` counts defects in the incoming trace by invariant name
    (the validator's kebab-case names plus ``orphan-event``).
    ``repaired`` counts applied repair actions by action name.
    ``residual`` counts defects still present after repair (always empty
    in ``warn`` mode, which repairs nothing; nonempty in ``fix`` mode
    only when a defect has no safe repair).
    """

    mode: str = "off"
    detected: Dict[str, int] = field(default_factory=dict)
    repaired: Dict[str, int] = field(default_factory=dict)
    residual: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    changed: bool = False

    @property
    def clean(self) -> bool:
        """True when the incoming trace had no detected defects."""
        return not self.detected

    def summary(self) -> str:
        """One-line human-readable digest of the report."""
        if self.clean:
            return "clean trace: no defects detected"
        det = ", ".join(f"{k}={v}" for k, v in sorted(self.detected.items()))
        rep = ", ".join(f"{k}={v}" for k, v in sorted(self.repaired.items()))
        res = ", ".join(f"{k}={v}" for k, v in sorted(self.residual.items()))
        parts = [f"detected [{det}]"]
        if rep:
            parts.append(f"repaired [{rep}]")
        if res:
            parts.append(f"residual [{res}]")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "clean": self.clean,
            "detected": dict(self.detected),
            "repaired": dict(self.repaired),
            "residual": dict(self.residual),
            "rounds": self.rounds,
            "changed": self.changed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepairReport":
        """Inverse of :meth:`to_dict` (derived keys are ignored)."""
        return cls(
            mode=data.get("mode", "off"),
            detected=dict(data.get("detected", {})),
            repaired=dict(data.get("repaired", {})),
            residual=dict(data.get("residual", {})),
            rounds=int(data.get("rounds", 0)),
            changed=bool(data.get("changed", False)),
        )


class TraceRepairError(ValueError):
    """Raised for unusable repair modes (not for unrepairable traces)."""


def _orphan_events(trace: Trace) -> List[int]:
    """Events detached from any execution, in a trace that has executions.

    ``execution == NO_ID`` is legitimate only for the synthetic
    execution-free traces unit tests build; when execution records exist,
    a detached event means its owning record was lost.
    """
    if not trace.executions:
        return []
    return [ev.id for ev in trace.events if ev.execution == NO_ID]


def detect_defects(trace: Trace) -> Dict[str, int]:
    """Per-invariant defect counts (validator problems + orphan events)."""
    counts: Dict[str, int] = {}
    for violation in collect_trace_problems(trace):
        counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
    orphans = _orphan_events(trace)
    if orphans:
        counts["orphan-event"] = len(orphans)
    return counts


# ---------------------------------------------------------------------------
# The fix plan: one detection round's worth of safe repairs
# ---------------------------------------------------------------------------
@dataclass
class _Plan:
    drop_events: Set[int] = field(default_factory=set)
    drop_messages: Set[int] = field(default_factory=set)
    drop_execs: Set[int] = field(default_factory=set)
    reset_recv: Set[int] = field(default_factory=set)  # execution ids
    clamp_spans: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    drop_idles: bool = False
    synchronize: bool = False

    def structural(self) -> bool:
        return bool(self.drop_events or self.drop_messages or self.drop_execs
                    or self.reset_recv or self.clamp_spans or self.drop_idles)

    def empty(self) -> bool:
        return not (self.structural() or self.synchronize)


def _build_plan(trace: Trace, problems: List[Violation],
                actions: Dict[str, int]) -> _Plan:
    """Map one round of detected problems to safe repair actions."""
    plan = _Plan()

    def act(name: str, n: int = 1) -> None:
        actions[name] = actions.get(name, 0) + n

    n_events = len(trace.events)
    seen_recv: Set[int] = set()
    for msg in trace.messages:
        if msg.recv_event != NO_ID and 0 <= msg.recv_event < n_events:
            if msg.recv_event in seen_recv:
                plan.drop_messages.add(msg.id)
                act("drop-duplicate-message")
            seen_recv.add(msg.recv_event)

    skew = 0
    for v in problems:
        if v.invariant in ("exec-recv",):
            exec_id = v.subjects[0]
            if exec_id not in plan.reset_recv:
                plan.reset_recv.add(exec_id)
                act("reset-dangling-recv")
        elif v.invariant in ("exec-span", "event-span"):
            # Clamp the execution span to cover its events (and never be
            # negative); handled uniformly below via clamp_spans.
            exec_id = v.subjects[0] if v.invariant == "exec-span" else v.subjects[1]
            plan.clamp_spans.setdefault(exec_id, (0.0, 0.0))
        elif v.invariant == "message-ids":
            plan.drop_messages.add(v.subjects[0])
            act("drop-bad-message")
        elif v.invariant == "message-endpoints":
            if v.subjects[0] not in plan.drop_messages:
                plan.drop_messages.add(v.subjects[0])
                act("drop-bad-message")
        elif v.invariant == "recv-after-send":
            skew += 1
        elif v.invariant == "idle-span":
            plan.drop_idles = True
        elif v.invariant in ("event-ids", "event-chare"):
            if v.subjects[0] not in plan.drop_events:
                plan.drop_events.add(v.subjects[0])
                act("drop-bad-event")
        elif v.invariant == "exec-ids":
            if v.subjects[0] not in plan.drop_execs:
                plan.drop_execs.add(v.subjects[0])
                act("drop-bad-exec")
        # recv-unique handled by the duplicate scan; pe-overlap has no
        # safe structural repair (synchronization may still remove it
        # when it stems from skew).

    for ev_id in _orphan_events(trace):
        if ev_id not in plan.drop_events:
            plan.drop_events.add(ev_id)
            act("drop-orphan-event")

    # Resolve the span clamps now that the full drop set is known.
    resolved: Dict[int, Tuple[float, float]] = {}
    for exec_id in plan.clamp_spans:
        if exec_id in plan.drop_execs or not (0 <= exec_id < len(trace.executions)):
            continue
        ex = trace.executions[exec_id]
        times = [trace.events[e].time for e in trace.events_of(exec_id)
                 if e not in plan.drop_events]
        lo = min([ex.start] + times)
        hi = max([ex.start] + times + ([ex.end] if ex.end >= ex.start else []))
        resolved[exec_id] = (lo, hi)
        act("clamp-exec-span")
    plan.clamp_spans = resolved

    if skew and not plan.structural():
        # Only synchronize once the structure is sound: offset estimation
        # walks messages/executions and should see repaired records.
        plan.synchronize = True
        act("synchronize-clocks")
    return plan


def _apply_plan(trace: Trace, plan: _Plan) -> Trace:
    """Rebuild the trace with the plan's drops/resets/clamps applied."""
    b = TraceBuilder(num_pes=trace.num_pes, metadata=dict(trace.metadata))
    for entry in trace.entries:
        b.add_entry(entry.name, entry.chare_type, entry.is_sdag_serial,
                    entry.sdag_ordinal)
    for arr in trace.arrays:
        b.add_array(arr.name, arr.shape)
    for chare in trace.chares:
        b.add_chare(chare.name, chare.array_id, chare.index,
                    chare.is_runtime, chare.home_pe)

    n_events = len(trace.events)
    exec_map: Dict[int, int] = {}
    for ex in trace.executions:
        if ex.id in plan.drop_execs:
            continue
        start, end = plan.clamp_spans.get(ex.id, (ex.start, ex.end))
        if end < start:  # no events to clamp to: collapse to a point
            start, end = min(start, end), min(start, end)
        exec_map[ex.id] = b.add_execution(ex.chare, ex.entry, ex.pe,
                                          start, end, recv_event=NO_ID)

    event_map: Dict[int, int] = {}
    for ev in trace.events:
        if ev.id in plan.drop_events:
            continue
        owner = exec_map.get(ev.execution, NO_ID)
        if ev.execution != NO_ID and owner == NO_ID:
            continue  # owning execution dropped: the event goes with it
        event_map[ev.id] = b.add_event(ev.kind, ev.chare, ev.pe, ev.time,
                                       owner)

    for ex in trace.executions:
        new_id = exec_map.get(ex.id)
        if new_id is None or ex.id in plan.reset_recv:
            continue
        recv = ex.recv_event
        if recv == NO_ID:
            continue
        mapped = event_map.get(recv) if 0 <= recv < n_events else None
        if mapped is not None:
            b.set_execution_recv(new_id, mapped)

    for msg in trace.messages:
        if msg.id in plan.drop_messages:
            continue
        send = (event_map.get(msg.send_event, NO_ID)
                if 0 <= msg.send_event < n_events else NO_ID)
        recv = (event_map.get(msg.recv_event, NO_ID)
                if 0 <= msg.recv_event < n_events else NO_ID)
        if msg.recv_event != NO_ID and recv == NO_ID:
            continue
        if send == NO_ID and recv == NO_ID:
            continue
        b.add_message(send_event=send, recv_event=recv)

    if not plan.drop_idles:
        for idle in trace.idles:
            b.add_idle(idle.pe, idle.start, idle.end)
    else:
        for idle in trace.idles:
            if idle.end > idle.start:
                b.add_idle(idle.pe, idle.start, idle.end)
    return b.build()


def repair_trace(
    trace: Trace, mode: str = "fix", max_rounds: int = MAX_ROUNDS
) -> Tuple[Trace, RepairReport]:
    """Detect (and in ``"fix"`` mode repair) trace defects.

    Returns ``(trace, report)``.  ``"off"`` returns the input untouched
    with an empty report; ``"warn"`` detects and reports but never
    modifies; ``"fix"`` iterates detect→repair→re-detect until the trace
    is clean or no safe action remains, then reports what is left as
    :attr:`RepairReport.residual`.  A clean input is returned unchanged
    (``report.changed`` is False) — repair never perturbs good traces.
    """
    if mode not in REPAIR_MODES:
        raise TraceRepairError(
            f"unknown repair mode {mode!r}; expected one of {REPAIR_MODES}"
        )
    report = RepairReport(mode=mode)
    if mode == "off":
        return trace, report

    report.detected = detect_defects(trace)
    if mode == "warn" or not report.detected:
        return trace, report

    current = trace
    for _ in range(max_rounds):
        problems = collect_trace_problems(current)
        if not problems and not _orphan_events(current):
            break
        plan = _build_plan(current, problems, report.repaired)
        if plan.empty():
            break  # nothing safe left to do
        report.rounds += 1
        if plan.synchronize:
            from repro.trace.clocksync import synchronize_trace

            current, _ = synchronize_trace(current)
        else:
            current = _apply_plan(current, plan)
        report.changed = True
    report.residual = detect_defects(current)
    return current, report


def warn_on_defects(report: RepairReport, stacklevel: int = 2) -> None:
    """Emit the standard ``RuntimeWarning`` for a dirty ``warn``-mode run."""
    if not report.clean and report.mode == "warn":
        warnings.warn(
            f"trace defects detected (repair='warn'): {report.summary()}",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
