"""Deserialize traces written by :mod:`repro.trace.writer`.

Records may appear in any order after the header; ids are authoritative and
must be dense (0..n-1 per record type), which is what the writer emits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Union

from repro.trace.events import (
    Chare,
    ChareArray,
    DepEvent,
    EntryMethod,
    EventKind,
    Execution,
    IdleInterval,
    Message,
)
from repro.trace.model import Trace


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def read_trace(path: Union[str, Path, IO[str]]) -> Trace:
    """Read a trace from ``path`` (a filesystem path or open text stream)."""
    if hasattr(path, "read"):
        return _read_stream(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read_stream(fh)


def _read_stream(fh: IO[str]) -> Trace:
    header = None
    entries: Dict[int, EntryMethod] = {}
    arrays: Dict[int, ChareArray] = {}
    chares: Dict[int, Chare] = {}
    executions: Dict[int, Execution] = {}
    events: Dict[int, DepEvent] = {}
    messages: Dict[int, Message] = {}
    idles: List[IdleInterval] = []

    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        kind = rec.get("t")
        if kind == "header":
            header = rec
        elif kind == "entry":
            entries[rec["id"]] = EntryMethod(
                rec["id"], rec["name"], rec.get("ct", ""), rec.get("sdag", False), rec.get("ord", -1)
            )
        elif kind == "array":
            arrays[rec["id"]] = ChareArray(rec["id"], rec["name"], tuple(rec.get("shape", ())))
        elif kind == "chare":
            chares[rec["id"]] = Chare(
                rec["id"],
                rec["name"],
                rec.get("arr", -1),
                tuple(rec.get("idx", ())),
                rec.get("rt", False),
                rec.get("pe", 0),
            )
        elif kind == "exec":
            executions[rec["id"]] = Execution(
                rec["id"], rec["c"], rec["e"], rec["pe"], rec["s"], rec["x"], rec.get("rv", -1)
            )
        elif kind == "event":
            events[rec["id"]] = DepEvent(
                rec["id"], EventKind(rec["k"]), rec["c"], rec["pe"], rec["tm"], rec.get("ex", -1)
            )
        elif kind == "msg":
            messages[rec["id"]] = Message(rec["id"], rec.get("s", -1), rec.get("r", -1))
        elif kind == "idle":
            idles.append(IdleInterval(rec["pe"], rec["s"], rec["x"]))
        else:
            raise TraceFormatError(f"line {lineno}: unknown record type {kind!r}")

    if header is None:
        raise TraceFormatError("missing header record")

    return Trace(
        chares=_densify(chares, "chare"),
        entries=_densify(entries, "entry"),
        arrays=_densify(arrays, "array"),
        executions=_densify(executions, "exec"),
        events=_densify(events, "event"),
        messages=_densify(messages, "msg"),
        idles=idles,
        num_pes=header["num_pes"],
        metadata=header.get("metadata", {}),
    )


def _densify(records: Dict[int, object], label: str) -> list:
    out = []
    for i in range(len(records)):
        if i not in records:
            raise TraceFormatError(f"{label} ids are not dense: missing id {i}")
        out.append(records[i])
    return out
