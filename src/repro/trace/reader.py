"""Deserialize traces written by :mod:`repro.trace.writer`.

Records may appear in any order after the header; ids are authoritative and
must be dense (0..n-1 per record type), which is what the writer emits.

Two readers share the format:

* :func:`read_trace` — the eager reader: every record becomes a dataclass
  object and the result is a fully indexed object-backed
  :class:`~repro.trace.model.Trace`.
* :func:`read_trace_chunked` — the streaming reader: the file is parsed
  in fixed-size chunks straight into growable columnar buffers
  (:class:`~repro.trace.columns.TraceColumns`) with **no per-record
  dataclass on the hot path**, and the result is a lazy
  :class:`~repro.trace.columns.ColumnarTrace`.  Peak transient memory is
  one chunk of staged rows regardless of trace length; the output
  columns are ~50 bytes/record instead of several hundred per dataclass.
  Results are bit-identical to the eager reader (differential twins in
  ``tests/test_streaming_ingest.py``).

Each chunk first tries a batched fast path.  Because the writer emits
records in sections (all execs, then all events, ...), most chunks hold
lines of a single kind: those are validated wholesale by one capture-free
anchored regular expression matching the writer's exact line layout, then
parsed numerically at C speed (token stripping + one vectorized
str→float64 pass).  Mixed chunks at section boundaries fall back to per-kind capture
regexes.  Any line neither path can account for — foreign field order,
malformed JSON, a torn final chunk — sends the whole chunk through the
per-line ``json.loads`` slow path, which also produces precise errors: a
:class:`TraceFormatError` from the chunked reader carries the record
``kind``, the 1-based ``line``, and the absolute byte ``offset`` of the
offending line.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from repro.trace.events import (
    Chare,
    ChareArray,
    DepEvent,
    EntryMethod,
    EventKind,
    Execution,
    IdleInterval,
    Message,
)
from repro.trace.model import Trace

try:  # Same soft dependency policy as repro.core.columnar.
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised only in numpy-less installs
    np = None
    HAVE_NUMPY = False

#: Bytes of trace text buffered per chunk by :func:`read_trace_chunked`.
DEFAULT_CHUNK_BYTES = 4 << 20


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed.

    The chunked reader populates the structured fields: ``kind`` is the
    record type being parsed (None when it could not be determined),
    ``line`` the 1-based line number, and ``offset`` the absolute byte
    offset of the start of the offending line.
    """

    def __init__(self, message: str, *, kind: Optional[str] = None,
                 line: Optional[int] = None, offset: Optional[int] = None):
        super().__init__(message)
        self.kind = kind
        self.line = line
        self.offset = offset


def read_trace(path: Union[str, Path, IO[str]]) -> Trace:
    """Read a trace from ``path`` (a filesystem path or open text stream)."""
    if hasattr(path, "read"):
        return _read_stream(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read_stream(fh)


def _read_stream(fh: IO[str]) -> Trace:
    header = None
    entries: Dict[int, EntryMethod] = {}
    arrays: Dict[int, ChareArray] = {}
    chares: Dict[int, Chare] = {}
    executions: Dict[int, Execution] = {}
    events: Dict[int, DepEvent] = {}
    messages: Dict[int, Message] = {}
    idles: List[IdleInterval] = []

    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: invalid JSON: {exc}",
                                   line=lineno) from exc
        kind = rec.get("t")
        if kind == "header":
            header = rec
        elif kind == "entry":
            entries[rec["id"]] = EntryMethod(
                rec["id"], rec["name"], rec.get("ct", ""), rec.get("sdag", False), rec.get("ord", -1)
            )
        elif kind == "array":
            arrays[rec["id"]] = ChareArray(rec["id"], rec["name"], tuple(rec.get("shape", ())))
        elif kind == "chare":
            chares[rec["id"]] = Chare(
                rec["id"],
                rec["name"],
                rec.get("arr", -1),
                tuple(rec.get("idx", ())),
                rec.get("rt", False),
                rec.get("pe", 0),
            )
        elif kind == "exec":
            executions[rec["id"]] = Execution(
                rec["id"], rec["c"], rec["e"], rec["pe"], rec["s"], rec["x"], rec.get("rv", -1)
            )
        elif kind == "event":
            events[rec["id"]] = DepEvent(
                rec["id"], EventKind(rec["k"]), rec["c"], rec["pe"], rec["tm"], rec.get("ex", -1)
            )
        elif kind == "msg":
            messages[rec["id"]] = Message(rec["id"], rec.get("s", -1), rec.get("r", -1))
        elif kind == "idle":
            idles.append(IdleInterval(rec["pe"], rec["s"], rec["x"]))
        else:
            raise TraceFormatError(f"line {lineno}: unknown record type {kind!r}",
                                   kind=None if kind is None else str(kind),
                                   line=lineno)

    if header is None:
        raise TraceFormatError("missing header record")

    return Trace(
        chares=_densify(chares, "chare"),
        entries=_densify(entries, "entry"),
        arrays=_densify(arrays, "array"),
        executions=_densify(executions, "exec"),
        events=_densify(events, "event"),
        messages=_densify(messages, "msg"),
        idles=idles,
        num_pes=header["num_pes"],
        metadata=header.get("metadata", {}),
    )


def _densify(records: Dict[int, object], label: str) -> list:
    out = []
    for i in range(len(records)):
        if i not in records:
            raise TraceFormatError(
                f"{label} ids are not dense: missing id {i}", kind=label
            )
        out.append(records[i])
    return out


# ----------------------------------------------------------------------
# Chunked columnar reader
# ----------------------------------------------------------------------
@dataclass
class ReaderStats:
    """Telemetry of one :func:`read_trace_chunked` run.

    ``peak_chunk_bytes`` / ``peak_chunk_records`` bound the transient
    staging memory: for a fixed ``chunk_bytes`` they are independent of
    total trace length (the bounded-memory property test pins this).
    """

    chunks: int = 0
    lines: int = 0
    records: int = 0
    #: Chunks that fell back to the per-line json.loads slow path.
    slow_chunks: int = 0
    peak_chunk_bytes: int = 0
    peak_chunk_records: int = 0


# JSON number per the grammar json.dumps emits (plus the non-standard
# Infinity/NaN the stdlib allows); anything else falls back to the
# per-line slow path, never to a laxer parse.
_NUM = r"(-?(?:0|[1-9]\d*)(?:\.\d+)?(?:[eE][-+]?\d+)?|-?Infinity|NaN)"
_INT = r"(-?\d+)"

_EVENT_RE = re.compile(
    r'^\{"t": "event", "id": %s, "k": %s, "c": %s, "pe": %s, "tm": %s, '
    r'"ex": %s\}$' % (_INT, _INT, _INT, _INT, _NUM, _INT), re.M)
_EXEC_RE = re.compile(
    r'^\{"t": "exec", "id": %s, "c": %s, "e": %s, "pe": %s, "s": %s, '
    r'"x": %s, "rv": %s\}$' % (_INT, _INT, _INT, _INT, _NUM, _NUM, _INT), re.M)
_MSG_RE = re.compile(
    r'^\{"t": "msg", "id": %s, "s": %s, "r": %s\}$' % (_INT, _INT, _INT),
    re.M)
_IDLE_RE = re.compile(
    r'^\{"t": "idle", "pe": %s, "s": %s, "x": %s\}$' % (_INT, _NUM, _NUM),
    re.M)
#: Registry/header lines are few; they are matched wholesale here and
#: handed to json.loads individually.
_OTHER_RE = re.compile(r'^\{"t": "(?:header|entry|array|chare)", .*\}$', re.M)
_BLANK_RE = re.compile(r"^[ \t\r]*$", re.M)

#: Largest integer magnitude that survives a float64 round-trip exactly.
#: The single-kind numeric parse goes through float64; int columns above
#: this bound are re-parsed by a slower exact path instead.
_INT_EXACT = 1 << 53


class _TurboKind:
    """Single-kind chunk recipe: validation regex + token strip plan."""

    __slots__ = ("prefix", "tokens", "casts", "validate")

    def __init__(self, tag: str, keys, casts: str):
        num_nc = r"(?:-?(?:0|[1-9]\d*)(?:\.\d+)?(?:[eE][-+]?\d+)?|-?Infinity|NaN)"
        int_nc = r"(?:-?\d+)"
        self.prefix = '{"t": "%s", "%s": ' % (tag, keys[0])
        self.tokens = tuple(', "%s": ' % k for k in keys[1:])
        self.casts = casts
        line = r'\{"t": "%s"' % tag + "".join(
            r', "%s": %s' % (k, int_nc if c == "i" else num_nc)
            for k, c in zip(keys, casts)
        ) + r"\}"
        self.validate = re.compile(r"(?:%s\n)*(?:%s\n?)?" % (line, line))


#: Per-kind turbo recipes, keyed like the builder's column families.
_TURBO = {
    "event": _TurboKind("event", ("id", "k", "c", "pe", "tm", "ex"), "iiiifi"),
    "exec": _TurboKind("exec", ("id", "c", "e", "pe", "s", "x", "rv"),
                       "iiiiffi"),
    "msg": _TurboKind("msg", ("id", "s", "r"), "iii"),
    "idle": _TurboKind("idle", ("pe", "s", "x"), "iff"),
}
_REGISTRY_PREFIXES = ('{"t": "header"', '{"t": "entry"', '{"t": "array"',
                      '{"t": "chare"')


class _GrowColumn:
    """Append-only NumPy column with doubling capacity."""

    __slots__ = ("_arr", "n")

    def __init__(self, dtype):
        self._arr = np.empty(0, dtype)
        self.n = 0

    def extend(self, values) -> None:
        k = len(values)
        if not k:
            return
        need = self.n + k
        cap = len(self._arr)
        if need > cap:
            cap = max(cap * 2, need, 1024)
            grown = np.empty(cap, self._arr.dtype)
            grown[:self.n] = self._arr[:self.n]
            self._arr = grown
        self._arr[self.n:need] = values
        self.n = need

    def array(self):
        return self._arr[:self.n].copy()


class _ChunkedBuilder:
    """Accumulates parsed chunks into columnar buffers, then finalizes."""

    def __init__(self, stats: ReaderStats):
        self.stats = stats
        self.header: Optional[dict] = None
        self.entries: Dict[int, EntryMethod] = {}
        self.arrays: Dict[int, ChareArray] = {}
        self.chares: Dict[int, Chare] = {}
        i8, f8 = np.int64, np.float64
        self.ev = tuple(_GrowColumn(t) for t in (i8, i8, i8, i8, f8, i8))
        self.ex = tuple(_GrowColumn(t) for t in (i8, i8, i8, i8, f8, f8, i8))
        self.msg = tuple(_GrowColumn(i8) for _ in range(3))
        self.idle = tuple(_GrowColumn(t) for t in (i8, f8, f8))
        self._lineno = 0  # lines consumed before the current chunk
        self._offset = 0  # bytes consumed before the current chunk

    # -- chunk ingestion ------------------------------------------------
    def feed_chunk(self, lines: List) -> None:
        """Parse one chunk (a list of raw lines, bytes or str)."""
        if not lines:
            return
        # One C-level join serves both the byte accounting and the
        # whole-chunk text the fast paths scan.
        if isinstance(lines[0], bytes):
            joined = b"".join(lines)
            nbytes = len(joined)
            try:
                text = joined.decode("utf-8")
            except UnicodeDecodeError:
                text = None
        else:
            text = "".join(lines)
            nbytes = len(text.encode("utf-8"))
        self.stats.chunks += 1
        self.stats.lines += len(lines)
        self.stats.peak_chunk_bytes = max(self.stats.peak_chunk_bytes, nbytes)
        if text is None or not self._feed_fast(text, len(lines)):
            self.stats.slow_chunks += 1
            self._feed_slow(lines)
        self._lineno += len(lines)
        self._offset += nbytes

    def _cols_of(self, kind: str):
        return {"event": self.ev, "exec": self.ex, "msg": self.msg,
                "idle": self.idle}[kind]

    def _feed_fast(self, text: str, nlines: int) -> bool:
        """Batched parse of a whole chunk; False to request the slow path
        (nothing is committed in that case)."""
        counts = {kind: text.count(tk.prefix) for kind, tk in _TURBO.items()}
        registry_lines = any(text.count(p) for p in _REGISTRY_PREFIXES)
        active = [kind for kind, n in counts.items() if n]
        # The writer emits records in per-kind sections, so almost every
        # chunk is pure: one bulk kind, no registry lines, no blanks.
        # Those parse without per-line (or even per-record) python work.
        if len(active) == 1 and not registry_lines \
                and counts[active[0]] == nlines:
            arrays = self._parse_single_kind(text, nlines, active[0])
            if arrays is not None:
                for col, arr in zip(self._cols_of(active[0]), arrays):
                    col.extend(arr)
                self.stats.records += nlines
                self.stats.peak_chunk_records = max(
                    self.stats.peak_chunk_records, nlines)
                return True
        return self._feed_mixed(text, nlines)

    def _parse_single_kind(self, text: str, n: int, kind: str):
        """Validate + numerically parse a pure single-kind chunk.

        Returns the per-column arrays, or None when the chunk is not
        exactly ``n`` writer-layout lines of ``kind`` (or holds numbers a
        float64 pass cannot carry exactly).
        """
        tk = _TURBO[kind]
        if tk.validate.fullmatch(text) is None:
            return None
        stripped = text.replace(tk.prefix, "")
        for token in tk.tokens:
            stripped = stripped.replace(token, " ")
        stripped = stripped.replace("}\n", "\n")
        if stripped.endswith("}"):
            stripped = stripped[:-1]
        ncols = len(tk.casts)
        try:
            # One vectorized str->float64 pass over the split tokens.
            # (Replaces the deprecated ``np.fromstring(..., sep=" ")``;
            # both parse with correctly-rounded strtod semantics, so the
            # values are bit-identical — pinned by the chunk-size
            # invariance twins.  fromstring silently stopped at a bad
            # token and the size check below caught it; np.array raises
            # instead, which lands on the same slow-path re-parse.)
            flat = np.array(stripped.split(), dtype=np.float64)
        except ValueError:
            return None  # token the vectorized parser rejected
        if flat.size != n * ncols:
            return None  # record layout the column count doesn't explain
        table = flat.reshape(n, ncols)
        arrays = []
        for j, cast in enumerate(tk.casts):
            col = table[:, j]
            if cast == "i":
                if not (np.abs(col) < _INT_EXACT).all():
                    return None  # needs exact integer re-parse
                as_int = col.astype(np.int64)
                arrays.append(as_int)
            else:
                arrays.append(col.copy())
        return arrays

    def _feed_mixed(self, text: str, nlines: int) -> bool:
        """Per-kind capture-regex parse for section-boundary chunks."""
        events = _EVENT_RE.findall(text)
        execs = _EXEC_RE.findall(text)
        msgs = _MSG_RE.findall(text)
        idles = _IDLE_RE.findall(text)
        others = _OTHER_RE.findall(text)
        blanks = len(_BLANK_RE.findall(text))
        if text.endswith("\n"):
            blanks -= 1  # the phantom empty line after the final newline
        matched = (len(events) + len(execs) + len(msgs) + len(idles)
                   + len(others) + blanks)
        if matched != nlines:
            return False  # some line the writer layout doesn't explain
        # Stage everything before committing so a failed registry line
        # cannot leave half a chunk behind for the slow path to repeat.
        staged = []
        registry = []
        try:
            for matches, cols, casts in (
                (events, self.ev, "iiiifi"),
                (execs, self.ex, "iiiiffi"),
                (msgs, self.msg, "iii"),
                (idles, self.idle, "iff"),
            ):
                if not matches:
                    continue
                k = len(matches)
                raw_cols = zip(*matches)
                for col, cast, raw in zip(cols, casts, raw_cols):
                    if cast == "i":
                        staged.append((col, np.fromiter(
                            map(int, raw), np.int64, count=k)))
                    else:
                        staged.append((col, np.fromiter(
                            map(float, raw), np.float64, count=k)))
            for line in others:
                registry.append(self._registry_entry(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            return False  # odd literal or registry field: reparse slowly
        for col, arr in staged:
            col.extend(arr)
        for target, key, value in registry:
            if target is None:
                self.header = value
            else:
                target[key] = value
        recs = matched - blanks
        self.stats.records += recs
        self.stats.peak_chunk_records = max(self.stats.peak_chunk_records,
                                            recs)
        return True

    def _feed_slow(self, lines: List) -> None:
        """Per-line json.loads parse with precise error reporting.

        Only reached for chunks the fast path could not fully account
        for: foreign producers, torn/truncated lines, malformed JSON.
        Rows are staged per kind and committed in one flush, so the
        columns see the same per-kind append order as the fast path.
        """
        ev_stage = tuple([] for _ in range(6))
        ex_stage = tuple([] for _ in range(7))
        msg_stage = tuple([] for _ in range(3))
        idle_stage = tuple([] for _ in range(3))
        lineno = self._lineno
        offset = self._offset
        recs = 0
        for raw in lines:
            lineno += 1
            stripped = raw.strip()
            if not stripped:
                offset += _byte_len(raw)
                continue
            try:
                rec = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"line {lineno} (byte {offset}): invalid JSON: {exc}",
                    line=lineno, offset=offset,
                ) from exc
            kind = rec.get("t")
            try:
                if kind == "event":
                    for stage, value in zip(ev_stage, (
                            rec["id"], rec["k"], rec["c"], rec["pe"],
                            rec["tm"], rec.get("ex", -1))):
                        stage.append(value)
                elif kind == "exec":
                    for stage, value in zip(ex_stage, (
                            rec["id"], rec["c"], rec["e"], rec["pe"],
                            rec["s"], rec["x"], rec.get("rv", -1))):
                        stage.append(value)
                elif kind == "msg":
                    for stage, value in zip(msg_stage, (
                            rec["id"], rec.get("s", -1), rec.get("r", -1))):
                        stage.append(value)
                elif kind == "idle":
                    for stage, value in zip(idle_stage, (
                            rec["pe"], rec["s"], rec["x"])):
                        stage.append(value)
                elif kind in ("header", "entry", "array", "chare"):
                    self._registry(rec)
                else:
                    raise TraceFormatError(
                        f"line {lineno} (byte {offset}): unknown record "
                        f"type {kind!r}",
                        kind=None if kind is None else str(kind),
                        line=lineno, offset=offset,
                    )
            except KeyError as exc:
                raise TraceFormatError(
                    f"line {lineno} (byte {offset}): {kind} record missing "
                    f"field {exc}",
                    kind=kind, line=lineno, offset=offset,
                ) from exc
            recs += 1
            offset += _byte_len(raw)
        for cols, stages in ((self.ev, ev_stage), (self.ex, ex_stage),
                             (self.msg, msg_stage), (self.idle, idle_stage)):
            for col, stage in zip(cols, stages):
                col.extend(stage)
        self.stats.records += recs
        self.stats.peak_chunk_records = max(self.stats.peak_chunk_records,
                                            recs)

    def _registry_entry(self, rec: dict):
        """Parse a registry record into a pending ``(dict, key, value)``
        assignment (dict None for the header) without committing it."""
        kind = rec["t"]
        if kind == "header":
            return None, None, rec
        if kind == "entry":
            return self.entries, rec["id"], EntryMethod(
                rec["id"], rec["name"], rec.get("ct", ""),
                rec.get("sdag", False), rec.get("ord", -1))
        if kind == "array":
            return self.arrays, rec["id"], ChareArray(
                rec["id"], rec["name"], tuple(rec.get("shape", ())))
        return self.chares, rec["id"], Chare(
            rec["id"], rec["name"], rec.get("arr", -1),
            tuple(rec.get("idx", ())), rec.get("rt", False),
            rec.get("pe", 0))

    def _registry(self, rec: dict) -> None:
        target, key, value = self._registry_entry(rec)
        if target is None:
            self.header = value
        else:
            target[key] = value

    # -- finalization ---------------------------------------------------
    def build(self, ingest_window: Optional[int]) -> Trace:
        from repro.trace.columns import ColumnarTrace, TraceColumns

        if self.header is None:
            raise TraceFormatError("missing header record")
        ev = _reorder_by_id("event", self.ev)
        ex = _reorder_by_id("exec", self.ex)
        msg = _reorder_by_id("msg", self.msg)
        columns = TraceColumns(
            ex_chare=ex[1], ex_entry=ex[2], ex_pe=ex[3],
            ex_start=ex[4], ex_end=ex[5], ex_recv=ex[6],
            ev_kind=ev[1].astype(np.int8), ev_chare=ev[2], ev_pe=ev[3],
            ev_time=ev[4], ev_exec=ev[5],
            msg_send=msg[1], msg_recv=msg[2],
            idle_pe=self.idle[0].array(), idle_start=self.idle[1].array(),
            idle_end=self.idle[2].array(),
        )
        return ColumnarTrace(
            columns,
            chares=_densify(self.chares, "chare"),
            entries=_densify(self.entries, "entry"),
            arrays=_densify(self.arrays, "array"),
            num_pes=self.header["num_pes"],
            metadata=self.header.get("metadata", {}),
            ingest_window=ingest_window,
        )


def _reorder_by_id(label: str, cols) -> list:
    """Arrange a record family's columns in dense-id order.

    Replays the eager reader's dict semantics: a duplicate id keeps the
    last record seen, and the distinct ids must be dense (0..d-1) — the
    density failure message matches :func:`_densify` exactly.
    """
    ids = cols[0].array()
    n = len(ids)
    out = [col.array() for col in cols]
    if not n:
        return out
    # Writer-emitted files carry ids 0..n-1 in order: nothing to do.
    if (int(ids[0]) == 0 and int(ids[-1]) == n - 1
            and bool((ids[1:] > ids[:-1]).all())):
        return out
    uniq = np.unique(ids)
    d = len(uniq)
    present = np.isin(np.arange(d, dtype=np.int64), uniq)
    if not bool(present.all()):
        missing = int(np.flatnonzero(~present)[0])
        raise TraceFormatError(
            f"{label} ids are not dense: missing id {missing}", kind=label
        )
    if int(uniq[0]) != 0 or int(uniq[-1]) != d - 1:
        # Distinct ids outside 0..d-1 (negative or oversized): the first
        # id of 0..d-1 the records skip is the one _densify would name.
        in_range = np.zeros(d, np.bool_)
        mask = (ids >= 0) & (ids < d)
        in_range[ids[mask]] = True
        missing = int(np.flatnonzero(~in_range)[0])
        raise TraceFormatError(
            f"{label} ids are not dense: missing id {missing}", kind=label
        )
    last_row = np.empty(d, np.int64)
    last_row[ids] = np.arange(n, dtype=np.int64)  # later rows overwrite
    return [out[0][last_row]] + [col[last_row] for col in out[1:]]


def _byte_len(line) -> int:
    return len(line) if isinstance(line, bytes) else len(line.encode("utf-8"))


def read_trace_chunked(
    source: Union[str, Path, IO],
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    stats: Optional[ReaderStats] = None,
) -> Trace:
    """Read a trace in fixed-size chunks into a columnar trace.

    ``source`` is a filesystem path or an open stream (text or binary).
    Parsing stages at most one ``chunk_bytes``-sized window of rows at a
    time; the returned :class:`~repro.trace.columns.ColumnarTrace` is
    bit-identical (as a Trace) to :func:`read_trace` on the same input.
    Requires NumPy; pass a :class:`ReaderStats` to collect telemetry.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("chunked ingestion requires numpy; "
                           "use read_trace() instead")
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    stats = stats if stats is not None else ReaderStats()
    builder = _ChunkedBuilder(stats)
    if hasattr(source, "read"):
        _feed_stream(builder, source, chunk_bytes)
    else:
        with open(source, "rb") as fh:
            _feed_stream(builder, fh, chunk_bytes)
    from repro.trace.columns import DEFAULT_INGEST_WINDOW

    return builder.build(DEFAULT_INGEST_WINDOW)


def _feed_stream(builder: _ChunkedBuilder, fh: IO, chunk_bytes: int) -> None:
    while True:
        lines = fh.readlines(chunk_bytes)
        if not lines:
            return
        builder.feed_chunk(lines)
