"""Trace data model, I/O, and validation.

This package defines the event-trace representation consumed by the
logical-structure algorithms in :mod:`repro.core`.  It mirrors the data the
paper's modified Charm++ tracing framework records (Section 5): entry-method
executions with begin/end times, the remote-invocation messages between
them, idle intervals per processor, and the chare/entry-method registries
needed to classify events as application or runtime and to recognise
Structured Dagger (SDAG) serial methods.
"""

from repro.trace.events import (
    NO_ID,
    Chare,
    ChareArray,
    DepEvent,
    EntryMethod,
    EventKind,
    Execution,
    IdleInterval,
    Message,
)
from repro.trace.faults import (
    FAULT_KINDS,
    fault_corpus,
    inject_fault,
    inject_faults,
)
from repro.trace.model import Trace, TraceBuilder
from repro.trace.reader import (
    ReaderStats,
    TraceFormatError,
    read_trace,
    read_trace_chunked,
)
from repro.trace.repair import (
    RepairReport,
    TraceRepairError,
    detect_defects,
    repair_trace,
)
from repro.trace.source import (
    FileTraceSource,
    MemoryTraceSource,
    StreamTraceSource,
    TraceSource,
    open_trace,
)
from repro.trace.validate import TraceValidationError, validate_trace
from repro.trace.writer import write_trace

__all__ = [
    "Chare",
    "ChareArray",
    "DepEvent",
    "EntryMethod",
    "EventKind",
    "Execution",
    "FAULT_KINDS",
    "FileTraceSource",
    "IdleInterval",
    "MemoryTraceSource",
    "Message",
    "NO_ID",
    "ReaderStats",
    "RepairReport",
    "StreamTraceSource",
    "Trace",
    "TraceBuilder",
    "TraceFormatError",
    "TraceRepairError",
    "TraceSource",
    "TraceValidationError",
    "detect_defects",
    "fault_corpus",
    "inject_fault",
    "inject_faults",
    "open_trace",
    "read_trace",
    "read_trace_chunked",
    "repair_trace",
    "validate_trace",
    "write_trace",
]
