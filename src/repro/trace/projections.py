"""Charm++ Projections-style log import/export.

The paper's traces came from the Charm++ tracing framework, whose on-disk
form is the Projections format: one ``<name>.sts`` summary file plus one
``<name>.<pe>.log`` event file per processor.  This module reads and
writes a documented subset of that format so traces can be exchanged with
Projections-adjacent tooling:

``.sts`` lines (whitespace separated)::

    VERSION <v>
    MACHINE <name>
    PROCESSORS <P>
    TOTAL_CHARES <C>            # chare *types*
    TOTAL_EPS <E>               # entry methods
    CHARE <id> <name> <ndims>
    ENTRY CHARE <id> <name> <chare-type-id> <msg-idx>
    END

``.log`` records (first token selects the type; times are integer ticks)::

    1 <mtype> <entry> <time> <event> <pe>                      # CREATION (send)
    2 <mtype> <entry> <time> <event> <srcpe> <mlen> <recvtime>
      <d0> <d1> <d2> <d3>                                      # BEGIN_PROCESSING
    3 <mtype> <entry> <time> <event> <pe>                      # END_PROCESSING
    6 <time>                                                   # BEGIN_IDLE
    7 <time>                                                   # END_IDLE

Conventions of the subset:

* sends are matched to receives by ``(src pe, event id)``, as in real
  Projections logs; ``event == -1`` marks an untraced invocation;
* entry methods named ``*_serial_<n>`` are SDAG serials with ordinal
  ``n`` (the compiler-generated naming the paper's heuristic keys on);
* chare types whose name starts with ``Ck`` are runtime chares (the
  grouping rule of Section 2);
* timestamps are integer ticks of ``1 / time_scale`` simulator units
  (Projections uses microseconds; the default scale of 100 keeps two
  decimal places of the simulator clock).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace, TraceBuilder

_SERIAL_RE = re.compile(r"_serial_(\d+)$")

CREATION = 1
BEGIN_PROCESSING = 2
END_PROCESSING = 3
BEGIN_IDLE = 6
END_IDLE = 7


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------
def write_projections(trace: Trace, basename, time_scale: float = 100.0) -> List[str]:
    """Write ``trace`` as ``<basename>.sts`` + ``<basename>.<pe>.log``.

    Returns the list of files written.  Entry/chare-type naming is
    normalized to the subset's conventions (SDAG ordinals become
    ``_serial_<n>`` suffixes; runtime chare types get a ``Ck`` prefix).
    """
    base = Path(basename)
    written: List[str] = []

    # Chare types: one per array plus one per singleton chare.
    type_of_chare: Dict[int, int] = {}
    type_names: List[Tuple[str, int]] = []  # (name, ndims)
    type_index: Dict[str, int] = {}
    for chare in trace.chares:
        if chare.array_id != NO_ID:
            name = trace.arrays[chare.array_id].name
            ndims = max(1, len(chare.index))
        else:
            # Per-PE singleton instances of one type carry a trailing
            # "[pe]" in their label; the *type* drops it (the reader keys
            # dimensionless chares by PE, like real Projections groups).
            name = re.sub(r"\[\d+\]$", "", chare.name)
            ndims = 0
        if chare.is_runtime and not name.startswith("Ck"):
            name = "Ck" + name
        if name not in type_index:
            type_index[name] = len(type_names)
            type_names.append((name, ndims))
        type_of_chare[chare.id] = type_index[name]

    def entry_name(entry) -> str:
        name = entry.name.split("::")[-1]
        name = re.sub(r"\W", "_", name)
        if entry.is_sdag_serial and entry.sdag_ordinal >= 0:
            name = f"{name}_serial_{entry.sdag_ordinal}"
        return name

    sts_path = base.with_suffix(".sts")
    with open(sts_path, "w", encoding="utf-8") as fh:
        fh.write("VERSION 9.0\nMACHINE repro-sim\n")
        fh.write(f"PROCESSORS {trace.num_pes}\n")
        fh.write(f"TOTAL_CHARES {len(type_names)}\n")
        fh.write(f"TOTAL_EPS {len(trace.entries)}\n")
        for tid, (name, ndims) in enumerate(type_names):
            fh.write(f"CHARE {tid} {name} {ndims}\n")
        for entry in trace.entries:
            # Associate each entry with the chare type of any execution
            # using it (0 if never executed).
            tid = 0
            for ex in trace.executions:
                if ex.entry == entry.id:
                    tid = type_of_chare[ex.chare]
                    break
            fh.write(f"ENTRY CHARE {entry.id} {entry_name(entry)} {tid} 0\n")
        fh.write("END\n")
    written.append(str(sts_path))

    def tick(t: float) -> int:
        return int(round(t * time_scale))

    # Message event ids: the trace message id; receive side needs the
    # sender's PE.
    send_pe: Dict[int, int] = {}
    for msg in trace.messages:
        if msg.send_event != NO_ID:
            send_pe[msg.id] = trace.events[msg.send_event].pe

    # Emit records per PE in true sequential order: executions are
    # non-overlapping per PE, so walking them in start order (interleaving
    # idle intervals, which sit between blocks) gives a well-nested log.
    for pe in range(trace.num_pes):
        lines: List[str] = []
        idles = list(trace.idles_by_pe.get(pe, ()))
        idle_pos = 0
        for xid in trace.executions_by_pe.get(pe, ()):
            ex = trace.executions[xid]
            while idle_pos < len(idles) and idles[idle_pos].start <= ex.start:
                iv = idles[idle_pos]
                lines.append(f"{BEGIN_IDLE} {tick(iv.start)}")
                lines.append(f"{END_IDLE} {tick(iv.end)}")
                idle_pos += 1
            entry = ex.entry
            if ex.recv_event != NO_ID:
                mid = trace.message_by_recv[ex.recv_event]
                event_id = mid
                src = send_pe.get(mid, ex.pe)
            else:
                event_id = -1
                src = ex.pe
            chare = trace.chares[ex.chare]
            dims = list(chare.index) + [0, 0, 0, 0]
            lines.append(
                f"{BEGIN_PROCESSING} 0 {entry} {tick(ex.start)} {event_id} "
                f"{src} 0 {tick(ex.start)} {dims[0]} {dims[1]} {dims[2]} {dims[3]}"
            )
            for evid in trace.events_of(ex.id):
                ev = trace.events[evid]
                if ev.kind != EventKind.SEND:
                    continue
                for mid in trace.messages_by_send[evid]:
                    lines.append(
                        f"{CREATION} 0 {entry} {tick(ev.time)} {mid} {ex.pe}"
                    )
            lines.append(
                f"{END_PROCESSING} 0 {entry} {tick(ex.end)} {event_id} {ex.pe}"
            )
        for iv in idles[idle_pos:]:
            lines.append(f"{BEGIN_IDLE} {tick(iv.start)}")
            lines.append(f"{END_IDLE} {tick(iv.end)}")

        log_path = Path(f"{base}.{pe}.log")
        with open(log_path, "w", encoding="utf-8") as fh:
            fh.write(f"PROJECTIONS-RECORD {len(lines)}\n")
            for line in lines:
                fh.write(line + "\n")
        written.append(str(log_path))
    return written


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------
class ProjectionsFormatError(ValueError):
    """Raised on malformed Projections-subset input."""


def read_projections(sts_path, time_scale: float = 100.0) -> Trace:
    """Read a Projections-subset trace given its ``.sts`` path."""
    sts_path = Path(sts_path)
    num_pes = 0
    chare_types: Dict[int, Tuple[str, int]] = {}
    entries: Dict[int, Tuple[str, int]] = {}
    with open(sts_path, "r", encoding="utf-8") as fh:
        for line in fh:
            parts = line.split()
            if not parts:
                continue
            tag = parts[0]
            if tag == "PROCESSORS":
                num_pes = int(parts[1])
            elif tag == "CHARE":
                chare_types[int(parts[1])] = (parts[2], int(parts[3]))
            elif tag == "ENTRY":
                # ENTRY CHARE <id> <name> <type> <msg>
                entries[int(parts[2])] = (parts[3], int(parts[4]))
            elif tag == "END":
                break
    if num_pes <= 0:
        raise ProjectionsFormatError("missing or invalid PROCESSORS line")

    b = TraceBuilder(num_pes=num_pes, metadata={"source": "projections"})
    entry_ids: Dict[int, int] = {}
    for eid in sorted(entries):
        name, tid = entries[eid]
        m = _SERIAL_RE.search(name)
        tname = chare_types.get(tid, ("?", 0))[0]
        entry_ids[eid] = b.add_entry(
            f"{tname}::{name}", chare_type=tname,
            is_sdag_serial=m is not None,
            sdag_ordinal=int(m.group(1)) if m else -1,
        )

    array_ids: Dict[int, int] = {}
    chare_ids: Dict[Tuple[int, Tuple[int, ...], int], int] = {}

    def chare_for(tid: int, dims: Tuple[int, ...], pe: int) -> int:
        tname, ndims = chare_types.get(tid, (f"type{tid}", 0))
        index = dims[:ndims]
        key = (tid, index, pe if ndims == 0 else -1)
        if key not in chare_ids:
            if ndims > 0 and tid not in array_ids:
                array_ids[tid] = b.add_array(tname, ())
            label = f"{tname}{list(index)}" if ndims else f"{tname}[{pe}]"
            chare_ids[key] = b.add_chare(
                label,
                array_id=array_ids.get(tid, NO_ID),
                index=index,
                is_runtime=tname.startswith("Ck"),
                home_pe=pe,
            )
        return chare_ids[key]

    # First pass: collect all records per PE.
    sends: Dict[Tuple[int, int], int] = {}  # (pe, event id) -> send event
    pending_recvs: List[Tuple[int, int, int]] = []  # (recv event, src pe, event id)

    base = str(sts_path)[: -len(".sts")]
    for pe in range(num_pes):
        log_path = Path(f"{base}.{pe}.log")
        if not log_path.exists():
            raise ProjectionsFormatError(f"missing log file {log_path}")
        open_exec: Optional[int] = None
        open_chare: Optional[int] = None
        idle_start: Optional[float] = None
        with open(log_path, "r", encoding="utf-8") as fh:
            first = True
            for line in fh:
                if first:
                    first = False
                    if line.startswith("PROJECTIONS"):
                        continue
                parts = line.split()
                if not parts:
                    continue
                rtype = int(parts[0])
                if rtype == BEGIN_PROCESSING:
                    entry = int(parts[2])
                    time = int(parts[3]) / time_scale
                    event_id = int(parts[4])
                    src = int(parts[5])
                    dims = tuple(int(d) for d in parts[8:12])
                    tid = entries.get(entry, ("?", 0))[1]
                    chare = chare_for(tid, dims, pe)
                    open_exec = b.add_execution(
                        chare, entry_ids[entry], pe, time, time
                    )
                    open_chare = chare
                    if event_id >= 0:
                        recv_ev = b.add_event(EventKind.RECV, chare, pe, time,
                                              open_exec)
                        b.set_execution_recv(open_exec, recv_ev)
                        pending_recvs.append((recv_ev, src, event_id))
                elif rtype == END_PROCESSING:
                    time = int(parts[3]) / time_scale
                    if open_exec is None:
                        raise ProjectionsFormatError(
                            f"{log_path}: END_PROCESSING without BEGIN"
                        )
                    b.set_execution_end(open_exec, time)
                    open_exec = None
                    open_chare = None
                elif rtype == CREATION:
                    time = int(parts[3]) / time_scale
                    event_id = int(parts[4])
                    if open_exec is None or open_chare is None:
                        # Creation outside processing (runtime internals):
                        # skipped, like untraced control flow.
                        continue
                    send_ev = b.add_event(EventKind.SEND, open_chare, pe,
                                          time, open_exec)
                    sends[(pe, event_id)] = send_ev
                elif rtype == BEGIN_IDLE:
                    idle_start = int(parts[1]) / time_scale
                elif rtype == END_IDLE:
                    if idle_start is not None:
                        b.add_idle(pe, idle_start, int(parts[1]) / time_scale)
                        idle_start = None
                else:
                    raise ProjectionsFormatError(
                        f"{log_path}: unknown record type {rtype}"
                    )

    # Second pass: match receives to sends by (src pe, event id).  A send
    # may fan out to several receives (broadcast fan-out keeps one event
    # id per message in our writer, but foreign logs may reuse ids).
    for recv_ev, src, event_id in pending_recvs:
        send_ev = sends.get((src, event_id), NO_ID)
        b.add_message(send_event=send_ev, recv_event=recv_ev)
    return b.build()
