"""Structural consistency checks for traces, and the shared error types
used by every verification layer in the system.

Simulators call :func:`validate_trace` on their output in tests; the
analysis pipeline may call it defensively on externally supplied traces.
The checks encode the physical realizability constraints the algorithms
rely on: well-formed ids, events inside their blocks' time spans, receives
not preceding their sends, and non-overlapping execution on each PE.

The structural-invariant layer (:mod:`repro.verify`) reports through the
same :class:`Violation` records and :class:`VerificationError` base so a
trace-level problem and a structure-level problem look identical to
tooling (``repro verify``, CI reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace

#: How many violations an error message previews before eliding.
PREVIEW_LIMIT = 20


@dataclass(frozen=True)
class Violation:
    """One violated invariant, machine-readable.

    Parameters
    ----------
    invariant:
        Stable kebab-case name of the invariant ("recv-after-send",
        "dag-acyclic", ...).  Tests and reports key on this.
    message:
        Human-readable description naming the offending records.
    subjects:
        Ids of the offending records (event/phase/execution ids —
        whatever the invariant is about), for programmatic consumers.
    """

    invariant: str
    message: str
    subjects: Tuple[int, ...] = ()

    def to_dict(self) -> dict:
        """Plain-dict form for JSON reports."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "subjects": list(self.subjects),
        }


class VerificationError(AssertionError):
    """Base of all verification failures; carries structured violations."""

    def __init__(self, header: str, violations: Sequence[Violation]):
        self.violations: List[Violation] = list(violations)
        preview = "\n  ".join(v.message for v in self.violations[:PREVIEW_LIMIT])
        more = (
            ""
            if len(self.violations) <= PREVIEW_LIMIT
            else f"\n  ... and {len(self.violations) - PREVIEW_LIMIT} more"
        )
        super().__init__(f"{header}:\n  {preview}{more}")

    def invariants(self) -> List[str]:
        """Distinct violated invariant names, in first-seen order."""
        seen: List[str] = []
        for v in self.violations:
            if v.invariant not in seen:
                seen.append(v.invariant)
        return seen


class TraceValidationError(VerificationError):
    """Raised when a trace violates a structural invariant."""


def collect_trace_problems(
    trace: Trace, check_pe_overlap: bool = True
) -> List[Violation]:
    """All violated trace invariants, as structured records.

    :func:`validate_trace` wraps this; callers that want a report rather
    than an exception (``repro verify --json``) use it directly.

    ``trace`` may also be a :class:`~repro.trace.source.TraceSource`:
    the source is resolved here, so a chunk-ingested file is checked
    through its lazy columnar view (records are built one at a time;
    the full object-backed trace is never materialized).
    """
    if not isinstance(trace, Trace) and callable(getattr(trace, "trace", None)):
        trace = trace.trace()
    problems: List[Violation] = []

    def problem(invariant: str, message: str, *subjects: int) -> None:
        problems.append(Violation(invariant, message, tuple(subjects)))

    n_chares = len(trace.chares)
    n_entries = len(trace.entries)
    n_events = len(trace.events)

    for ex in trace.executions:
        if not (0 <= ex.chare < n_chares):
            problem("exec-ids", f"exec {ex.id}: bad chare id {ex.chare}", ex.id)
        if not (0 <= ex.entry < n_entries):
            problem("exec-ids", f"exec {ex.id}: bad entry id {ex.entry}", ex.id)
        if ex.end < ex.start:
            problem(
                "exec-span",
                f"exec {ex.id}: end {ex.end} < start {ex.start}",
                ex.id,
            )
        if ex.recv_event != NO_ID:
            if not (0 <= ex.recv_event < n_events):
                problem(
                    "exec-recv",
                    f"exec {ex.id}: bad recv_event id {ex.recv_event}",
                    ex.id,
                )
                continue
            ev = trace.events[ex.recv_event]
            if ev.kind != EventKind.RECV:
                problem(
                    "exec-recv",
                    f"exec {ex.id}: recv_event {ex.recv_event} is not a RECV",
                    ex.id,
                    ex.recv_event,
                )
            if ev.execution != ex.id:
                problem(
                    "exec-recv",
                    f"exec {ex.id}: recv_event {ex.recv_event} belongs to "
                    f"exec {ev.execution}",
                    ex.id,
                    ex.recv_event,
                )

    for ev in trace.events:
        if not (0 <= ev.chare < n_chares):
            problem("event-ids", f"event {ev.id}: bad chare id {ev.chare}", ev.id)
            continue
        if ev.execution != NO_ID:
            ex = trace.executions[ev.execution]
            if ev.chare != ex.chare:
                problem(
                    "event-chare",
                    f"event {ev.id}: chare {ev.chare} != owning exec chare "
                    f"{ex.chare}",
                    ev.id,
                )
            # Events must fall within their serial block's time span (with
            # equality allowed at the boundaries).
            if not (ex.start - 1e-9 <= ev.time <= ex.end + 1e-9):
                problem(
                    "event-span",
                    f"event {ev.id}: time {ev.time} outside exec {ex.id} span "
                    f"[{ex.start}, {ex.end}]",
                    ev.id,
                    ex.id,
                )

    seen_recv = set()
    for msg in trace.messages:
        if msg.send_event != NO_ID and not (0 <= msg.send_event < n_events):
            problem("message-ids", f"msg {msg.id}: bad send event {msg.send_event}",
                    msg.id)
            continue
        if msg.recv_event != NO_ID and not (0 <= msg.recv_event < n_events):
            problem("message-ids", f"msg {msg.id}: bad recv event {msg.recv_event}",
                    msg.id)
            continue
        if msg.is_complete():
            send = trace.events[msg.send_event]
            recv = trace.events[msg.recv_event]
            if send.kind != EventKind.SEND:
                problem(
                    "message-endpoints",
                    f"msg {msg.id}: send endpoint is not a SEND event",
                    msg.id,
                    msg.send_event,
                )
            if recv.kind != EventKind.RECV:
                problem(
                    "message-endpoints",
                    f"msg {msg.id}: recv endpoint is not a RECV event",
                    msg.id,
                    msg.recv_event,
                )
            if recv.time < send.time - 1e-9:
                problem(
                    "recv-after-send",
                    f"msg {msg.id}: recv time {recv.time} precedes send time "
                    f"{send.time}",
                    msg.id,
                )
        if msg.recv_event != NO_ID:
            if msg.recv_event in seen_recv:
                problem(
                    "recv-unique",
                    f"msg {msg.id}: recv event {msg.recv_event} reused",
                    msg.id,
                    msg.recv_event,
                )
            seen_recv.add(msg.recv_event)

    for idle in trace.idles:
        if idle.end < idle.start:
            problem("idle-span", f"idle on pe {idle.pe}: end < start", idle.pe)
        if not (0 <= idle.pe < max(trace.num_pes, 1)):
            problem("idle-span", f"idle: bad pe {idle.pe}", idle.pe)

    if check_pe_overlap:
        for pe, xids in trace.executions_by_pe.items():
            prev_end = float("-inf")
            prev_id = None
            for xid in xids:
                ex = trace.executions[xid]
                if ex.start < prev_end - 1e-9:
                    problem(
                        "pe-overlap",
                        f"pe {pe}: exec {xid} (start {ex.start}) overlaps exec "
                        f"{prev_id} (end {prev_end})",
                        xid,
                    )
                if ex.end > prev_end:
                    prev_end = ex.end
                    prev_id = xid

    return problems


def validate_trace(trace: Trace, check_pe_overlap: bool = True) -> None:
    """Raise :class:`TraceValidationError` listing every violated invariant.

    Parameters
    ----------
    trace:
        The trace to check, or a :class:`~repro.trace.source.TraceSource`
        to resolve and check.  Empty and single-event traces are valid.
    check_pe_overlap:
        When True (default), assert that no two executions overlap on the
        same PE.  Synthetic unit-test traces sometimes skip this.
    """
    problems = collect_trace_problems(trace, check_pe_overlap=check_pe_overlap)
    if problems:
        raise TraceValidationError("trace validation failed", problems)
