"""Structural consistency checks for traces.

Simulators call :func:`validate_trace` on their output in tests; the
analysis pipeline may call it defensively on externally supplied traces.
The checks encode the physical realizability constraints the algorithms
rely on: well-formed ids, events inside their blocks' time spans, receives
not preceding their sends, and non-overlapping execution on each PE.
"""

from __future__ import annotations

from typing import List

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace


class TraceValidationError(AssertionError):
    """Raised when a trace violates a structural invariant."""


def validate_trace(trace: Trace, check_pe_overlap: bool = True) -> None:
    """Raise :class:`TraceValidationError` on the first violated invariant.

    Parameters
    ----------
    trace:
        The trace to check.
    check_pe_overlap:
        When True (default), assert that no two executions overlap on the
        same PE.  Synthetic unit-test traces sometimes skip this.
    """
    problems: List[str] = []

    n_chares = len(trace.chares)
    n_entries = len(trace.entries)
    n_events = len(trace.events)
    n_execs = len(trace.executions)

    for ex in trace.executions:
        if not (0 <= ex.chare < n_chares):
            problems.append(f"exec {ex.id}: bad chare id {ex.chare}")
        if not (0 <= ex.entry < n_entries):
            problems.append(f"exec {ex.id}: bad entry id {ex.entry}")
        if ex.end < ex.start:
            problems.append(f"exec {ex.id}: end {ex.end} < start {ex.start}")
        if ex.recv_event != NO_ID:
            ev = trace.events[ex.recv_event]
            if ev.kind != EventKind.RECV:
                problems.append(f"exec {ex.id}: recv_event {ex.recv_event} is not a RECV")
            if ev.execution != ex.id:
                problems.append(
                    f"exec {ex.id}: recv_event {ex.recv_event} belongs to exec {ev.execution}"
                )

    for ev in trace.events:
        if not (0 <= ev.chare < n_chares):
            problems.append(f"event {ev.id}: bad chare id {ev.chare}")
        if ev.execution != NO_ID:
            ex = trace.executions[ev.execution]
            if ev.chare != ex.chare:
                problems.append(
                    f"event {ev.id}: chare {ev.chare} != owning exec chare {ex.chare}"
                )
            # Events must fall within their serial block's time span (with
            # equality allowed at the boundaries).
            if not (ex.start - 1e-9 <= ev.time <= ex.end + 1e-9):
                problems.append(
                    f"event {ev.id}: time {ev.time} outside exec {ex.id} span "
                    f"[{ex.start}, {ex.end}]"
                )

    seen_recv = set()
    for msg in trace.messages:
        if msg.send_event != NO_ID and not (0 <= msg.send_event < n_events):
            problems.append(f"msg {msg.id}: bad send event {msg.send_event}")
        if msg.recv_event != NO_ID and not (0 <= msg.recv_event < n_events):
            problems.append(f"msg {msg.id}: bad recv event {msg.recv_event}")
        if msg.is_complete():
            send = trace.events[msg.send_event]
            recv = trace.events[msg.recv_event]
            if send.kind != EventKind.SEND:
                problems.append(f"msg {msg.id}: send endpoint is not a SEND event")
            if recv.kind != EventKind.RECV:
                problems.append(f"msg {msg.id}: recv endpoint is not a RECV event")
            if recv.time < send.time - 1e-9:
                problems.append(
                    f"msg {msg.id}: recv time {recv.time} precedes send time {send.time}"
                )
        if msg.recv_event != NO_ID:
            if msg.recv_event in seen_recv:
                problems.append(f"msg {msg.id}: recv event {msg.recv_event} reused")
            seen_recv.add(msg.recv_event)

    for idle in trace.idles:
        if idle.end < idle.start:
            problems.append(f"idle on pe {idle.pe}: end < start")
        if not (0 <= idle.pe < trace.num_pes):
            problems.append(f"idle: bad pe {idle.pe}")

    if check_pe_overlap:
        for pe, xids in trace.executions_by_pe.items():
            prev_end = float("-inf")
            prev_id = None
            for xid in xids:
                ex = trace.executions[xid]
                if ex.start < prev_end - 1e-9:
                    problems.append(
                        f"pe {pe}: exec {xid} (start {ex.start}) overlaps exec "
                        f"{prev_id} (end {prev_end})"
                    )
                if ex.end > prev_end:
                    prev_end = ex.end
                    prev_id = xid

    if problems:
        preview = "\n  ".join(problems[:20])
        more = "" if len(problems) <= 20 else f"\n  ... and {len(problems) - 20} more"
        raise TraceValidationError(f"trace validation failed:\n  {preview}{more}")
