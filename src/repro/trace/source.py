"""Unified handles over where a trace comes from.

A :class:`TraceSource` abstracts the three places a trace can live — a
JSONL file on disk, an open stream, or an already-materialized
:class:`~repro.trace.model.Trace` — behind one small protocol:

* :meth:`~TraceSource.trace` materializes the trace (honoring the
  source's ingestion mode: eager objects or streamed columns);
* :attr:`~TraceSource.label` names the source for reports and errors;
* :attr:`~TraceSource.path` is the backing file, when there is one
  (lets callers key caches on file bytes instead of record contents).

:func:`open_trace` is the front door: every consumer that accepts "a
trace or a path" (`repro.api.extract`, the CLI loaders, batch runs,
``repro.trace.validate``) routes through it, so ingestion policy lives
in exactly one place.  Passing an in-memory ``Trace`` always returns it
unchanged — the historical ``read_trace`` → ``extract`` idiom keeps
working verbatim.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Optional, Union

from repro.trace.model import Trace

#: Ingestion modes :func:`open_trace` understands.
INGEST_MODES = ("eager", "chunked", "auto")


def resolve_ingest(ingest: str) -> str:
    """Concrete ingestion mode for "auto" (chunked iff NumPy exists)."""
    if ingest not in INGEST_MODES:
        raise ValueError(
            f"unknown ingest mode {ingest!r}; expected one of {INGEST_MODES}")
    if ingest != "auto":
        return ingest
    from repro.trace.reader import HAVE_NUMPY

    return "chunked" if HAVE_NUMPY else "eager"


class TraceSource:
    """Protocol for trace providers (duck-typed; subclassing optional).

    A conforming object has a ``trace()`` method returning a
    :class:`Trace`, a ``label`` string, and a ``path`` attribute that is
    the backing file path or None.  ``trace()`` may be called more than
    once; implementations cache when re-reading is impossible (streams)
    and may re-read when it is cheap to stay lazy (files).
    """

    label: str = "<trace>"
    path: Optional[Path] = None

    def trace(self) -> Trace:
        raise NotImplementedError


class MemoryTraceSource(TraceSource):
    """An already-materialized trace; ``trace()`` returns it as-is."""

    __slots__ = ("_trace", "label", "path")

    def __init__(self, trace: Trace, label: str = "<memory>"):
        self._trace = trace
        self.label = label
        self.path = None

    def trace(self) -> Trace:
        return self._trace


class FileTraceSource(TraceSource):
    """A JSONL trace file; each ``trace()`` call reads it afresh."""

    __slots__ = ("path", "label", "ingest", "chunk_bytes")

    def __init__(self, path: Union[str, Path], *, ingest: str = "auto",
                 chunk_bytes: Optional[int] = None):
        self.path = Path(path)
        self.label = str(path)
        self.ingest = resolve_ingest(ingest)
        self.chunk_bytes = chunk_bytes

    def trace(self) -> Trace:
        return _read(self.path, self.ingest, self.chunk_bytes)


class StreamTraceSource(TraceSource):
    """An open stream; consumed once, the trace is cached thereafter."""

    __slots__ = ("_stream", "_trace", "label", "ingest", "chunk_bytes",
                 "path")

    def __init__(self, stream: IO, *, ingest: str = "auto",
                 chunk_bytes: Optional[int] = None,
                 label: str = "<stream>"):
        self._stream = stream
        self._trace: Optional[Trace] = None
        self.label = label
        self.ingest = resolve_ingest(ingest)
        self.chunk_bytes = chunk_bytes
        self.path = None

    def trace(self) -> Trace:
        if self._trace is None:
            self._trace = _read(self._stream, self.ingest, self.chunk_bytes)
            self._stream = None  # consumed; drop the handle
        return self._trace


def _read(source, ingest: str, chunk_bytes: Optional[int]) -> Trace:
    if ingest == "chunked":
        from repro.trace.reader import DEFAULT_CHUNK_BYTES, read_trace_chunked

        return read_trace_chunked(
            source, chunk_bytes=chunk_bytes or DEFAULT_CHUNK_BYTES)
    from repro.trace.reader import read_trace

    return read_trace(source)


def open_trace(
    source: Union[str, Path, IO, Trace, TraceSource],
    *,
    ingest: str = "auto",
    chunk_bytes: Optional[int] = None,
) -> TraceSource:
    """Wrap any way of designating a trace in a :class:`TraceSource`.

    ``source`` may be a filesystem path, an open stream (text or
    binary), an in-memory :class:`Trace` (returned untouched inside a
    :class:`MemoryTraceSource` — identity is preserved), or an existing
    :class:`TraceSource` (passed through unchanged; ``ingest`` does not
    override its policy).  ``ingest`` selects the reader for path and
    stream sources: "eager" (object-backed trace), "chunked" (streamed
    columnar trace, bit-identical), or "auto" (chunked when NumPy is
    available).
    """
    if isinstance(source, Trace):
        return MemoryTraceSource(source)
    if isinstance(source, TraceSource) or (
            not hasattr(source, "read")
            and callable(getattr(source, "trace", None))):
        return source  # already a source (nominal or duck-typed)
    if isinstance(source, (str, Path)):
        return FileTraceSource(source, ingest=ingest, chunk_bytes=chunk_bytes)
    if hasattr(source, "read"):
        return StreamTraceSource(source, ingest=ingest,
                                 chunk_bytes=chunk_bytes)
    raise TypeError(
        f"cannot open {type(source).__name__!r} as a trace source; expected "
        "a path, an open stream, a Trace, or a TraceSource")
