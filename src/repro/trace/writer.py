"""Serialize traces to a line-delimited JSON log format.

The format intentionally resembles a flattened Charm++ Projections log:
one record per line, each a JSON object tagged with ``"t"`` (record type).
A header line carries trace-wide metadata.  The format is self-contained —
:func:`repro.trace.reader.read_trace` reconstructs an identical
:class:`~repro.trace.model.Trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.trace.model import Trace

FORMAT_VERSION = 1


def write_trace(trace: Trace, path: Union[str, Path, IO[str]]) -> None:
    """Write ``trace`` to ``path`` (a filesystem path or open text stream)."""
    if hasattr(path, "write"):
        _write_stream(trace, path)  # type: ignore[arg-type]
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _write_stream(trace, fh)


def _write_stream(trace: Trace, fh: IO[str]) -> None:
    header = {
        "t": "header",
        "version": FORMAT_VERSION,
        "num_pes": trace.num_pes,
        "metadata": trace.metadata,
    }
    fh.write(json.dumps(header) + "\n")
    for entry in trace.entries:
        fh.write(
            json.dumps(
                {
                    "t": "entry",
                    "id": entry.id,
                    "name": entry.name,
                    "ct": entry.chare_type,
                    "sdag": entry.is_sdag_serial,
                    "ord": entry.sdag_ordinal,
                }
            )
            + "\n"
        )
    for arr in trace.arrays:
        fh.write(
            json.dumps({"t": "array", "id": arr.id, "name": arr.name, "shape": list(arr.shape)})
            + "\n"
        )
    for chare in trace.chares:
        fh.write(
            json.dumps(
                {
                    "t": "chare",
                    "id": chare.id,
                    "name": chare.name,
                    "arr": chare.array_id,
                    "idx": list(chare.index),
                    "rt": chare.is_runtime,
                    "pe": chare.home_pe,
                }
            )
            + "\n"
        )
    for ex in trace.executions:
        fh.write(
            json.dumps(
                {
                    "t": "exec",
                    "id": ex.id,
                    "c": ex.chare,
                    "e": ex.entry,
                    "pe": ex.pe,
                    "s": ex.start,
                    "x": ex.end,
                    "rv": ex.recv_event,
                }
            )
            + "\n"
        )
    for ev in trace.events:
        fh.write(
            json.dumps(
                {
                    "t": "event",
                    "id": ev.id,
                    "k": int(ev.kind),
                    "c": ev.chare,
                    "pe": ev.pe,
                    "tm": ev.time,
                    "ex": ev.execution,
                }
            )
            + "\n"
        )
    for msg in trace.messages:
        fh.write(
            json.dumps({"t": "msg", "id": msg.id, "s": msg.send_event, "r": msg.recv_event})
            + "\n"
        )
    for idle in trace.idles:
        fh.write(
            json.dumps({"t": "idle", "pe": idle.pe, "s": idle.start, "x": idle.end}) + "\n"
        )
