"""The ``repro.lint`` rule engine.

One AST walk per file, shared by every rule: the engine parses each
target file once, builds the cross-references rules need (parent links,
import-alias resolution, the determinism reachability set), then
dispatches each node to every rule that declares a ``visit_<NodeType>``
method.  Rules that need whole-module context implement
``finish_module``; rules that reason across files (the stage-graph
dataflow family) implement ``check_project``.

Suppression is per finding site and *requires a reason*::

    x = time.time()  # repro-lint: disable=DET001 reason=telemetry only

    # repro-lint: disable=DET003 reason=int keys; order normalized below
    order = list(pending)

A directive on its own line suppresses the next code line; one trailing
code suppresses that line; ``disable-file=`` anywhere in the file
suppresses the rule file-wide.  A directive without a reason is itself
a finding (``LNT001``) and suppresses nothing, so a clean run proves
every silenced rule has a recorded justification.  A directive whose
rule never fired is reported as ``LNT002`` (only when the full rule set
ran — under ``--rules`` filtering, absence of a finding proves nothing).
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.cfg import CFG, FunctionNode, build_cfg
from repro.lint.reachability import (
    DET_SEED_MODULES,
    module_imports,
    module_name_for,
    reachable_modules,
)

SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
SEVERITIES = (SEVERITY_WARNING, SEVERITY_ERROR)

REPORT_VERSION = 2


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule firing at a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.severity}: {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` directive."""

    path: str
    #: Line the directive appears on.
    line: int
    #: Line the directive applies to (the same line, or the next code
    #: line for an own-line directive); ignored for file-level ones.
    target_line: int
    rules: Tuple[str, ...]
    reason: str
    file_level: bool

    def matches(self, finding: Finding) -> bool:
        if finding.path != self.path or finding.rule not in self.rules:
            return False
        return self.file_level or finding.line == self.target_line


_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,-]+)\s*(?:reason=(.*))?$"
)
_RULE_ID_RE = re.compile(r"^[A-Z]{2,6}\d{3}$")


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """(line, col, text) of every comment, via the tokenizer.

    Tokenizing (rather than scanning lines) keeps directive examples in
    docstrings and string literals inert.  On tokenizer failure —
    already reported as LNT000 by the parse step — fall back to a plain
    line scan so directives in almost-valid files still register.
    """
    comments: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            col = text.find("#")
            if col >= 0:
                comments.append((lineno, col, text[col:]))
    return comments


def parse_suppressions(
    source: str, path: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Extract directives from ``source``; malformed ones become LNT001."""
    suppressions: List[Suppression] = []
    problems: List[Finding] = []
    lines = source.splitlines()
    for lineno, col, text in _comment_tokens(source):
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            if "repro-lint:" in text:
                problems.append(Finding(
                    path, lineno, col + text.index("repro-lint:"), "LNT001",
                    SEVERITY_ERROR,
                    "malformed repro-lint directive; expected "
                    "'# repro-lint: disable=RULE[,RULE] reason=...'",
                ))
            continue
        kind, rule_text, reason = match.groups()
        rules = tuple(r for r in rule_text.split(",") if r)
        reason = (reason or "").strip()
        bad_ids = [r for r in rules if not _RULE_ID_RE.match(r)]
        if bad_ids:
            problems.append(Finding(
                path, lineno, col, "LNT001", SEVERITY_ERROR,
                f"suppression names malformed rule id(s) "
                f"{', '.join(bad_ids)}; directive ignored",
            ))
            continue
        if not reason:
            problems.append(Finding(
                path, lineno, col, "LNT001", SEVERITY_ERROR,
                f"suppression of {', '.join(rules)} has no reason=...; "
                f"a justification is required, directive ignored",
            ))
            continue
        line_text = lines[lineno - 1] if lineno <= len(lines) else ""
        own_line = line_text[:col].strip() == ""
        target = lineno
        if own_line and kind == "disable":
            target = _next_code_line(lines, lineno)
        suppressions.append(Suppression(
            path, lineno, target, rules, reason,
            file_level=kind == "disable-file",
        ))
    return suppressions, problems


def _next_code_line(lines: Sequence[str], after: int) -> int:
    """First 1-based line after ``after`` that holds code (not comment)."""
    for offset, text in enumerate(lines[after:], start=after + 1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return after


class FileContext:
    """Everything rules may consult while visiting one file's AST."""

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.Module, det_scope: bool) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        #: Determinism rules only apply to modules reachable from the
        #: pipeline stage bodies; elsewhere a wall-clock read cannot
        #: affect an extracted structure.
        self.det_scope = det_scope
        self.findings: List[Finding] = []
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.aliases: Dict[str, str] = {}
        self._cfgs: Dict[ast.AST, CFG] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self._collect_aliases(tree)

    def cfg(self, function: FunctionNode) -> CFG:
        """The (memoized) control-flow graph of one function body.

        Several flow-aware rules visit the same ``def``; building the
        CFG once per function keeps the engine a single walk in spirit.
        """
        graph = self._cfgs.get(function)
        if graph is None:
            graph = build_cfg(function)
            self._cfgs[function] = graph
        return graph

    def _collect_aliases(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, through import aliases.

        ``_time.perf_counter`` with ``import time as _time`` resolves to
        ``"time.perf_counter"``; ``datetime.now`` with ``from datetime
        import datetime`` resolves to ``"datetime.datetime.now"``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def report(self, rule: "Rule", node: ast.AST, message: str,
               severity: Optional[str] = None) -> None:
        self.findings.append(Finding(
            self.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0), rule.id,
            severity or rule.severity, message,
        ))


class ProjectContext:
    """All parsed files of one lint run, keyed by dotted module name."""

    def __init__(self, files: List[FileContext]) -> None:
        self.files = files
        self.modules: Dict[str, FileContext] = {
            f.module: f for f in files if f.module
        }
        self.findings: List[Finding] = []
        #: Scratch space for analyses shared between project rules.
        self.cache: Dict[str, object] = {}

    def report_at(self, rule: "Rule", path: str, line: int,
                  message: str) -> None:
        self.findings.append(Finding(
            path, line, 0, rule.id, rule.severity, message,
        ))


class Rule:
    """Base class: one named, documented check.

    Subclasses set ``id`` (e.g. ``"DET001"``), ``severity``, ``title``
    and ``rationale`` (the catalog entry), and implement any of:

    * ``visit_<NodeType>(node, ctx)`` — called for every matching AST
      node during the engine's single walk;
    * ``finish_module(ctx)`` — called once per file after the walk;
    * ``check_project(project)`` — called once per run, after all files.
    """

    id: str = ""
    severity: str = SEVERITY_ERROR
    title: str = ""
    rationale: str = ""

    def finish_module(self, ctx: FileContext) -> None:
        """Per-file hook after the AST walk (default: nothing)."""

    def check_project(self, project: ProjectContext) -> None:
        """Cross-file hook after every file is parsed (default: nothing)."""


@dataclass(frozen=True)
class FileTiming:
    """Per-file analysis cost, reported in the v2 JSON ``timing`` block."""

    path: str
    seconds: float
    cached: bool


@dataclass
class LintReport:
    """Outcome of one lint run: visible findings plus suppression audit."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files: int = 0
    #: Per-file timing, path-sorted by the assembler.  The ``seconds``
    #: values are the only non-deterministic part of the report; they
    #: are confined to the ``timing`` block so consumers can compare
    #: everything else byte-for-byte.
    timings: List[FileTiming] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_WARNING)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for t in self.timings if not t.cached)

    def exit_code(self, fail_on: str = SEVERITY_ERROR) -> int:
        if fail_on not in SEVERITIES:
            raise ValueError(f"unknown fail-on level {fail_on!r}")
        if fail_on == SEVERITY_WARNING:
            return 1 if self.findings else 0
        return 1 if self.errors else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "tool": "repro-lint",
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files": self.files,
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": len(self.suppressed),
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                },
            },
            "timing": {
                "total_seconds": round(self.total_seconds, 6),
                "files": [
                    {
                        "path": t.path,
                        "seconds": round(t.seconds, 6),
                        "cached": t.cached,
                    }
                    for t in sorted(self.timings, key=lambda t: t.path)
                ],
            },
        }

    def human(self) -> str:
        lines = [f.format() for f in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) ({self.errors} error(s), "
            f"{self.warnings} warning(s)) in {self.files} file(s); "
            f"{len(self.suppressed)} suppressed"
        )
        if self.cache_hits:
            summary += f"; cache: {self.cache_hits} hit(s)"
        lines.append(summary)
        return "\n".join(lines)


@dataclass
class FileAnalysis:
    """Everything the per-file rules produced for one source file.

    ``context`` is None when the file failed to parse (the LNT000
    finding is in ``findings``); it is also dropped when an analysis is
    rehydrated from the incremental cache, because project rules
    re-parse the one module they need instead.
    """

    path: str
    module: str
    findings: List[Finding]
    suppressions: List[Suppression]
    context: Optional[FileContext]


class LintEngine:
    """Run a set of rules over files, sources, or directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 rule_ids: Optional[Sequence[str]] = None) -> None:
        if rules is None:
            from repro.lint.rules import all_rules

            rules = all_rules()
        if rule_ids is not None:
            wanted = set(rule_ids)
            known = {r.id for r in rules}
            unknown = wanted - known
            if unknown:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                )
            rules = [r for r in rules if r.id in wanted]
            self._filtered = True
        else:
            self._filtered = False
        self.rules = list(rules)
        self._dispatch: Dict[str, List[Tuple[Rule, str]]] = {}
        for rule in self.rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    self._dispatch.setdefault(attr[len("visit_"):], []).append(
                        (rule, attr)
                    )

    # ------------------------------------------------------------------
    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> LintReport:
        """Lint files and/or directory trees (``.py`` files, recursively)."""
        named: List[Tuple[str, str]] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for sub in sorted(path.rglob("*.py")):
                    named.append((str(sub), sub.read_text()))
            else:
                named.append((str(path), path.read_text()))
        return self.lint_sources(named)

    def lint_sources(self, named: Sequence[Tuple[str, str]]) -> LintReport:
        """Lint ``(path, source)`` pairs (the path is only a label)."""
        run_start = time.perf_counter()
        report = LintReport(files=len(named))
        trees: List[Tuple[str, str, str, ast.Module]] = []
        for path, source in named:
            module = module_name_for(Path(path))
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                report.findings.append(Finding(
                    path, exc.lineno or 1, exc.offset or 0, "LNT000",
                    SEVERITY_ERROR, f"syntax error: {exc.msg}",
                ))
                report.timings.append(FileTiming(path, 0.0, False))
                continue
            trees.append((path, module, source, tree))

        det_scope = self._determinism_scope(trees)
        contexts: List[FileContext] = []
        all_suppressions: List[Suppression] = []
        for path, module, source, tree in trees:
            file_start = time.perf_counter()
            in_scope = det_scope is None or module in det_scope
            analysis = self._analyze_tree(path, module, source, tree,
                                          in_scope)
            if analysis.context is not None:
                contexts.append(analysis.context)
            all_suppressions.extend(analysis.suppressions)
            report.findings.extend(analysis.findings)
            report.timings.append(FileTiming(
                path, time.perf_counter() - file_start, False))

        report.findings.extend(self.run_project(contexts))
        self._apply_suppressions(report, all_suppressions)
        report.findings.sort()
        report.suppressed.sort()
        report.total_seconds = time.perf_counter() - run_start
        return report

    # ------------------------------------------------------------------
    def analyze_source(self, path: str, source: str,
                       det_in_scope: bool = True) -> "FileAnalysis":
        """Run the per-file rules over one source; no suppression pass.

        This is the unit of work the parallel runner farms out and the
        incremental cache stores: everything about a file that depends
        only on its own bytes.  Suppressions are returned unapplied —
        the caller applies them globally so LNT002 staleness is judged
        against the whole run.
        """
        module = module_name_for(Path(path))
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            finding = Finding(
                path, exc.lineno or 1, exc.offset or 0, "LNT000",
                SEVERITY_ERROR, f"syntax error: {exc.msg}",
            )
            return FileAnalysis(path, module, [finding], [], None)
        return self._analyze_tree(path, module, source, tree, det_in_scope)

    def _analyze_tree(self, path: str, module: str, source: str,
                      tree: ast.Module,
                      det_in_scope: bool) -> "FileAnalysis":
        ctx = FileContext(path, module, source, tree, det_in_scope)
        suppressions, problems = parse_suppressions(source, path)
        findings = list(problems)
        self._walk(ctx)
        for rule in self.rules:
            rule.finish_module(ctx)
        findings.extend(ctx.findings)
        return FileAnalysis(path, module, findings, suppressions, ctx)

    def run_project(self, contexts: List[FileContext]) -> List[Finding]:
        """Run the cross-file rules over already-analyzed contexts."""
        project = ProjectContext(contexts)
        for rule in self.rules:
            rule.check_project(project)
        return project.findings

    @property
    def filtered(self) -> bool:
        """True when ``--rules`` narrowed the rule set (disables LNT002)."""
        return self._filtered

    # ------------------------------------------------------------------
    def _determinism_scope(
        self, trees: Sequence[Tuple[str, str, str, ast.Module]]
    ) -> Optional[Set[str]]:
        """Modules the determinism rules apply to, or None for "all".

        When the lint targets include the pipeline module, the scope is
        its transitive import closure; when they do not (a fixture dir,
        a single file), every file is conservatively in scope.
        """
        imports = {module: module_imports(tree, module)
                   for _, module, _, tree in trees if module}
        seeds = [m for m in imports if m in DET_SEED_MODULES]
        if not seeds:
            return None
        return reachable_modules(imports, seeds)

    def _walk(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            handlers = self._dispatch.get(type(node).__name__)
            if not handlers:
                continue
            for rule, attr in handlers:
                getattr(rule, attr)(node, ctx)

    def _apply_suppressions(self, report: LintReport,
                            suppressions: List[Suppression]) -> None:
        report.suppressions = suppressions
        used: Set[int] = set()
        visible: List[Finding] = []
        for finding in report.findings:
            silenced = False
            for index, suppression in enumerate(suppressions):
                if finding.rule.startswith("LNT"):
                    break  # suppression hygiene cannot be suppressed
                if suppression.matches(finding):
                    used.add(index)
                    silenced = True
                    break
            if silenced:
                report.suppressed.append(finding)
            else:
                visible.append(finding)
        report.findings = visible
        if self._filtered:
            return  # a partial rule set cannot prove a directive unused
        active = {r.id for r in self.rules}
        for index, suppression in enumerate(suppressions):
            if index in used or not set(suppression.rules) & active:
                continue
            report.findings.append(Finding(
                suppression.path, suppression.line, 0, "LNT002",
                SEVERITY_WARNING,
                f"suppression of {', '.join(suppression.rules)} matched "
                f"no finding; remove the stale directive",
            ))
