"""Exception-safety rules (EXC) for the durability-critical modules.

The pipeline's ledgers and journals exist so that *failures leave
evidence*.  A ``try/except Exception: pass`` in that code erases the
evidence: the job looks done, the artifact looks written, and the
corruption surfaces days later as a cache hit on garbage.  EXC001
flags broad handlers that swallow silently in the stage/journal/ledger
modules; EXC002 flags bare ``except:`` / ``except BaseException``
anywhere, because those also eat ``KeyboardInterrupt`` and
``SystemExit`` unless they re-raise.

"Swallows silently" is judged structurally: a handler body is a
swallow when it neither raises, nor calls anything (no logging, no
journaling, no degradation recording), nor even touches the bound
exception name.  Handlers that do any of those are assumed to be
handling, not hiding — the rule trades recall for near-zero false
positives, and the residue is suppressed with a recorded reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.engine import FileContext, Rule

#: Where EXC001 applies: the modules whose failure evidence the rest of
#: the system depends on (serve ledger/artifacts, resilience journal
#: and checkpoints, the pipeline stage bodies, batch extraction).
EXC_SCOPE_FRAGMENTS = ("/serve/", "/resilience/", "/core/pipeline.py",
                       "/batch.py")

_BROAD_NAMES = frozenset({"Exception", "BaseException"})
_BARE_NAMES = frozenset({"BaseException"})


def _handler_names(handler: ast.ExceptHandler,
                   ctx: FileContext) -> Iterator[str]:
    if handler.type is None:
        return
    targets = (handler.type.elts if isinstance(handler.type, ast.Tuple)
               else [handler.type])
    for target in targets:
        qual = ctx.qualname(target)
        if qual is not None:
            yield qual.rsplit(".", 1)[-1]


def _is_broad(handler: ast.ExceptHandler, ctx: FileContext) -> bool:
    if handler.type is None:
        return True
    return any(name in _BROAD_NAMES
               for name in _handler_names(handler, ctx))


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """No raise, no call, no use of the bound exception name."""
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Raise, ast.Call)):
                return False
            if (handler.name is not None and isinstance(sub, ast.Name)
                    and sub.id == handler.name):
                return False
    return True


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(sub, ast.Raise)
               for stmt in handler.body for sub in ast.walk(stmt))


def _describe(handler: ast.ExceptHandler, ctx: FileContext) -> str:
    if handler.type is None:
        return "bare 'except:'"
    names = list(_handler_names(handler, ctx))
    return f"'except {', '.join(names) or '...'}'"


class SwallowedExceptionRule(Rule):
    id = "EXC001"
    title = "broad except swallows silently in durability-critical code"
    rationale = (
        "A broad handler that neither re-raises, nor logs, nor records "
        "a degradation erases the only evidence a failure happened — "
        "in ledger/journal/stage code that converts crashes into "
        "silent corruption. Narrow the exception type, or make the "
        "handler leave a trace."
    )

    def _in_scope(self, ctx: FileContext) -> bool:
        path = "/" + ctx.path.replace("\\", "/").lstrip("/")
        return any(fragment in path for fragment in EXC_SCOPE_FRAGMENTS)

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: FileContext) -> None:
        if not self._in_scope(ctx):
            return
        if not _is_broad(node, ctx):
            return
        if not _body_is_silent(node):
            return
        ctx.report(
            self, node,
            f"{_describe(node, ctx)} swallows the exception without "
            f"re-raising, logging, or recording a degradation; in "
            f"ledger/journal/stage code this converts a crash into "
            f"silent corruption — narrow the type or leave a trace",
        )


class BareExceptRule(Rule):
    id = "EXC002"
    severity = "warning"
    title = "bare except / except BaseException without re-raise"
    rationale = (
        "A bare except (or except BaseException) also catches "
        "KeyboardInterrupt and SystemExit: Ctrl-C stops stopping the "
        "process and clean shutdown paths never run. Catch Exception "
        "instead, or re-raise unconditionally."
    )

    def _is_bare(self, node: ast.ExceptHandler, ctx: FileContext) -> bool:
        if node.type is None:
            return True
        return any(name in _BARE_NAMES
                   for name in _handler_names(node, ctx))

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: FileContext) -> None:
        if not self._is_bare(node, ctx):
            return
        if _reraises(node):
            return
        ctx.report(
            self, node,
            f"{_describe(node, ctx)} without an unconditional re-raise "
            f"also swallows KeyboardInterrupt/SystemExit; catch "
            f"Exception, or re-raise",
        )


def exception_rules() -> Tuple[Rule, ...]:
    return (SwallowedExceptionRule(), BareExceptRule())
