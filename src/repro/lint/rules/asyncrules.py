"""Async-safety rules (ASYNC) for the coroutine-facing serve layer.

The serve front end multiplexes many connections over one event loop:
every ``await`` is a point where *any* other coroutine may run.  These
rules pin the three failure shapes that follow — lost updates to shared
state across an await, the event loop stalled by a synchronous call,
and task exceptions that evaporate because nothing ever awaited the
task — plus the inverse mistake of pinning a *threading* lock across an
await (which stalls every thread contending for it).

All four rules reason on the function's CFG (:mod:`repro.lint.cfg`):
"across an await" is a path query, not a line-number comparison, so an
await inside one branch of an ``if`` is handled correctly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, CFGNode
from repro.lint.dataflow import await_before_kill, path_with_await
from repro.lint.engine import FileContext, Rule
from repro.lint.rules.concurrency import _LOCKISH_RE

#: Calls that block the calling thread — poison inside ``async def``,
#: where the calling thread is the event loop.
_BLOCKING_QUALS = frozenset({
    "time.sleep", "os.fsync", "io.open", "open",
    "subprocess.run", "subprocess.check_output", "subprocess.check_call",
    "socket.create_connection",
})

_TASK_SPAWN_SUFFIXES = ("create_task", "ensure_future")


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(expr: ast.AST) -> bool:
    name = _base_name(expr)
    return name is not None and bool(_LOCKISH_RE.search(name))


def _self_attrs(node: CFGNode) -> Iterator[Tuple[str, bool]]:
    """(attribute name, is_write) for every ``self.X`` access the node owns.

    An ``AugAssign`` target is both: ``self.n += 1`` reads and writes.
    """
    for expr in node.exprs:
        for sub in ast.walk(expr):
            if not (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"):
                continue
            if isinstance(sub.ctx, ast.Store):
                yield sub.attr, True
                parent_aug = isinstance(node.ast_node, ast.AugAssign) and (
                    node.ast_node.target is sub)
                if parent_aug:
                    yield sub.attr, False
            elif isinstance(sub.ctx, ast.Load):
                yield sub.attr, False


def _under_lock(ctx: FileContext, node: CFGNode,
                function: ast.AST) -> bool:
    """Is this program point inside a lock-holding ``with`` block?

    Walks the AST ancestry (not the CFG): a node whose statement sits
    in the body of a ``with <lockish>:`` / ``async with <lockish>:``
    executes with the lock held.  The ``with`` header itself does not.
    """
    current = node.ast_node
    if current is None:
        return False
    current = ctx.parent(current)
    while current is not None and current is not function:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            if any(_is_lockish(item.context_expr)
                   for item in current.items):
                return True
        current = ctx.parent(current)
    return False


class AwaitRaceRule(Rule):
    id = "ASYNC001"
    title = "read-modify-write of self state across an await without a lock"
    rationale = (
        "Every await is a scheduling point: another coroutine can run "
        "between the read and the write and its update is then lost. "
        "Make the read-modify-write atomic (no await between them) or "
        "hold an asyncio.Lock across the whole sequence."
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        cfg = ctx.cfg(node)
        reads: Dict[str, List[int]] = {}
        writes: Dict[str, List[int]] = {}
        for cfg_node in cfg.nodes.values():
            for attr, is_write in _self_attrs(cfg_node):
                bucket = writes if is_write else reads
                bucket.setdefault(attr, []).append(cfg_node.id)
        for attr, write_nodes in sorted(writes.items()):
            read_nodes = reads.get(attr)
            if not read_nodes:
                continue
            for write_id in sorted(set(write_nodes)):
                write_node = cfg.nodes[write_id]
                if _under_lock(ctx, write_node, node):
                    continue
                if self._races(cfg, ctx, node, read_nodes, write_id):
                    ctx.report(
                        self, write_node.ast_node or node,
                        f"self.{attr} is read before an await and "
                        f"written after it with no lock held; another "
                        f"coroutine can interleave at the await and its "
                        f"update is lost — make the read-modify-write "
                        f"atomic or guard it with a lock",
                    )
                    break

    def _races(self, cfg: CFG, ctx: FileContext, function: ast.AST,
               read_nodes: List[int], write_id: int) -> bool:
        for read_id in sorted(set(read_nodes)):
            if _under_lock(ctx, cfg.nodes[read_id], function):
                continue
            if read_id == write_id:
                if cfg.nodes[write_id].awaits:
                    return True
                continue
            if path_with_await(cfg, read_id, write_id):
                return True
        return False


class BlockingCallInAsyncRule(Rule):
    id = "ASYNC002"
    title = "blocking call inside an async def"
    rationale = (
        "A synchronous sleep/open/fsync/urlopen/queue operation inside "
        "a coroutine blocks the event loop thread: every other "
        "connection stalls for the duration. Use the async equivalent "
        "(asyncio.sleep, loop.run_in_executor, asyncio.Queue) instead."
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        for call in self._own_calls(node):
            qual = ctx.qualname(call.func)
            blocking = self._blocking_reason(qual, call)
            if blocking is not None:
                ctx.report(
                    self, call,
                    f"{blocking} blocks the event loop thread inside "
                    f"'async def {node.name}'; every other connection "
                    f"stalls — use the async equivalent or push it to "
                    f"an executor",
                )

    def _own_calls(self, function: ast.AsyncFunctionDef
                   ) -> Iterator[ast.Call]:
        stack: List[ast.AST] = list(function.body)
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue
            if isinstance(current, ast.Call):
                yield current
            stack.extend(ast.iter_child_nodes(current))

    def _blocking_reason(self, qual: Optional[str],
                         call: ast.Call) -> Optional[str]:
        if qual in _BLOCKING_QUALS:
            return f"{qual}()"
        if qual is not None and qual.endswith(".fsync"):
            return f"{qual}()"
        if qual is not None and (qual == "fs.open"
                                 or qual.endswith(".fs.open")):
            return f"{qual}()"
        if qual is not None and qual.rsplit(".", 1)[-1] == "urlopen":
            return "urlopen()"
        func = call.func
        if (isinstance(func, ast.Attribute) and func.attr in ("get", "put")):
            base = _base_name(func.value)
            if base is not None and (
                    "queue" in base.lower() or base.lower().endswith("_q")):
                return f"queue.Queue.{func.attr}()"
        return None


class FireAndForgetTaskRule(Rule):
    id = "ASYNC003"
    title = "fire-and-forget create_task whose exceptions are lost"
    rationale = (
        "A task nobody keeps a reference to (and never awaits) reports "
        "its exception only as a garbage-collection-time log line — the "
        "failure is silently dropped and the task may even be "
        "collected mid-flight. Keep the reference and await/gather it, "
        "or attach a done callback that surfaces the exception."
    )

    def visit_Expr(self, node: ast.Expr, ctx: FileContext) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        qual = ctx.qualname(call.func) or ""
        leaf = qual.rsplit(".", 1)[-1]
        if leaf not in _TASK_SPAWN_SUFFIXES:
            return
        ctx.report(
            self, call,
            f"{leaf}() result is discarded: the task's exception is "
            f"never retrieved and the task itself may be garbage "
            f"collected — keep the reference and await it, or add a "
            f"done callback that logs",
        )


class LockAcrossAwaitRule(Rule):
    id = "ASYNC004"
    title = "threading lock held across an await point"
    rationale = (
        "Awaiting while holding a synchronous lock parks the coroutine "
        "with the lock still held; any thread (or coroutine via "
        "run_in_executor) contending for it blocks for an unbounded "
        "scheduling delay. Use asyncio.Lock ('async with') in "
        "coroutines, or release before awaiting."
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        self._check_sync_withs(node, ctx)
        self._check_acquire_paths(node, ctx)

    def _check_sync_withs(self, function: ast.AsyncFunctionDef,
                          ctx: FileContext) -> None:
        stack: List[ast.AST] = list(function.body)
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue
            if (isinstance(current, ast.With)
                    and any(_is_lockish(item.context_expr)
                            for item in current.items)
                    and self._body_awaits(current.body)):
                ctx.report(
                    self, current,
                    "sync 'with <lock>:' body awaits while holding the "
                    "lock; the coroutine parks with the lock held — use "
                    "'async with' on an asyncio.Lock, or release before "
                    "awaiting",
                )
            stack.extend(ast.iter_child_nodes(current))

    def _body_awaits(self, body: List[ast.stmt]) -> bool:
        stack: List[ast.AST] = list(body)
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue
            if isinstance(current, ast.Await):
                return True
            stack.extend(ast.iter_child_nodes(current))
        return False

    def _check_acquire_paths(self, function: ast.AsyncFunctionDef,
                             ctx: FileContext) -> None:
        cfg = ctx.cfg(function)
        acquires: List[Tuple[int, str, ast.Call]] = []
        releases: Dict[str, Set[int]] = {}
        for cfg_node in cfg.nodes.values():
            for expr in cfg_node.exprs:
                for sub in ast.walk(expr):
                    if not (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)):
                        continue
                    base = _base_name(sub.func.value)
                    if base is None or not _LOCKISH_RE.search(base):
                        continue
                    if sub.func.attr == "acquire":
                        acquires.append((cfg_node.id, base, sub))
                    elif sub.func.attr == "release":
                        releases.setdefault(base, set()).add(cfg_node.id)
        for node_id, base, call in acquires:
            if await_before_kill(cfg, node_id, releases.get(base, set())):
                ctx.report(
                    self, call,
                    f"{base}.acquire() is held across an await point; "
                    f"the parked coroutine keeps the lock and stalls "
                    f"every contender — release before awaiting or use "
                    f"asyncio.Lock",
                )


def async_rules() -> Tuple[Rule, ...]:
    return (AwaitRaceRule(), BlockingCallInAsyncRule(),
            FireAndForgetTaskRule(), LockAcrossAwaitRule())
