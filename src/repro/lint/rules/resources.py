"""Resource-obligation rules (RES): every path must discharge what it opens.

The crash-safety story of the batch/serve layers is "write to a temp
file, fsync, ``os.replace`` into place, unlink the temp on failure".
The *shape* of that idiom is an obligation: creating the temp file (or
opening a handle, or connecting a socket) obliges every subsequent CFG
path to discharge it.  These rules run
:func:`repro.lint.dataflow.track_obligations` per function and report
obligations still live at the function's exits:

* RES001 — a temp file (``tempfile.mkstemp`` result, or a write-mode
  ``open``/``fs.open`` of a tmp-named variable) must reach ``replace``
  / ``rename`` / ``unlink`` / ``remove`` on every non-exceptional path,
  and be cleaned up on exception paths too.  The tree-wide cleanup
  idiom ``finally: if tmp.exists(): tmp.unlink()`` is recognized: an
  ``if`` header that tests ``<var>.exists(...)`` counts as a discharge,
  because the guard plus its body handle both cases.
* RES002 — a file handle bound by ``h = open(...)`` must be ``close``d
  on every path (or escape: returned, yielded, stored on an object, or
  handed to another call, which transfers ownership).  Handles managed
  by ``with`` never create the obligation.
* RES003 — sockets, subprocesses, and DB connections
  (``socket.socket``, ``socket.create_connection``, ``subprocess.Popen``,
  ``sqlite3.connect``) must reach their finalizer (``close`` /
  ``terminate`` / ``kill`` / ``wait`` / ``communicate`` / ``shutdown``)
  on every path, with the same escape rules as RES002.

Locks are deliberately *not* covered here — release-on-every-path for
locks is CONC003's contract.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, CFGNode, FunctionNode
from repro.lint.dataflow import track_obligations
from repro.lint.engine import FileContext, Rule

_TMPISH_RE = re.compile(r"(^|_)(tmp|temp)(_|$|\d)|^(tmp|temp)[a-z0-9_]*$",
                        re.IGNORECASE)

_RES001_DISCHARGES = frozenset({"replace", "rename", "unlink", "remove",
                                "move"})
_RES002_FINALIZERS = frozenset({"close"})
_RES003_FACTORIES = frozenset({
    "socket.socket", "socket.create_connection",
    "subprocess.Popen", "sqlite3.connect",
})
_RES003_FINALIZERS = frozenset({"close", "terminate", "kill", "wait",
                               "communicate", "shutdown"})


def _names_in(node: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _assigned_name(stmt: ast.AST) -> Optional[str]:
    """The simple name bound by ``name = ...``, else None."""
    if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)):
        return stmt.targets[0].id
    if (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
            and isinstance(stmt.target, ast.Name)):
        return stmt.target.id
    return None


def _escapes(node: CFGNode, name: str) -> bool:
    """Does this node transfer ownership of ``name`` out of the function?

    Returning/yielding the resource, storing it on an object or into a
    container, all hand responsibility to someone who outlives the
    function body.
    """
    for expr in node.exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = sub.value
                if value is not None and name in _names_in(value):
                    return True
            elif isinstance(sub, ast.Assign):
                if name not in _names_in(sub.value):
                    continue
                for target in sub.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True
    if (isinstance(node.ast_node, ast.Return)
            and node.ast_node.value is not None
            and name in _names_in(node.ast_node.value)):
        return True
    return False


def _passed_to_call(node: CFGNode, name: str) -> bool:
    """Is ``name`` an *argument* of some call (not the receiver)?"""
    for expr in node.exprs:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if name in _names_in(arg):
                    return True
    return False


class _ObligationRule(Rule):
    """Shared CFG-obligation machinery for the RES family."""

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        self._check(node, ctx)

    def _check(self, function: FunctionNode, ctx: FileContext) -> None:
        cfg = ctx.cfg(function)
        gens: Dict[int, List[str]] = {}
        for cfg_node in cfg.nodes.values():
            for name in self._creations(cfg_node, ctx):
                gens.setdefault(cfg_node.id, []).append(name)
        if not gens:
            return
        tracked = {name for names in gens.values() for name in names}
        kills: Dict[int, Set[str]] = {}
        for cfg_node in cfg.nodes.values():
            killed = {name for name in tracked
                      if self._discharges(cfg_node, name, ctx)}
            if killed:
                kills[cfg_node.id] = killed
        leaked_normal, leaked_exc = track_obligations(cfg, gens, kills)
        reported: Set[Tuple[int, str]] = set()
        for node_id, name in sorted(leaked_normal):
            reported.add((node_id, name))
            anchor = cfg.nodes[node_id].ast_node or function
            ctx.report(self, anchor, self._message(name, exceptional=False))
        for node_id, name in sorted(leaked_exc):
            if (node_id, name) in reported:
                continue
            anchor = cfg.nodes[node_id].ast_node or function
            ctx.report(self, anchor, self._message(name, exceptional=True))

    # Subclass surface -------------------------------------------------
    def _creations(self, node: CFGNode,
                   ctx: FileContext) -> Iterable[str]:
        raise NotImplementedError

    def _discharges(self, node: CFGNode, name: str,
                    ctx: FileContext) -> bool:
        raise NotImplementedError

    def _message(self, name: str, exceptional: bool) -> str:
        raise NotImplementedError


class TempFileObligationRule(_ObligationRule):
    id = "RES001"
    title = "temp file not replaced or unlinked on every path"
    rationale = (
        "A temp file that misses its os.replace()/unlink() on some "
        "path is worse than litter: a later run can mistake it for a "
        "half-written artifact, and on exception paths it leaks one "
        "file per failure. Every path must end in replace-or-unlink; "
        "the 'finally: if tmp.exists(): tmp.unlink()' idiom satisfies "
        "the exception side."
    )

    def _creations(self, node: CFGNode, ctx: FileContext) -> Iterable[str]:
        stmt = node.ast_node
        if stmt is None:
            return
        name = _assigned_name(stmt)
        value = getattr(stmt, "value", None)
        if name is not None and isinstance(value, ast.Call):
            qual = ctx.qualname(value.func) or ""
            if qual == "tempfile.mkstemp":
                yield name
                return
        # A write-mode open of a tmp-named variable creates the
        # obligation on the *tmp name*, with or without an assignment:
        # ``with fs.open(str(tmp), "w") as fh:`` is the common shape.
        for expr in node.exprs:
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                is_open = (isinstance(func, ast.Name) and func.id == "open"
                           ) or (isinstance(func, ast.Attribute)
                                 and func.attr == "open")
                if not is_open or not self._write_mode(sub):
                    continue
                for arg_name in (_names_in(sub.args[0])
                                 if sub.args else set()):
                    if _TMPISH_RE.search(arg_name):
                        yield arg_name

    def _write_mode(self, call: ast.Call) -> bool:
        mode: Optional[ast.AST] = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return False
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(flag in mode.value for flag in ("w", "a", "x", "+"))
        return True  # dynamic mode: assume writing

    def _discharges(self, node: CFGNode, name: str,
                    ctx: FileContext) -> bool:
        stmt = node.ast_node
        # The exists()-guard idiom: the If header that tests
        # ``tmp.exists()`` discharges — guard plus body cover both the
        # already-replaced and still-present cases.
        if node.kind == "test" and isinstance(stmt, ast.If):
            for sub in ast.walk(stmt.test):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "exists"
                        and name in _names_in(sub.func)):
                    return True
        for expr in node.exprs:
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                attr = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else "")
                if attr not in _RES001_DISCHARGES:
                    continue
                involved = _names_in(sub)
                if name in involved:
                    return True
        return _escapes(node, name)

    def _message(self, name: str, exceptional: bool) -> str:
        if exceptional:
            return (f"temp file {name!r} is not cleaned up on an "
                    f"exception path; add 'finally: if {name}.exists(): "
                    f"{name}.unlink()' so failures do not leak "
                    f"half-written files")
        return (f"temp file {name!r} can reach the end of this function "
                f"without os.replace() or unlink(); some path leaves a "
                f"stray file a later run can mistake for a real artifact")


class OpenHandleRule(_ObligationRule):
    id = "RES002"
    title = "file handle not closed on every path"
    rationale = (
        "A handle left open on some CFG path holds its descriptor (and "
        "on Windows, its lock on the file) until garbage collection "
        "gets around to it — under load that is descriptor exhaustion. "
        "Use 'with open(...)', or close in a finally."
    )

    def _creations(self, node: CFGNode, ctx: FileContext) -> Iterable[str]:
        stmt = node.ast_node
        if stmt is None or isinstance(stmt, (ast.With, ast.AsyncWith)):
            return  # with-managed handles close themselves
        name = _assigned_name(stmt)
        if name is None:
            return
        value = getattr(stmt, "value", None)
        if not isinstance(value, ast.Call):
            return
        func = value.func
        is_open = (isinstance(func, ast.Name)
                   and ctx.aliases.get(func.id, func.id) == "open"
                   ) or (isinstance(func, ast.Attribute)
                         and func.attr == "open")
        if is_open:
            yield name

    def _discharges(self, node: CFGNode, name: str,
                    ctx: FileContext) -> bool:
        for expr in node.exprs:
            for sub in ast.walk(expr):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _RES002_FINALIZERS
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name):
                    return True
        return _escapes(node, name) or _passed_to_call(node, name)

    def _message(self, name: str, exceptional: bool) -> str:
        where = ("an exception path" if exceptional
                 else "a non-exceptional path")
        return (f"file handle {name!r} is not closed on {where}; use "
                f"'with open(...)' or close it in a finally block")


class ResourceFinalizerRule(_ObligationRule):
    id = "RES003"
    title = "socket/process/connection not finalized on every path"
    rationale = (
        "Sockets, subprocesses, and DB connections that skip their "
        "finalizer on some path leak descriptors, zombie processes, or "
        "write-ahead locks. Close/terminate in a finally, or use the "
        "object's context manager."
    )

    def _creations(self, node: CFGNode, ctx: FileContext) -> Iterable[str]:
        stmt = node.ast_node
        if stmt is None or isinstance(stmt, (ast.With, ast.AsyncWith)):
            return
        name = _assigned_name(stmt)
        if name is None:
            return
        value = getattr(stmt, "value", None)
        if not isinstance(value, ast.Call):
            return
        if (ctx.qualname(value.func) or "") in _RES003_FACTORIES:
            yield name

    def _discharges(self, node: CFGNode, name: str,
                    ctx: FileContext) -> bool:
        for expr in node.exprs:
            for sub in ast.walk(expr):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _RES003_FINALIZERS
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name):
                    return True
        return _escapes(node, name) or _passed_to_call(node, name)

    def _message(self, name: str, exceptional: bool) -> str:
        where = ("an exception path" if exceptional
                 else "a non-exceptional path")
        return (f"resource {name!r} is not closed/terminated on {where}; "
                f"finalize it in a finally block or use its context "
                f"manager")


def resource_rules() -> Tuple[Rule, ...]:
    return (TempFileObligationRule(), OpenHandleRule(),
            ResourceFinalizerRule())
