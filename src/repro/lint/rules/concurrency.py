"""Concurrency and IO-ordering rules for the persistence/batch layer.

The batch scheduler, structure cache, run journal, and checkpoint writer
all promise crash safety built on two idioms: *fsync before rename* (an
``os.replace`` of un-synced data can surface as a zero-length file after
power loss on common filesystems) and *no shared mutable module state*
across the fork boundary (a fork-inherited dict silently diverges
between scheduler and workers).  These rules pin both idioms, plus the
lock-release discipline that keeps watchdog threads from deadlocking a
failed stage.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.cfg import FunctionNode
from repro.lint.dataflow import dominators, postdominators
from repro.lint.engine import SEVERITY_WARNING, FileContext, Rule

_LOCKISH_RE = re.compile(r"(lock|mutex|sem(aphore)?|cond(ition)?)s?$",
                         re.IGNORECASE)

#: Module-level calls producing mutable containers.
MUTABLE_FACTORY_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.deque", "collections.Counter",
})

PROCESS_POOL_MODULES = ("multiprocessing", "concurrent.futures")


class FsyncBeforeReplaceRule(Rule):
    id = "CONC001"
    title = "os.replace not dominated by an fsync"
    rationale = (
        "os.replace is atomic for readers but not durable: renaming a "
        "file whose data was never fsync'd can leave an empty or torn "
        "target after a crash. The fsync must *dominate* the replace — "
        "happen on every path to it, not just exist earlier in the "
        "function text — so an fsync inside one branch of an if does "
        "not cover a replace after the join."
    )

    def _check_scope(self, function: FunctionNode,
                     ctx: FileContext) -> None:
        cfg = ctx.cfg(function)
        fsync_nodes: List[int] = []
        replaces: List[Tuple[int, ast.Call]] = []
        for cfg_node in cfg.nodes.values():
            for expr in cfg_node.exprs:
                for sub in ast.walk(expr):
                    if not isinstance(sub, ast.Call):
                        continue
                    qual = ctx.qualname(sub.func) or ""
                    if qual == "os.fsync" or qual.endswith(".fsync"):
                        fsync_nodes.append(cfg_node.id)
                    elif (qual == "os.replace" or qual == "fs.replace"
                          or qual.endswith(".fs.replace")):
                        replaces.append((cfg_node.id, sub))
        if not replaces:
            return
        dom = dominators(cfg)
        for node_id, call in replaces:
            node_doms = dom.get(node_id, set())
            covered = any(f == node_id or f in node_doms
                          for f in fsync_nodes)
            if not covered:
                ctx.report(self, call,
                           "os.replace() is not dominated by an "
                           "os.fsync() of the source file: on some path "
                           "the rename happens without a preceding "
                           "fsync, so a crash can surface a torn or "
                           "empty target")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        self._check_scope(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        self._check_scope(node, ctx)


class ModuleMutableStateRule(Rule):
    id = "CONC002"
    title = "module-level mutable state in a process-pool module"
    rationale = (
        "A module that fans work across processes must not keep mutable "
        "module-level containers: each fork inherits a snapshot that "
        "then diverges silently from the parent. Use immutable "
        "constants, or keep state on instances passed explicitly."
    )

    def _uses_process_pools(self, ctx: FileContext) -> bool:
        return any(origin.split(".")[0] in
                   (m.split(".")[0] for m in PROCESS_POOL_MODULES)
                   or origin.startswith(PROCESS_POOL_MODULES)
                   for origin in ctx.aliases.values())

    def _is_mutable_value(self, node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.qualname(node.func) in MUTABLE_FACTORY_CALLS
        return False

    def finish_module(self, ctx: FileContext) -> None:
        if not self._uses_process_pools(ctx):
            return
        for stmt in ctx.tree.body:
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not self._is_mutable_value(value, ctx):
                continue
            names = ", ".join(t.id for t in targets
                              if isinstance(t, ast.Name))
            if not names:
                continue
            ctx.report(self, stmt,
                       f"module-level mutable container {names!r} in a "
                       f"module that spawns worker processes; forked "
                       f"copies diverge silently — use an immutable "
                       f"value or instance state")


class LockDisciplineRule(Rule):
    id = "CONC003"
    title = "lock release does not post-dominate the acquire"
    rationale = (
        "An exception between acquire() and release() leaks the lock "
        "and deadlocks every later acquirer — exactly the code paths "
        "the resilience layer exists to survive. The release must "
        "post-dominate the acquire: every outcome after the acquire "
        "succeeds, normal or exceptional, must pass a release. Use "
        "`with lock:` (or try/finally)."
    )

    def _base_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _check_scope(self, function: FunctionNode,
                     ctx: FileContext) -> None:
        cfg = ctx.cfg(function)
        acquires: List[Tuple[int, str, ast.Call]] = []
        releases: Dict[str, Set[int]] = {}
        for cfg_node in cfg.nodes.values():
            for expr in cfg_node.exprs:
                for sub in ast.walk(expr):
                    if not (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)):
                        continue
                    base = self._base_name(sub.func.value)
                    if base is None or not _LOCKISH_RE.search(base):
                        continue
                    if sub.func.attr == "acquire":
                        acquires.append((cfg_node.id, base, sub))
                    elif sub.func.attr == "release":
                        releases.setdefault(base, set()).add(cfg_node.id)
        if not acquires:
            return
        pdom = postdominators(cfg)
        for node_id, base, call in acquires:
            # The acquire's *own* exception edge means the lock was
            # never taken — judge only flow after it succeeds: every
            # normal successor must be post-dominated by a release.
            release_nodes = releases.get(base, set())
            successors = list(cfg.normal_successors(node_id))
            held_paths_released = successors and all(
                any(r == succ or r in pdom.get(succ, set())
                    for r in release_nodes)
                for succ in successors
            )
            if not held_paths_released:
                ctx.report(self, call,
                           f"{base}.acquire() without a release on every "
                           f"path (normal and exceptional); use "
                           f"'with {base}:' or try/finally so an "
                           f"exception cannot leak the lock")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        self._check_scope(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        self._check_scope(node, ctx)


#: Modules CONC004 scopes to: the columnar merge-kernel layer, where a
#: per-candidate union loop defeats the batched kernel.  The explicit
#: per-candidate *fallback* rungs live in ``merges.py`` (out of scope,
#: by design — they are the safety ladder, not the hot path).
MERGE_KERNEL_BASENAMES = ("columnar.py", "unionfind.py")


class PerCandidateMergeLoopRule(Rule):
    id = "CONC004"
    title = "per-candidate python loop over merge candidate columns"
    rationale = (
        "The columnar merge stages exist to run one batched union pass "
        "per round; a python for-loop that walks candidate columns "
        "(tolist()/zip of columns, or a *_candidates/*_pairs stream) and "
        "unions per element reintroduces the per-candidate interpreter "
        "overhead the batched kernel removed. Emit candidate arrays and "
        "hand them to repro.core.unionfind.batch_union instead."
    )

    def _iterates_candidates(self, iter_node: ast.AST) -> bool:
        for sub in ast.walk(iter_node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr == "tolist":
                return True
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else "")
            if name.endswith("_candidates") or name.endswith("_pairs"):
                return True
        return False

    def _body_unions(self, node: ast.For) -> Optional[ast.Call]:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("union", "find")):
                    return sub
        return None

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        basename = ctx.path.replace("\\", "/").rsplit("/", 1)[-1]
        if basename not in MERGE_KERNEL_BASENAMES:
            return
        if not self._iterates_candidates(node.iter):
            return
        call = self._body_unions(node)
        if call is None:
            return
        ctx.report(self, node,
                   f"per-candidate loop over merge columns calls "
                   f".{call.func.attr}() per element; batch the round "
                   f"through repro.core.unionfind.batch_union")


#: Path fragment CONC005 scopes to: the HTTP service layer, where an
#: unbounded socket/stream read hands a slow or malicious peer
#: unlimited server (or client) time — the slow-loris shape.
SERVE_PATH_FRAGMENT = "/serve/"

#: asyncio.StreamReader methods that block until the peer sends bytes.
STREAM_READ_METHODS = frozenset({
    "read", "readline", "readexactly", "readuntil",
})


class BlockingReadDeadlineRule(Rule):
    id = "CONC005"
    severity = SEVERITY_WARNING
    title = "stream read without a deadline in a serve module"
    rationale = (
        "A socket read with no timeout lets one stalled peer pin a "
        "connection (and its coroutine or thread) forever — the "
        "slow-loris failure the serve front end must shed. Wrap awaited "
        "stream reads in asyncio.wait_for(...) under the connection's "
        "read deadline, and give every urlopen() an explicit timeout=."
    )

    def _in_scope(self, ctx: FileContext) -> bool:
        return SERVE_PATH_FRAGMENT in ctx.path.replace("\\", "/")

    def visit_Await(self, node: ast.Await, ctx: FileContext) -> None:
        if not self._in_scope(ctx):
            return
        value = node.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in STREAM_READ_METHODS):
            # In the sanctioned idiom the read call is an *argument* of
            # asyncio.wait_for(...), so its parent is that Call, not the
            # Await — a directly-awaited read has no deadline.
            ctx.report(self, value,
                       f"awaited {value.func.attr}() with no deadline; a "
                       f"stalled peer blocks this coroutine forever — "
                       f"wrap the read in asyncio.wait_for(...) under "
                       f"the connection's read timeout")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not self._in_scope(ctx):
            return
        qual = ctx.qualname(node.func) or ""
        if qual.rsplit(".", 1)[-1] != "urlopen":
            return
        if any(kw.arg == "timeout" for kw in node.keywords):
            return
        if len(node.args) >= 3:  # urlopen(url, data, timeout, ...)
            return
        ctx.report(self, node,
                   "urlopen() without timeout= blocks forever on an "
                   "unresponsive server; pass an explicit timeout")


def concurrency_rules() -> Tuple[Rule, ...]:
    return (FsyncBeforeReplaceRule(), ModuleMutableStateRule(),
            LockDisciplineRule(), PerCandidateMergeLoopRule(),
            BlockingReadDeadlineRule())
