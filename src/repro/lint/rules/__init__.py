"""The shipped rule families of ``repro lint``."""

from typing import List

from repro.lint.engine import Rule
from repro.lint.rules.asyncrules import async_rules
from repro.lint.rules.concurrency import concurrency_rules
from repro.lint.rules.dataflow import dataflow_rules
from repro.lint.rules.determinism import determinism_rules
from repro.lint.rules.exceptions import exception_rules
from repro.lint.rules.resources import resource_rules

#: Version of the shipped rule set, keyed into the incremental result
#: cache: bump it whenever any rule's behavior changes so stale cached
#: findings are discarded wholesale.  The major matches the JSON report
#: version; the minor counts rule-set revisions within it.
RULESET_VERSION = "2.0"


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [
        *determinism_rules(),
        *dataflow_rules(),
        *async_rules(),
        *resource_rules(),
        *exception_rules(),
        *concurrency_rules(),
    ]
