"""The shipped rule families of ``repro lint``."""

from typing import List

from repro.lint.engine import Rule
from repro.lint.rules.concurrency import concurrency_rules
from repro.lint.rules.dataflow import dataflow_rules
from repro.lint.rules.determinism import determinism_rules


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [
        *determinism_rules(),
        *dataflow_rules(),
        *concurrency_rules(),
    ]
