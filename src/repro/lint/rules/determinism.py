"""Determinism rules: sources of run-to-run variation on result paths.

Every guarantee the pipeline advertises — bit-identical checkpoint
resume, columnar/python backend equivalence, content-keyed caching —
assumes stages are pure functions of their declared inputs.  These rules
flag the classic ways that assumption silently breaks: wall-clock reads,
ambient RNG, iteration order of unordered containers, environment reads,
and float accumulation whose order an unordered container decides.

All five rules are scoped to modules reachable from the pipeline stage
bodies (see :mod:`repro.lint.reachability`); outside that closure a
clock read cannot perturb an extracted structure and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence, Tuple

from repro.lint.engine import FileContext, Rule

#: Clock reads: any of these inside a stage-reachable module makes the
#: result (or a cached/checkpointed artifact keyed on it) time-dependent.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level ``random`` functions: all draw from the ambient global
#: RNG, whose state depends on everything that ran before.
GLOBAL_RNG_CALLS = frozenset({
    f"random.{name}" for name in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "getrandbits", "randbytes",
    )
})

ENV_READ_CALLS = frozenset({"os.getenv", "os.environ.get"})

#: Wrappers that make iteration order irrelevant: the consumer either
#: normalizes order (sorted) or is order-insensitive by construction.
ORDER_NEUTRAL_CALLS = frozenset({
    "sorted", "len", "any", "all", "min", "max", "set", "frozenset", "sum",
})

#: Order-sensitive consumers of an iterable: the produced order becomes
#: observable output.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})


def is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    """Is ``node`` syntactically an unordered set value?

    Recognizes set/frozenset literals, comprehensions, calls, and the
    set-algebra binary operators applied to such values.  Variables are
    not type-tracked — the rule trades recall for zero false positives
    on non-set values.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qual = ctx.qualname(node.func)
        return qual in ("set", "frozenset", "builtins.set",
                        "builtins.frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (is_set_expr(node.left, ctx) or
                is_set_expr(node.right, ctx))
    return False


def _enclosing_call(node: ast.AST, ctx: FileContext) -> Optional[str]:
    """Qualname of the call this expression is a direct argument of."""
    parent = ctx.parent(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        return ctx.qualname(parent.func)
    return None


class WallClockRule(Rule):
    id = "DET001"
    title = "wall-clock read on a result-affecting path"
    rationale = (
        "A stage that reads the clock produces different bytes on every "
        "run, breaking bit-identical resume and backend equivalence. "
        "Telemetry-only timing must be suppressed with a reason."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.det_scope:
            return
        qual = ctx.qualname(node.func)
        if qual in WALL_CLOCK_CALLS:
            ctx.report(self, node,
                       f"call to {qual}() reads the wall clock inside a "
                       f"module reachable from pipeline stage bodies")


class UnseededRandomRule(Rule):
    id = "DET002"
    title = "ambient or unseeded random number generator"
    rationale = (
        "The global random module and unseeded generators make results "
        "depend on interpreter history; stages must thread an explicitly "
        "seeded Random/Generator instance."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.det_scope:
            return
        qual = ctx.qualname(node.func)
        if qual in GLOBAL_RNG_CALLS:
            ctx.report(self, node,
                       f"{qual}() draws from the ambient global RNG; pass "
                       f"an explicitly seeded random.Random instead")
        elif qual in ("random.Random", "numpy.random.default_rng",
                      "numpy.random.Generator") and not node.args:
            ctx.report(self, node,
                       f"{qual}() without a seed argument is "
                       f"nondeterministic; pass an explicit seed")
        elif qual == "random.seed":
            ctx.report(self, node,
                       "random.seed() mutates global interpreter state; "
                       "use a local seeded random.Random")


class UnorderedIterationRule(Rule):
    id = "DET003"
    title = "iteration over an unordered set feeds ordered output"
    rationale = (
        "Set iteration order is an implementation detail (and hash-seed "
        "dependent for str keys); any ordered structure built from it — "
        "a list, a dict's insertion order, loop side effects — varies "
        "between runs. Wrap in sorted(...) or iterate the original "
        "ordered source."
    )

    def _flag(self, node: ast.AST, ctx: FileContext, how: str) -> None:
        ctx.report(self, node,
                   f"{how} iterates an unordered set; wrap it in "
                   f"sorted(...) or iterate a deterministically ordered "
                   f"source")

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        if ctx.det_scope and is_set_expr(node.iter, ctx):
            self._flag(node.iter, ctx, "for-loop")

    def _check_comprehension(self, node: ast.AST,
                             generators: Sequence[ast.comprehension],
                             ctx: FileContext, kind: str) -> None:
        if not ctx.det_scope:
            return
        for gen in generators:
            if not is_set_expr(gen.iter, ctx):
                continue
            if kind in ("set", "generator"):
                # A set built from a set stays unordered (fine); a
                # generator's hazard materializes at its order-sensitive
                # consumer, which the Call checks flag.
                continue
            if _enclosing_call(node, ctx) in ORDER_NEUTRAL_CALLS:
                continue
            self._flag(gen.iter, ctx, f"{kind} comprehension")

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        self._check_comprehension(node, node.generators, ctx, "list")

    def visit_DictComp(self, node: ast.DictComp, ctx: FileContext) -> None:
        self._check_comprehension(node, node.generators, ctx, "dict")

    def visit_SetComp(self, node: ast.SetComp, ctx: FileContext) -> None:
        self._check_comprehension(node, node.generators, ctx, "set")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.det_scope or not node.args:
            return
        qual = ctx.qualname(node.func)
        sensitive = qual in ORDER_SENSITIVE_CALLS or (
            qual is not None and qual.endswith(".join")
        )
        if not sensitive:
            return
        arg = node.args[0]
        if is_set_expr(arg, ctx):
            self._flag(arg, ctx, f"{qual}()")
        elif isinstance(arg, ast.GeneratorExp) and any(
                is_set_expr(g.iter, ctx) for g in arg.generators):
            self._flag(arg, ctx, f"generator inside {qual}()")


class EnvironmentReadRule(Rule):
    id = "DET004"
    title = "environment variable read on a result-affecting path"
    rationale = (
        "os.environ makes the result depend on ambient process state "
        "that cache keys and checkpoints cannot see; configuration must "
        "arrive through PipelineOptions."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.det_scope:
            return
        qual = ctx.qualname(node.func)
        if qual in ENV_READ_CALLS:
            ctx.report(self, node,
                       f"{qual}() reads the process environment inside a "
                       f"result-affecting module; route configuration "
                       f"through PipelineOptions")

    def visit_Subscript(self, node: ast.Subscript, ctx: FileContext) -> None:
        if not ctx.det_scope:
            return
        if (isinstance(node.ctx, ast.Load)
                and ctx.qualname(node.value) == "os.environ"):
            ctx.report(self, node,
                       "os.environ[...] read inside a result-affecting "
                       "module; route configuration through "
                       "PipelineOptions")


class FloatAccumulationRule(Rule):
    id = "DET005"
    title = "accumulation over an unordered set (float-order hazard)"
    rationale = (
        "Float addition is not associative: summing a set visits "
        "elements in hash order, so the rounded total can differ between "
        "runs. Sum a sorted sequence, or use math.fsum (order-exact)."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.det_scope or not node.args:
            return
        qual = ctx.qualname(node.func)
        if qual not in ("sum", "functools.reduce"):
            return  # math.fsum is exempt: exact regardless of order
        arg = node.args[0] if qual == "sum" else (
            node.args[1] if len(node.args) > 1 else None
        )
        if arg is None:
            return
        hazard = is_set_expr(arg, ctx) or (
            isinstance(arg, ast.GeneratorExp)
            and any(is_set_expr(g.iter, ctx) for g in arg.generators)
        )
        if hazard:
            ctx.report(self, node,
                       f"{qual}() over an unordered set accumulates in "
                       f"hash order; sort the operands or use math.fsum")


def determinism_rules() -> Tuple[Rule, ...]:
    return (WallClockRule(), UnseededRandomRule(), UnorderedIterationRule(),
            EnvironmentReadRule(), FloatAccumulationRule())
