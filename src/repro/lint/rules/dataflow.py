"""Stage-graph dataflow rules: the declared pipeline vs. its bodies.

Since the resilience rework the pipeline is declarative data — the
:data:`repro.core.pipeline.STAGE_GRAPH` tuple of
:class:`~repro.core.pipeline.StageSignature` records — materialized into
executor stages at run time.  That makes the dataflow contract statically
checkable, and these rules do exactly that, on two levels:

* **graph-only** checks (:func:`check_stage_graph` with no effects):
  every declared input has a producer, degradable outputs are only
  consumed behind a guard or an earlier default;
* **graph-vs-body** checks: a lightweight interprocedural analysis
  (:func:`collect_ctx_effects`) extracts each stage body's actual
  ``ctx[...]`` reads and writes — following helper calls that receive
  the context dict — and verifies them against the declarations, and
  every fallback against its primary.

The pure functions take the graph and effects as arguments so tests can
inject mutated copies; the :class:`Rule` wrappers resolve both from
``repro.core.pipeline`` (preferring the linted tree's copy of the module
source when present).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import ProjectContext, Rule

PIPELINE_MODULE = "repro.core.pipeline"


# ----------------------------------------------------------------------
# Context-effect analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CtxEffects:
    """What one function does to the shared pipeline context dict.

    ``reads`` are hard reads (``ctx["k"]`` loads): the key must exist.
    ``soft_reads`` (``ctx.get("k")``) tolerate absence and are exempt
    from the declared-input check — they are how a body probes for an
    optional artifact.  ``writes`` cover assignment, ``ctx.pop`` and
    ``ctx.setdefault`` (both deliberately decide the key's fate).
    """

    reads: FrozenSet[str]
    soft_reads: FrozenSet[str]
    writes: FrozenSet[str]


def _iter_scope(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _subscript_key(node: ast.Subscript) -> Optional[str]:
    sl: ast.AST = node.slice
    index_cls = getattr(ast, "Index", None)
    if index_cls is not None and isinstance(sl, index_cls):
        sl = sl.value  # pragma: no cover - pre-3.9 AST shape
    if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
        return sl.value
    return None


def collect_ctx_effects(tree: ast.Module,
                        param: str = "ctx") -> Dict[str, CtxEffects]:
    """Per-function context effects for every function in ``tree``.

    A function participates when it has a parameter named ``param``;
    effects propagate transitively through calls that pass that
    parameter onward (``_build_phases(ctx, ...)``), so a stage body's
    entry reflects everything its helpers touch.  Dynamic keys
    (``ctx[var]``) are invisible to this analysis — the pipeline bodies
    use literal keys only, by design.
    """
    functions: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node

    direct: Dict[str, Tuple[Set[str], Set[str], Set[str], Set[str]]] = {}
    for name, fn in functions.items():
        args = fn.args
        all_params = (args.posonlyargs + args.args + args.kwonlyargs
                      if hasattr(args, "posonlyargs")
                      else args.args + args.kwonlyargs)
        if not any(a.arg == param for a in all_params):
            continue
        reads: Set[str] = set()
        soft: Set[str] = set()
        writes: Set[str] = set()
        calls: Set[str] = set()
        for node in _iter_scope(fn):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == param):
                key = _subscript_key(node)
                if key is None:
                    continue
                if isinstance(node.ctx, ast.Load):
                    reads.add(key)
                else:  # Store and Del both decide the key's fate
                    writes.add(key)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == param):
                    if node.args and isinstance(node.args[0], ast.Constant) \
                            and isinstance(node.args[0].value, str):
                        key = node.args[0].value
                        if func.attr == "get":
                            soft.add(key)
                        elif func.attr in ("pop", "setdefault"):
                            writes.add(key)
                elif isinstance(func, ast.Name) and func.id in functions:
                    passes_ctx = any(
                        isinstance(a, ast.Name) and a.id == param
                        for a in node.args
                    ) or any(
                        isinstance(kw.value, ast.Name)
                        and kw.value.id == param
                        for kw in node.keywords
                    )
                    if passes_ctx:
                        calls.add(func.id)
        direct[name] = (reads, soft, writes, calls)

    resolved: Dict[str, CtxEffects] = {}

    def resolve(name: str, stack: Tuple[str, ...]) -> CtxEffects:
        if name in resolved:
            return resolved[name]
        if name in stack or name not in direct:
            return CtxEffects(frozenset(), frozenset(), frozenset())
        reads, soft, writes, calls = direct[name]
        reads, soft, writes = set(reads), set(soft), set(writes)
        for callee in calls:
            sub = resolve(callee, stack + (name,))
            reads |= sub.reads
            soft |= sub.soft_reads
            writes |= sub.writes
        effects = CtxEffects(frozenset(reads), frozenset(soft),
                             frozenset(writes))
        resolved[name] = effects
        return effects

    return {name: resolve(name, ()) for name in direct}


# ----------------------------------------------------------------------
# Graph checks (pure functions — tests inject mutated graphs here)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphFinding:
    """One dataflow defect, attributed to a stage by name."""

    rule: str
    stage: str
    message: str


def check_stage_graph(
    graph: Sequence[object],
    seed_keys: FrozenSet[str],
    effects: Optional[Dict[str, CtxEffects]] = None,
) -> List[GraphFinding]:
    """All dataflow findings for ``graph``.

    Graph-only checks (DF001, DF003) always run; the body-contract
    checks (DF002, DF004, DF005) need ``effects`` from
    :func:`collect_ctx_effects` over the module defining the bodies.
    """
    findings: List[GraphFinding] = []
    seeds = frozenset(seed_keys)
    seen: Set[str] = set()

    for index, sig in enumerate(graph):
        if sig.name in seen:
            findings.append(GraphFinding(
                "DF001", sig.name,
                f"duplicate stage name {sig.name!r} in the stage graph",
            ))
        seen.add(sig.name)
        earlier = graph[:index]

        for key in sig.inputs:
            if key in seeds:
                continue
            producers = [p for p in earlier if key in p.outputs
                         and p.condition in ("", sig.condition)]
            if not producers:
                findings.append(GraphFinding(
                    "DF001", sig.name,
                    f"input {key!r} of stage {sig.name!r} is not a seed "
                    f"key and no unconditional (or same-condition) "
                    f"predecessor produces it",
                ))
                continue
            degraders = [p for p in earlier
                         if p.degradable and key in p.outputs]
            if not degraders:
                continue
            guarded = any(set(sig.requires) & set(d.outputs)
                          for d in degraders)
            defaulted = any(key in p.outputs for p in earlier
                            if not p.degradable)
            if not (guarded or defaulted):
                findings.append(GraphFinding(
                    "DF003", sig.name,
                    f"stage {sig.name!r} consumes {key!r} from degradable "
                    f"stage {degraders[-1].name!r} without a requires= "
                    f"guard or an earlier non-degradable default; a "
                    f"degraded run would read a missing key",
                ))

        for req in sig.requires:
            if not any(req in p.outputs for p in earlier):
                findings.append(GraphFinding(
                    "DF001", sig.name,
                    f"requires key {req!r} of stage {sig.name!r} is not "
                    f"produced by any predecessor, so the stage could "
                    f"never run",
                ))

    if effects is None:
        return findings

    for sig in graph:
        ladder: List[Tuple[str, Optional[CtxEffects]]] = [
            (sig.body, effects.get(sig.body))
        ]
        for _, fallback_body in sig.fallbacks:
            ladder.append((fallback_body, effects.get(fallback_body)))
        for body_name, body_effects in ladder:
            if body_effects is None:
                findings.append(GraphFinding(
                    "DF005", sig.name,
                    f"stage {sig.name!r} names body {body_name!r}, which "
                    f"is not a known context-taking function",
                ))
        known = [(n, e) for n, e in ladder if e is not None]
        if not known:
            continue

        primary = known[0][1] if known[0][0] == sig.body else None
        declared_out = set(sig.outputs)
        if primary is not None:
            required = declared_out & primary.writes
            for body_name, body_effects in known[1:]:
                missing = required - body_effects.writes
                if missing:
                    findings.append(GraphFinding(
                        "DF002", sig.name,
                        f"fallback {body_name!r} of stage {sig.name!r} "
                        f"does not produce declared output(s) "
                        f"{', '.join(sorted(missing))} that the primary "
                        f"body writes; falling back would change the "
                        f"stage's signature",
                    ))

        declared_in = set(sig.inputs)
        for body_name, body_effects in known:
            undeclared = body_effects.reads - declared_in
            if undeclared:
                findings.append(GraphFinding(
                    "DF004", sig.name,
                    f"body {body_name!r} of stage {sig.name!r} reads "
                    f"undeclared context key(s) "
                    f"{', '.join(sorted(undeclared))}; checkpoint resume "
                    f"and the executor's requires= skipping cannot see "
                    f"these reads",
                ))

        all_writes: Set[str] = set()
        for _, body_effects in known:
            all_writes |= body_effects.writes
        unproduced = [k for k in sig.outputs
                      if k not in all_writes and k not in declared_in]
        if unproduced:
            findings.append(GraphFinding(
                "DF005", sig.name,
                f"declared output(s) {', '.join(sorted(unproduced))} of "
                f"stage {sig.name!r} are neither written by any ladder "
                f"body nor in-place-updatable inputs",
            ))
        undeclared_writes = all_writes - declared_out
        if undeclared_writes:
            findings.append(GraphFinding(
                "DF005", sig.name,
                f"stage {sig.name!r} bodies write undeclared context "
                f"key(s) {', '.join(sorted(undeclared_writes))}; declare "
                f"them as outputs so downstream dataflow reasoning (and "
                f"checkpoint audits) can see them",
            ))
    return findings


def stage_graph_lines(tree: ast.Module) -> Dict[str, int]:
    """Map stage name -> line of its ``StageSignature(...)`` entry."""
    lines: Dict[str, int] = {}
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "STAGE_GRAPH"
                   for t in targets):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if (isinstance(element, ast.Call) and element.args
                        and isinstance(element.args[0], ast.Constant)
                        and isinstance(element.args[0].value, str)):
                    lines[element.args[0].value] = element.lineno
    return lines


# ----------------------------------------------------------------------
# Rule wrappers
# ----------------------------------------------------------------------
class StageGraphAnalysis:
    """Shared, lazily-computed dataflow findings for one rule set.

    All five DF rules report slices of one analysis, so the graph is
    loaded and the pipeline module parsed once per lint run.  Tests
    inject ``graph``/``seed_keys``/``module_source`` to lint a mutated
    graph against the real (or a fixture) pipeline module.
    """

    def __init__(self, graph: Optional[Sequence[object]] = None,
                 seed_keys: Optional[FrozenSet[str]] = None,
                 module_source: Optional[str] = None,
                 module_path: Optional[str] = None) -> None:
        self._graph = graph
        self._seed_keys = seed_keys
        self._module_source = module_source
        self._module_path = module_path
        self._cache: Optional[List[Tuple[str, int, GraphFinding]]] = None
        self._cache_project: Optional[int] = None

    def findings(
        self, project: ProjectContext
    ) -> List[Tuple[str, int, GraphFinding]]:
        if self._cache is not None and self._cache_project == id(project):
            return self._cache
        self._cache = self._compute(project)
        self._cache_project = id(project)
        return self._cache

    # ------------------------------------------------------------------
    def _compute(
        self, project: ProjectContext
    ) -> List[Tuple[str, int, GraphFinding]]:
        try:
            graph, seeds = self._graph, self._seed_keys
            if graph is None or seeds is None:
                from repro.core import pipeline as pipeline_module

                if graph is None:
                    graph = pipeline_module.STAGE_GRAPH
                if seeds is None:
                    seeds = pipeline_module.SEED_KEYS
            path, tree = self._pipeline_tree(project)
        except Exception as exc:  # degraded environment: one loud finding
            return [("<stage-graph>", 1, GraphFinding(
                "DF001", "<graph>",
                f"stage graph unavailable: {type(exc).__name__}: {exc}",
            ))]
        effects = collect_ctx_effects(tree)
        anchors = stage_graph_lines(tree)
        return [
            (path, anchors.get(finding.stage, 1), finding)
            for finding in check_stage_graph(graph, seeds, effects)
        ]

    def _pipeline_tree(
        self, project: ProjectContext
    ) -> Tuple[str, ast.Module]:
        if self._module_source is not None:
            path = self._module_path or "<pipeline>"
            return path, ast.parse(self._module_source, filename=path)
        in_tree = project.modules.get(PIPELINE_MODULE)
        if in_tree is not None:
            return in_tree.path, in_tree.tree
        from repro.core import pipeline as pipeline_module

        path = pipeline_module.__file__ or "<pipeline>"
        return path, ast.parse(Path(path).read_text(), filename=path)


class _StageGraphRule(Rule):
    """Base: report this rule's slice of the shared analysis."""

    def __init__(self, analysis: StageGraphAnalysis) -> None:
        self.analysis = analysis

    def check_project(self, project: ProjectContext) -> None:
        for path, line, finding in self.analysis.findings(project):
            if finding.rule == self.id:
                project.report_at(self, path, line, finding.message)


class StageInputProducedRule(_StageGraphRule):
    id = "DF001"
    title = "stage input without a producer"
    rationale = (
        "Every StageSpec input must be a seed key or the output of an "
        "unconditional (or same-condition) predecessor; otherwise the "
        "stage reads a key that some run never creates and dies with a "
        "KeyError only on that configuration."
    )


class FallbackSignatureRule(_StageGraphRule):
    id = "DF002"
    title = "fallback body diverges from the primary's signature"
    rationale = (
        "A fallback that skips one of the primary's declared outputs "
        "turns a survivable stage failure into a latent KeyError several "
        "stages downstream — the exact failure mode the ladder exists to "
        "prevent."
    )


class DegradableConsumptionRule(_StageGraphRule):
    id = "DF003"
    title = "degradable output consumed without a guard"
    rationale = (
        "A degradable stage may be skipped entirely under "
        "on_error='degrade'. Its outputs may only be consumed behind a "
        "requires= guard or after an earlier non-degradable stage seeded "
        "a default."
    )


class UndeclaredReadRule(_StageGraphRule):
    id = "DF004"
    title = "stage body reads an undeclared context key"
    rationale = (
        "Checkpoint resume restores exactly the declared dataflow; a "
        "read the signature does not declare can see stale or missing "
        "data after a resume, and the executor's requires= skipping "
        "cannot account for it."
    )


class OutputContractRule(_StageGraphRule):
    id = "DF005"
    title = "declared outputs disagree with the body's writes"
    rationale = (
        "The declarations are the single source of truth for dataflow "
        "tooling: an output no body produces (or a write no signature "
        "declares) silently invalidates every conclusion drawn from the "
        "graph."
    )


def dataflow_rules(
    graph: Optional[Sequence[object]] = None,
    seed_keys: Optional[FrozenSet[str]] = None,
    module_source: Optional[str] = None,
    module_path: Optional[str] = None,
) -> Tuple[Rule, ...]:
    analysis = StageGraphAnalysis(graph, seed_keys, module_source,
                                  module_path)
    return (
        StageInputProducedRule(analysis),
        FallbackSignatureRule(analysis),
        DegradableConsumptionRule(analysis),
        UndeclaredReadRule(analysis),
        OutputContractRule(analysis),
    )
