"""JSON Schema for ``repro lint --json`` output, plus a tiny validator.

The schema is the machine contract for CI consumers; the validator is a
self-contained subset of JSON Schema (type/required/properties/enum/
items/additionalProperties/minimum) so validation needs no third-party
dependency — the same approach the bench schema uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

_FINDINGS_SCHEMA: Dict[str, object] = {
    "type": "array",
    "items": {
        "type": "object",
        "required": ["rule", "severity", "path", "line", "col",
                     "message"],
        "additionalProperties": False,
        "properties": {
            "rule": {"type": "string"},
            "severity": {"type": "string",
                         "enum": ["warning", "error"]},
            "path": {"type": "string"},
            "line": {"type": "integer", "minimum": 1},
            "col": {"type": "integer", "minimum": 0},
            "message": {"type": "string"},
        },
    },
}

#: The v1 report shape, kept importable (and validatable) so archived
#: reports from older runs stay readable.
LINT_REPORT_SCHEMA_V1: Dict[str, object] = {
    "type": "object",
    "required": ["version", "tool", "findings", "summary"],
    "additionalProperties": False,
    "properties": {
        "version": {"type": "integer", "enum": [1]},
        "tool": {"type": "string", "enum": ["repro-lint"]},
        "findings": _FINDINGS_SCHEMA,
        "summary": {
            "type": "object",
            "required": ["files", "errors", "warnings", "suppressed"],
            "additionalProperties": False,
            "properties": {
                "files": {"type": "integer", "minimum": 0},
                "errors": {"type": "integer", "minimum": 0},
                "warnings": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
            },
        },
    },
}

#: The current (v2) report: v1 plus a cache-hit summary and a per-file
#: timing block.  ``timing`` is the only part of the report that is not
#: byte-deterministic across runs — consumers that diff reports drop it.
LINT_REPORT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["version", "tool", "findings", "summary", "timing"],
    "additionalProperties": False,
    "properties": {
        "version": {"type": "integer", "enum": [2]},
        "tool": {"type": "string", "enum": ["repro-lint"]},
        "findings": _FINDINGS_SCHEMA,
        "summary": {
            "type": "object",
            "required": ["files", "errors", "warnings", "suppressed",
                         "cache"],
            "additionalProperties": False,
            "properties": {
                "files": {"type": "integer", "minimum": 0},
                "errors": {"type": "integer", "minimum": 0},
                "warnings": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
                "cache": {
                    "type": "object",
                    "required": ["hits", "misses"],
                    "additionalProperties": False,
                    "properties": {
                        "hits": {"type": "integer", "minimum": 0},
                        "misses": {"type": "integer", "minimum": 0},
                    },
                },
            },
        },
        "timing": {
            "type": "object",
            "required": ["total_seconds", "files"],
            "additionalProperties": False,
            "properties": {
                "total_seconds": {"type": "number", "minimum": 0},
                "files": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["path", "seconds", "cached"],
                        "additionalProperties": False,
                        "properties": {
                            "path": {"type": "string"},
                            "seconds": {"type": "number", "minimum": 0},
                            "cached": {"type": "boolean"},
                        },
                    },
                },
            },
        },
    },
}

#: Version-dispatch table used when the caller does not name a schema.
LINT_REPORT_SCHEMAS: Dict[int, Dict[str, object]] = {
    1: LINT_REPORT_SCHEMA_V1,
    2: LINT_REPORT_SCHEMA,
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate_report(data: object,
                    schema: Optional[Dict[str, object]] = None,
                    path: str = "$") -> List[str]:
    """Validation problems of ``data`` against the report schema.

    Returns a list of human-readable problem strings — empty means
    valid.  Covers exactly the keywords the schema above uses.

    With no explicit ``schema``, the report's own ``version`` field
    picks one: v1 reports from older runs validate against the archived
    v1 schema, everything else against the current one.
    """
    if schema is None:
        version = data.get("version") if isinstance(data, dict) else None
        schema = LINT_REPORT_SCHEMAS.get(version, LINT_REPORT_SCHEMA) \
            if isinstance(version, int) else LINT_REPORT_SCHEMA
    problems: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[str(expected)]
        if isinstance(data, bool) and expected in ("integer", "number"):
            problems.append(f"{path}: expected {expected}, got boolean")
            return problems
        if not isinstance(data, py_type):
            problems.append(
                f"{path}: expected {expected}, got {type(data).__name__}"
            )
            return problems
    enum = schema.get("enum")
    if enum is not None and data not in enum:
        problems.append(f"{path}: {data!r} not one of {enum!r}")
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(data, (int, float)) \
            and data < minimum:
        problems.append(f"{path}: {data!r} below minimum {minimum}")
    if isinstance(data, dict):
        for key in schema.get("required", ()):
            if key not in data:
                problems.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for key in data:
                if key not in properties:
                    problems.append(f"{path}: unexpected key {key!r}")
        for key, sub in properties.items():
            if key in data:
                problems.extend(
                    validate_report(data[key], sub, f"{path}.{key}")
                )
    if isinstance(data, list):
        items = schema.get("items")
        if items is not None:
            for index, element in enumerate(data):
                problems.extend(
                    validate_report(element, items, f"{path}[{index}]")
                )
    return problems
