"""Intraprocedural dataflow analyses over :mod:`repro.lint.cfg` graphs.

Four analyses, all iterative-to-fixpoint over the statement-granularity
CFG, all deterministic (worklists are processed in node-id order):

* :func:`dominators` / :func:`postdominators` — classic set-intersection
  dominance.  Post-dominance uses a virtual sink that both the normal
  ``exit`` and ``raise_exit`` feed, so "X post-dominates Y" means every
  outcome of Y — normal *or* exceptional — passes through X.
* :func:`reaching_definitions` — which (name, def-site) pairs reach each
  node; the def sites are supplied by the caller, so rules decide what
  counts as a definition.
* :func:`track_obligations` — path-sensitive acquire/release tracking.
  An *obligation* is generated at a node (a temp file created, a lock
  acquired) and must be killed (replaced/unlinked, released) before
  control leaves the function.  Generation propagates only along the
  generating node's **normal** out-edges: if the generating statement
  itself raises, the resource was never created, so its exception edge
  carries the incoming state minus kills, not the new obligation.  The
  result reports the obligations still live when control reaches
  ``exit`` (leaked on a normal path) and ``raise_exit`` (leaked on an
  exception path) separately, because rules phrase the two differently.
* :func:`path_with_await` — is there any path between two nodes that
  passes an ``await`` point?  This is the reachability core of the
  async-race rules: a read and a write of the same shared attribute
  race exactly when an await can interleave another coroutine between
  them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.lint.cfg import CFG

#: One live obligation: (node id that generated it, resource name).
Obligation = Tuple[int, str]


def _reachable_ids(cfg: CFG) -> List[int]:
    return cfg.reachable()


def dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Map node id -> the set of its dominators (itself included).

    Every edge counts, exception edges included: "A dominates B" means
    no execution reaches B without first executing A.  Nodes unreachable
    from entry are omitted.
    """
    reachable = _reachable_ids(cfg)
    universe = set(reachable)
    dom: Dict[int, Set[int]] = {n: set(universe) for n in reachable}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for node in reachable:
            if node == cfg.entry:
                continue
            preds = [p for p in cfg.predecessors(node) if p in universe]
            new: Set[int] = set(universe)
            for pred in preds:
                new &= dom[pred]
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def postdominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Map node id -> the set of its post-dominators (itself included).

    Computed against a virtual sink fed by both ``exit`` and
    ``raise_exit``: a post-dominator is on every path to *any* function
    outcome, normal or exceptional.  The virtual sink itself is not
    reported.
    """
    reachable = _reachable_ids(cfg)
    universe = set(reachable)
    sink = -1
    succ: Dict[int, List[int]] = {n: [] for n in reachable}
    for edge in cfg.edges:
        if edge.src in universe and edge.dst in universe:
            succ[edge.src].append(edge.dst)
    for terminal in (cfg.exit, cfg.raise_exit):
        if terminal in universe:
            succ[terminal].append(sink)
    pdom: Dict[int, Set[int]] = {n: universe | {sink} for n in reachable}
    pdom[sink] = {sink}
    changed = True
    while changed:
        changed = False
        for node in reversed(reachable):
            succs = succ[node]
            if not succs:
                continue  # dead end without sink edge; keep universe
            new = set(pdom[succs[0]])
            for other in succs[1:]:
                new &= pdom[other]
            new.add(node)
            if new != pdom[node]:
                pdom[node] = new
                changed = True
    return {n: pdom[n] - {sink} for n in reachable}


def reaching_definitions(
    cfg: CFG, defs: Mapping[int, Iterable[str]]
) -> Dict[int, Set[Tuple[str, int]]]:
    """Forward may-analysis: (name, def-node) pairs reaching each node.

    ``defs`` maps node id -> names that node (re)defines; a definition
    of a name kills every other definition of the same name.  Returns
    the IN set of every reachable node.
    """
    reachable = _reachable_ids(cfg)
    gen: Dict[int, Set[Tuple[str, int]]] = {}
    kill_names: Dict[int, Set[str]] = {}
    for node in reachable:
        names = set(defs.get(node, ()))
        gen[node] = {(name, node) for name in names}
        kill_names[node] = names
    in_sets: Dict[int, Set[Tuple[str, int]]] = {n: set() for n in reachable}
    universe = set(reachable)
    work = list(reachable)
    while work:
        node = work.pop(0)
        out = {pair for pair in in_sets[node]
               if pair[0] not in kill_names[node]} | gen[node]
        for succ in sorted(cfg.successors(node)):
            if succ not in universe:
                continue
            if not out <= in_sets[succ]:
                in_sets[succ] |= out
                if succ not in work:
                    work.append(succ)
    return in_sets


def track_obligations(
    cfg: CFG,
    gens: Mapping[int, Sequence[str]],
    kills: Mapping[int, Iterable[str]],
) -> Tuple[Set[Obligation], Set[Obligation]]:
    """Which obligations can still be live when the function exits?

    ``gens`` maps node id -> resource names that node creates;
    ``kills`` maps node id -> names it discharges (a kill discharges
    every live obligation of that name, whichever node created it).

    Returns ``(leaked_normal, leaked_exceptional)``: the obligations
    live on entry to ``exit`` and to ``raise_exit``.  A node's normal
    out-edges carry ``(IN - kills) + gens``; its exception out-edges
    carry only ``(IN - kills)`` — if the creating statement raises, the
    resource never existed (an ``open()`` that throws returns no
    handle), so the obligation starts on the normal edge only.
    """
    reachable = _reachable_ids(cfg)
    universe = set(reachable)
    in_sets: Dict[int, Set[Obligation]] = {n: set() for n in reachable}
    work = list(reachable)
    while work:
        node = work.pop(0)
        killed = set(kills.get(node, ()))
        survived = {ob for ob in in_sets[node] if ob[1] not in killed}
        gen_set = {(node, name) for name in gens.get(node, ())}
        for edge in cfg.out_edges(node):
            if edge.dst not in universe:
                continue
            out = survived if edge.kind == "exc" else survived | gen_set
            if not out <= in_sets[edge.dst]:
                in_sets[edge.dst] |= out
                if edge.dst not in work:
                    work.append(edge.dst)
    return in_sets[cfg.exit], in_sets[cfg.raise_exit]


def path_with_await(cfg: CFG, src: int, dst: int) -> bool:
    """Is there a path from ``src`` to ``dst`` crossing an await point?

    The await may be at ``src`` itself, at ``dst`` itself, or at any
    node in between; exception edges count (an awaited call that raises
    still suspended the coroutine first).  ``src == dst`` with no
    connecting cycle answers via the node's own await flag.
    """
    if src == dst and cfg.nodes[src].awaits:
        return True
    start_flag = cfg.nodes[src].awaits
    seen: Set[Tuple[int, bool]] = set()
    stack: List[Tuple[int, bool]] = [
        (succ, start_flag) for succ in cfg.successors(src)
    ]
    while stack:
        node, flag = stack.pop()
        flag = flag or cfg.nodes[node].awaits
        if node == dst and flag:
            return True
        state = (node, flag)
        if state in seen:
            continue
        seen.add(state)
        stack.extend((succ, flag) for succ in cfg.successors(node))
    return False


def await_before_kill(cfg: CFG, src: int, kill_nodes: Set[int]) -> bool:
    """Can control pass an await after ``src`` before hitting a kill?

    Used for "lock held across await": starting from ``src`` (the
    acquire), walk forward; a node in ``kill_nodes`` (the releases)
    stops the walk along that path.  Returns True when some path
    reaches an await point first.
    """
    if cfg.nodes[src].awaits:
        return True
    seen: Set[int] = set()
    stack = [s for s in cfg.successors(src)]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if cfg.nodes[node].awaits:
            return True
        if node in kill_nodes:
            continue
        stack.extend(cfg.successors(node))
    return False
