"""Parallel + incremental front end for the lint engine.

:func:`run_lint` is what ``repro lint`` actually calls.  It splits a
run into the per-file work :meth:`LintEngine.analyze_source` does
(cacheable, parallelizable — it depends only on one file's bytes) and
the global work that must see the whole run (determinism scope, the
project rules, suppression application, LNT002 staleness).

**Incremental cache.**  ``cache_path`` names a JSON file keyed by
(file sha256, rule-set version, rule filter, determinism-scope flag).
A warm run re-reads sources, hashes them, and reuses the cached
findings and suppressions of every unchanged file; only the stage-graph
module is re-parsed, because the cross-file DF rules analyze its tree
every run.  Any header mismatch — cache format, ``RULESET_VERSION``, or
the ``--rules`` filter — discards the whole cache: rule behavior is
global state, so partial reuse would mix verdicts from two analyzers.

**Parallelism.**  ``jobs > 1`` fans the per-file misses over a process
pool.  Determinism is preserved by construction: files are analyzed
independently, results are reassembled in path-sorted order, and the
final report is sorted exactly as the serial path sorts it — the JSON
report is byte-identical at any worker count except for the ``timing``
block, which is wall-clock measurement and documented as volatile.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.engine import (
    FileContext,
    FileTiming,
    Finding,
    LintEngine,
    LintReport,
    Suppression,
)
from repro.lint.reachability import (
    DET_SEED_MODULES,
    module_imports,
    module_name_for,
    reachable_modules,
)
from repro.lint.rules import RULESET_VERSION

#: On-disk cache layout version (the envelope, not the rule set).
CACHE_FORMAT = 1

#: Modules whose FileContext the cross-file rules consult; these are
#: re-parsed every run instead of being served from the cache, so the
#: project rules always see the checked-out source.
PROJECT_CONTEXT_MODULES = ("repro.core.pipeline",)

_WORKER_ENGINE: Optional[LintEngine] = None


def _init_worker(rule_ids: Optional[Sequence[str]]) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = LintEngine(rule_ids=rule_ids)


def _analyze_one(
    engine: LintEngine, task: Tuple[str, str, bool]
) -> Tuple[str, str, List[Finding], List[Suppression], float]:
    path, source, det_in_scope = task
    start = time.perf_counter()
    analysis = engine.analyze_source(path, source, det_in_scope)
    seconds = time.perf_counter() - start
    return (path, analysis.module, analysis.findings,
            analysis.suppressions, seconds)


def _analyze_in_worker(
    task: Tuple[str, str, bool]
) -> Tuple[str, str, List[Finding], List[Suppression], float]:
    assert _WORKER_ENGINE is not None
    return _analyze_one(_WORKER_ENGINE, task)


# ----------------------------------------------------------------------
# Cache serialization


def _finding_to_dict(finding: Finding) -> Dict[str, object]:
    return {
        "path": finding.path, "line": finding.line, "col": finding.col,
        "rule": finding.rule, "severity": finding.severity,
        "message": finding.message,
    }


def _finding_from_dict(data: Dict[str, object]) -> Finding:
    return Finding(
        path=str(data["path"]), line=int(str(data["line"])),
        col=int(str(data["col"])), rule=str(data["rule"]),
        severity=str(data["severity"]), message=str(data["message"]),
    )


def _suppression_to_dict(sup: Suppression) -> Dict[str, object]:
    return {
        "path": sup.path, "line": sup.line,
        "target_line": sup.target_line, "rules": list(sup.rules),
        "reason": sup.reason, "file_level": sup.file_level,
    }


def _suppression_from_dict(data: Dict[str, object]) -> Suppression:
    rules = data["rules"]
    return Suppression(
        path=str(data["path"]), line=int(str(data["line"])),
        target_line=int(str(data["target_line"])),
        rules=tuple(str(r) for r in rules) if isinstance(rules, list)
        else (),
        reason=str(data["reason"]), file_level=bool(data["file_level"]),
    )


def _rules_token(rule_ids: Optional[Sequence[str]]) -> str:
    if rule_ids is None:
        return "*"
    return ",".join(sorted(set(rule_ids)))


def _load_cache(cache_path: Optional[Path],
                rules_token: str) -> Dict[str, Dict[str, object]]:
    """Valid per-file entries, or {} when absent/stale/foreign."""
    if cache_path is None or not cache_path.exists():
        return {}
    try:
        data = json.loads(cache_path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict):
        return {}
    if (data.get("format") != CACHE_FORMAT
            or data.get("ruleset") != RULESET_VERSION
            or data.get("rules") != rules_token):
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def _save_cache(cache_path: Path, rules_token: str,
                entries: Dict[str, Dict[str, object]]) -> None:
    """Atomically persist the cache: write temp, fsync, replace."""
    payload = json.dumps({
        "format": CACHE_FORMAT,
        "ruleset": RULESET_VERSION,
        "rules": rules_token,
        "entries": entries,
    }, sort_keys=True)
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = cache_path.with_name(cache_path.name + f".{os.getpid()}.tmp")
    try:
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(str(tmp), str(cache_path))
    finally:
        if tmp.exists():
            tmp.unlink()


# ----------------------------------------------------------------------
# The run


def _collect(paths: Sequence[Union[str, Path]]) -> List[Tuple[str, str]]:
    named: List[Tuple[str, str]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                named.append((str(sub), sub.read_text()))
        else:
            named.append((str(path), path.read_text()))
    named.sort(key=lambda pair: pair[0])
    return named


def _imports_of(path: str, source: str) -> Tuple[str, List[str]]:
    """(module, imports) by parsing; ([], "") when the file is broken."""
    module = module_name_for(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return module, []
    if not module:
        return module, []
    return module, sorted(module_imports(tree, module))


def run_lint(paths: Sequence[Union[str, Path]], *,
             rule_ids: Optional[Sequence[str]] = None,
             jobs: int = 1,
             cache_path: Optional[Union[str, Path]] = None) -> LintReport:
    """Lint files/trees with optional parallelism and result caching."""
    run_start = time.perf_counter()
    engine = LintEngine(rule_ids=rule_ids)
    named = _collect(paths)
    rules_token = _rules_token(rule_ids)
    cache_file = Path(cache_path) if cache_path is not None else None
    cache = _load_cache(cache_file, rules_token)

    shas: Dict[str, str] = {
        path: hashlib.sha256(source.encode()).hexdigest()
        for path, source in named
    }

    # Pass 1 — the import graph, for the determinism scope.  Unchanged
    # files answer from the cache; everything else parses.
    modules: Dict[str, str] = {}
    imports: Dict[str, List[str]] = {}
    for path, source in named:
        entry = cache.get(path)
        if (isinstance(entry, dict) and entry.get("sha") == shas[path]
                and isinstance(entry.get("imports"), list)):
            modules[path] = str(entry.get("module", ""))
            imports[path] = [str(i) for i in entry["imports"]]
        else:
            modules[path], imports[path] = _imports_of(path, source)

    import_graph = {modules[path]: list(imports[path])
                    for path, _ in named if modules[path]}
    seeds = [m for m in import_graph if m in DET_SEED_MODULES]
    det_scope = reachable_modules(import_graph, seeds) if seeds else None

    def det_flag(path: str) -> bool:
        return det_scope is None or modules[path] in det_scope

    # Pass 2 — split hits from misses.
    hits: Dict[str, Dict[str, object]] = {}
    misses: List[Tuple[str, str, bool]] = []
    for path, source in named:
        entry = cache.get(path)
        if (isinstance(entry, dict) and entry.get("sha") == shas[path]
                and entry.get("det") == det_flag(path)
                and isinstance(entry.get("findings"), list)
                and isinstance(entry.get("suppressions"), list)
                and modules[path] not in PROJECT_CONTEXT_MODULES):
            hits[path] = entry
        else:
            misses.append((path, source, det_flag(path)))

    analyses: Dict[str, Tuple[str, List[Finding], List[Suppression],
                              float, bool]] = {}
    for path, entry in hits.items():
        start = time.perf_counter()
        raw_findings = entry.get("findings")
        raw_sups = entry.get("suppressions")
        findings = ([_finding_from_dict(f) for f in raw_findings
                     if isinstance(f, dict)]
                    if isinstance(raw_findings, list) else [])
        sups = ([_suppression_from_dict(s) for s in raw_sups
                 if isinstance(s, dict)]
                if isinstance(raw_sups, list) else [])
        analyses[path] = (str(entry.get("module", "")), findings, sups,
                          time.perf_counter() - start, True)

    worker_count = jobs if jobs > 0 else (os.cpu_count() or 1)
    if misses and worker_count > 1:
        with ProcessPoolExecutor(
            max_workers=min(worker_count, len(misses)),
            initializer=_init_worker, initargs=(rule_ids,),
        ) as pool:
            for path, module, findings, sups, seconds in pool.map(
                    _analyze_in_worker, misses):
                analyses[path] = (module, findings, sups, seconds, False)
    else:
        for task in misses:
            path, module, findings, sups, seconds = _analyze_one(
                engine, task)
            analyses[path] = (module, findings, sups, seconds, False)

    # Pass 3 — contexts for the cross-file rules: always freshly parsed
    # so DF analyses see the checked-out stage graph, cached or not.
    contexts: List[FileContext] = []
    for path, source in named:
        if modules[path] not in PROJECT_CONTEXT_MODULES:
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # its LNT000 finding came from analyze_source
        contexts.append(FileContext(path, modules[path], source, tree,
                                    det_flag(path)))

    # Assembly — path-sorted, exactly like the serial engine.
    report = LintReport(files=len(named))
    all_suppressions: List[Suppression] = []
    for path, _ in named:
        module, findings, sups, seconds, cached = analyses[path]
        report.findings.extend(findings)
        all_suppressions.extend(sups)
        report.timings.append(FileTiming(path, seconds, cached))
    report.findings.extend(engine.run_project(contexts))
    engine._apply_suppressions(report, all_suppressions)
    report.findings.sort()
    report.suppressed.sort()
    report.total_seconds = time.perf_counter() - run_start

    if cache_file is not None:
        entries: Dict[str, Dict[str, object]] = {}
        for path, _ in named:
            module, findings, sups, _seconds, _cached = analyses[path]
            entries[path] = {
                "sha": shas[path],
                "det": det_flag(path),
                "module": modules[path],
                "imports": imports[path],
                "findings": [_finding_to_dict(f) for f in findings],
                "suppressions": [_suppression_to_dict(s) for s in sups],
            }
        _save_cache(cache_file, rules_token, entries)

    return report
