"""``repro.lint``: a determinism, dataflow, and concurrency analyzer.

AST-based static analysis specialized to this pipeline's contracts:

* determinism rules (DET001-DET005) flag run-to-run variation sources in
  modules reachable from the pipeline stage bodies;
* dataflow rules (DF001-DF005) check the declarative stage graph
  (:data:`repro.core.pipeline.STAGE_GRAPH`) against the stage bodies;
* concurrency rules (CONC001-CONC004) pin the crash-safety and
  fork-boundary idioms of the batch/persistence layer, and keep
  per-candidate python loops out of the batched merge-kernel modules.

Run it as ``repro lint`` (see :mod:`repro.cli`) or programmatically::

    from repro.lint import LintEngine
    report = LintEngine().lint_paths(["src/repro"])
    print(report.human())

Findings are suppressed per site with a mandatory reason::

    t0 = time.perf_counter()  # repro-lint: disable=DET001 reason=telemetry

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and policy.
"""

from repro.lint.engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    FileContext,
    Finding,
    LintEngine,
    LintReport,
    ProjectContext,
    Rule,
    Suppression,
    parse_suppressions,
)
from repro.lint.rules import all_rules
from repro.lint.rules.dataflow import (
    CtxEffects,
    GraphFinding,
    check_stage_graph,
    collect_ctx_effects,
)
from repro.lint.schema import LINT_REPORT_SCHEMA, validate_report

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "ProjectContext",
    "Rule",
    "Suppression",
    "parse_suppressions",
    "all_rules",
    "CtxEffects",
    "GraphFinding",
    "check_stage_graph",
    "collect_ctx_effects",
    "LINT_REPORT_SCHEMA",
    "validate_report",
]
