"""``repro.lint``: a flow-aware determinism/dataflow/concurrency analyzer.

AST-based static analysis specialized to this pipeline's contracts:

* determinism rules (DET001-DET005) flag run-to-run variation sources in
  modules reachable from the pipeline stage bodies;
* dataflow rules (DF001-DF005) check the declarative stage graph
  (:data:`repro.core.pipeline.STAGE_GRAPH`) against the stage bodies;
* async rules (ASYNC001-ASYNC004) guard the serve layer's coroutines:
  shared-state races across ``await``, blocking calls on the event
  loop, fire-and-forget tasks, locks held across awaits;
* resource rules (RES001-RES003) track acquire/release obligations on
  the CFG: temp files must reach replace-or-unlink, handles and
  sockets must be finalized on every path;
* exception rules (EXC001-EXC002) keep broad/bare excepts from
  swallowing failures in the durability-critical modules;
* concurrency rules (CONC001-CONC005) pin the crash-safety and
  fork-boundary idioms — fsync must *dominate* ``os.replace``, lock
  releases must cover every path out of an acquire.

The flow-aware families run on a per-function control-flow graph
(:mod:`repro.lint.cfg`) with generic dataflow analyses on top
(:mod:`repro.lint.dataflow`: dominators, post-dominators, reaching
definitions, obligation tracking).

Run it as ``repro lint`` (see :mod:`repro.cli`) or programmatically::

    from repro.lint import run_lint
    report = run_lint(["src/repro"], jobs=4,
                      cache_path=".repro-lint-cache.json")
    print(report.human())

Findings are suppressed per site with a mandatory reason::

    t0 = time.perf_counter()  # repro-lint: disable=DET001 reason=telemetry

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and policy.
"""

from repro.lint.cfg import CFG, CFGNode, Edge, build_cfg
from repro.lint.dataflow import (
    dominators,
    path_with_await,
    postdominators,
    reaching_definitions,
    track_obligations,
)
from repro.lint.engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    FileContext,
    FileTiming,
    Finding,
    LintEngine,
    LintReport,
    ProjectContext,
    Rule,
    Suppression,
    parse_suppressions,
)
from repro.lint.rules import RULESET_VERSION, all_rules
from repro.lint.rules.dataflow import (
    CtxEffects,
    GraphFinding,
    check_stage_graph,
    collect_ctx_effects,
)
from repro.lint.runner import run_lint
from repro.lint.schema import (
    LINT_REPORT_SCHEMA,
    LINT_REPORT_SCHEMA_V1,
    validate_report,
)

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "CFG",
    "CFGNode",
    "Edge",
    "build_cfg",
    "dominators",
    "postdominators",
    "reaching_definitions",
    "track_obligations",
    "path_with_await",
    "FileContext",
    "FileTiming",
    "Finding",
    "LintEngine",
    "LintReport",
    "ProjectContext",
    "Rule",
    "Suppression",
    "parse_suppressions",
    "RULESET_VERSION",
    "all_rules",
    "run_lint",
    "CtxEffects",
    "GraphFinding",
    "check_stage_graph",
    "collect_ctx_effects",
    "LINT_REPORT_SCHEMA",
    "LINT_REPORT_SCHEMA_V1",
    "validate_report",
]
