"""Import-graph reachability: which modules can affect pipeline results.

The determinism rules (:mod:`repro.lint.rules.determinism`) only make
sense on code that can run inside a pipeline stage: a wall-clock read in
a CLI table printer is harmless, the same read inside a merge kernel
silently breaks bit-identical resume.  "Can run inside a stage" is
approximated soundly by the transitive import closure of the stage-graph
module — every function a stage body can call lives in a module the
pipeline module imports, directly or transitively (function-level lazy
imports included, since the scan walks the whole AST).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Set

#: Roots of the result-affecting closure: the stage bodies live in the
#: pipeline module, and the executor supervises everything they do.
DET_SEED_MODULES = ("repro.core.pipeline", "repro.resilience.executor")


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, or "" when it is not in a package.

    Walks parents while ``__init__.py`` exists, so the name is derived
    from the filesystem alone — no import machinery, no sys.path games.
    """
    try:
        if path.suffix != ".py":
            return ""
        parts: List[str] = []
        if path.stem != "__init__":
            parts.append(path.stem)
        current = path.resolve().parent
        while (current / "__init__.py").exists():
            parts.append(current.name)
            current = current.parent
        return ".".join(reversed(parts))
    except OSError:
        return ""


def module_imports(tree: ast.Module, module: str) -> Set[str]:
    """Absolute dotted names this module imports (relative ones resolved).

    ``from pkg import name`` contributes both ``pkg`` and ``pkg.name``
    (the latter matters when ``name`` is itself a module); unknown names
    are harmless — reachability only follows names that exist in the
    scanned file set.
    """
    imports: Set[str] = set()
    package_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            if base:
                imports.add(base)
                for alias in node.names:
                    if alias.name != "*":
                        imports.add(f"{base}.{alias.name}")
    return imports


def reachable_modules(imports: Dict[str, Set[str]],
                      seeds: Iterable[str]) -> Set[str]:
    """Transitive closure of ``seeds`` over the ``imports`` graph.

    ``imports`` maps each known module to the dotted names it imports;
    edges to unknown names are dropped.  Importing ``pkg.sub`` also
    reaches ``pkg`` (its ``__init__`` runs), so package inits join the
    closure of any of their members.
    """
    known = set(imports)
    reached: Set[str] = set()
    frontier = [s for s in seeds if s in known]
    while frontier:
        module = frontier.pop()
        if module in reached:
            continue
        reached.add(module)
        candidates = set(imports.get(module, ()))
        # Importing a submodule executes its ancestor packages too.
        for name in list(candidates):
            parts = name.split(".")
            for i in range(1, len(parts)):
                candidates.add(".".join(parts[:i]))
        frontier.extend(c for c in candidates if c in known and
                        c not in reached)
    return reached
