"""Per-function control-flow graphs for the flow-aware lint rules.

:func:`build_cfg` lowers one ``def``/``async def`` body to a
statement-granularity CFG.  Each statement becomes one node; compound
statements contribute a *header* node holding only the expressions the
header itself evaluates (an ``if`` test, a ``for`` iterable, the
``with`` items), while their bodies become separate nodes.  Three
synthetic nodes frame every function: ``entry``, ``exit`` (normal
returns and fall-through), and ``raise_exit`` (uncaught exceptions).

Edges carry a kind.  ``"exc"`` edges model exception flow — every node
whose owned expressions may raise (calls, subscripts, awaits, plus
``raise``/``assert`` statements) gets one, routed to the innermost
``try`` dispatch node, through ``finally`` blocks, or to ``raise_exit``.
All other kinds (``"next"``, ``"true"``, ``"false"``, ``"back"``, …)
are normal flow; analyses that care only about the exception/normal
split use :meth:`CFG.normal_successors` vs :meth:`CFG.successors`.

``finally`` bodies are lowered once with the union of their incoming
continuations (normal completion, exception, ``return``, ``break``,
``continue``); each recorded continuation kind is re-dispatched from the
``finally`` exit, so a ``return`` inside ``try`` still flows through the
``finally`` statements before reaching ``exit``.  Await points are not
separate nodes: a node whose owned expressions contain ``await`` is
labeled with ``awaits=True``, which is what the async-race rules need
(does control pass an await between two program points).

Nested ``def``/``lambda`` bodies are opaque single statements — the
graph is strictly intraprocedural.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Expression node types whose evaluation may raise.  Deliberately
#: small and predictable: calls (anything), subscripts (KeyError /
#: IndexError), awaits (whatever the awaited coroutine raises).
_MAY_RAISE_EXPRS = (ast.Call, ast.Subscript, ast.Await)

#: Handler annotations that stop exception propagation entirely.
_CATCH_ALL_NAMES = frozenset({
    "Exception", "BaseException",
    "builtins.Exception", "builtins.BaseException",
})


@dataclass
class CFGNode:
    """One program point: a statement header plus its owned expressions."""

    id: int
    #: "entry" | "exit" | "raise" | "stmt" | "test" | "loop" | "with" |
    #: "dispatch" | "except"
    kind: str
    ast_node: Optional[ast.AST]
    line: int
    #: The expressions *this* node evaluates (an ``if`` header owns its
    #: test, not its body).  Rules scan these, never the full subtree.
    exprs: Tuple[ast.AST, ...] = ()
    #: True when the owned expressions contain an ``await``.
    awaits: bool = False
    label: str = ""


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    #: "next" | "true" | "false" | "back" | "jump" | "exc"
    kind: str


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    function: FunctionNode
    nodes: Dict[int, CFGNode] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def __post_init__(self) -> None:
        self._succ: Optional[Dict[int, List[Edge]]] = None
        self._pred: Optional[Dict[int, List[Edge]]] = None

    def _index(self) -> Tuple[Dict[int, List[Edge]], Dict[int, List[Edge]]]:
        if self._succ is None or self._pred is None:
            succ: Dict[int, List[Edge]] = {n: [] for n in self.nodes}
            pred: Dict[int, List[Edge]] = {n: [] for n in self.nodes}
            for edge in self.edges:
                succ[edge.src].append(edge)
                pred[edge.dst].append(edge)
            self._succ, self._pred = succ, pred
        return self._succ, self._pred

    def out_edges(self, node_id: int) -> List[Edge]:
        return self._index()[0][node_id]

    def in_edges(self, node_id: int) -> List[Edge]:
        return self._index()[1][node_id]

    def successors(self, node_id: int) -> Iterator[int]:
        """All successors, exception edges included."""
        for edge in self.out_edges(node_id):
            yield edge.dst

    def normal_successors(self, node_id: int) -> Iterator[int]:
        """Successors along non-exception flow only."""
        for edge in self.out_edges(node_id):
            if edge.kind != "exc":
                yield edge.dst

    def predecessors(self, node_id: int) -> Iterator[int]:
        for edge in self.in_edges(node_id):
            yield edge.src

    def reachable(self) -> List[int]:
        """Node ids reachable from entry, in deterministic BFS order."""
        seen = {self.entry}
        order = [self.entry]
        queue = [self.entry]
        while queue:
            current = queue.pop(0)
            for succ in sorted(self.successors(current)):
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
                    queue.append(succ)
        return order

    def nodes_for(self, stmt: ast.AST) -> List[CFGNode]:
        """The nodes anchored at ``stmt`` (header and dispatch nodes)."""
        return [n for n in self.nodes.values() if n.ast_node is stmt]


# ----------------------------------------------------------------------
# Construction


def _scoped_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function scopes."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _contains_await(exprs: Sequence[ast.AST]) -> bool:
    return any(isinstance(sub, ast.Await)
               for expr in exprs for sub in _scoped_walk(expr))


def _may_raise(exprs: Sequence[ast.AST]) -> bool:
    return any(isinstance(sub, _MAY_RAISE_EXPRS)
               for expr in exprs for sub in _scoped_walk(expr))


#: A pending edge source: (node id, edge kind to use when connected).
_Frontier = List[Tuple[int, str]]


@dataclass
class _LoopFrame:
    header: int
    breaks: _Frontier = field(default_factory=list)


@dataclass
class _TryFrame:
    dispatch: int


@dataclass
class _FinallyFrame:
    #: Abnormal continuations captured for re-dispatch after the
    #: ``finally`` body runs: kind -> frontier that entered this way.
    entries: Dict[str, _Frontier] = field(default_factory=dict)


_Frame = Union[_LoopFrame, _TryFrame, _FinallyFrame]


class _Builder:
    def __init__(self, function: FunctionNode) -> None:
        self.cfg = CFG(function)
        self.frames: List[_Frame] = []
        self._next_id = 0
        entry = self._node("entry", None, function.lineno, label="entry")
        exit_ = self._node("exit", None, function.lineno, label="exit")
        raise_ = self._node("raise", None, function.lineno, label="raise")
        self.cfg.entry = entry.id
        self.cfg.exit = exit_.id
        self.cfg.raise_exit = raise_.id

    # -- plumbing ------------------------------------------------------
    def _node(self, kind: str, ast_node: Optional[ast.AST], line: int,
              exprs: Tuple[ast.AST, ...] = (), label: str = "") -> CFGNode:
        node = CFGNode(self._next_id, kind, ast_node, line, exprs,
                       awaits=_contains_await(exprs), label=label)
        self._next_id += 1
        self.cfg.nodes[node.id] = node
        return node

    def _link(self, frontier: _Frontier, target: int) -> None:
        for src, kind in frontier:
            self.cfg.edges.append(Edge(src, target, kind))

    def _jump(self, frontier: _Frontier, kind: str) -> None:
        """Route a return/break/continue through finallys to its target."""
        for frame in reversed(self.frames):
            if isinstance(frame, _FinallyFrame):
                frame.entries.setdefault(kind, []).extend(frontier)
                return
            if isinstance(frame, _LoopFrame) and kind in ("break",
                                                          "continue"):
                if kind == "break":
                    frame.breaks.extend(frontier)
                else:
                    self._link(frontier, frame.header)
                return
        if kind == "return":
            self._link(frontier, self.cfg.exit)
        # break/continue outside any loop is a syntax error upstream.

    def _raise(self, frontier: _Frontier) -> None:
        """Route exception flow to the innermost handler/finally/exit."""
        for frame in reversed(self.frames):
            if isinstance(frame, _TryFrame):
                self._link(frontier, frame.dispatch)
                return
            if isinstance(frame, _FinallyFrame):
                frame.entries.setdefault("exc", []).extend(frontier)
                return
        self._link(frontier, self.cfg.raise_exit)

    # -- statement lowering --------------------------------------------
    def build(self) -> CFG:
        frontier = self._body(self.cfg.function.body,
                              [(self.cfg.entry, "next")])
        self._link(frontier, self.cfg.exit)
        return self.cfg

    def _body(self, stmts: Sequence[ast.stmt],
              frontier: _Frontier) -> _Frontier:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _simple(self, stmt: ast.stmt, frontier: _Frontier,
                label: str) -> _Frontier:
        node = self._node("stmt", stmt, stmt.lineno, (stmt,), label=label)
        self._link(frontier, node.id)
        if _may_raise((stmt,)):
            self._raise([(node.id, "exc")])
        return [(node.id, "next")]

    def _stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            exprs: Tuple[ast.AST, ...] = (
                (stmt.value,) if stmt.value is not None else ())
            node = self._node("stmt", stmt, stmt.lineno, exprs,
                              label="return")
            self._link(frontier, node.id)
            if _may_raise(exprs):
                self._raise([(node.id, "exc")])
            self._jump([(node.id, "jump")], "return")
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            kind = "break" if isinstance(stmt, ast.Break) else "continue"
            node = self._node("stmt", stmt, stmt.lineno, (), label=kind)
            self._link(frontier, node.id)
            self._jump([(node.id, "jump")], kind)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._node("stmt", stmt, stmt.lineno, (stmt,),
                              label="raise")
            self._link(frontier, node.id)
            self._raise([(node.id, "exc")])
            return []
        if isinstance(stmt, ast.Assert):
            node = self._node("stmt", stmt, stmt.lineno, (stmt,),
                              label="assert")
            self._link(frontier, node.id)
            self._raise([(node.id, "exc")])
            return [(node.id, "next")]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            node = self._node("stmt", stmt, stmt.lineno, (), label="def")
            self._link(frontier, node.id)
            return [(node.id, "next")]
        return self._simple(stmt, frontier, type(stmt).__name__.lower())

    def _if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        test = self._node("test", stmt, stmt.lineno, (stmt.test,),
                          label="if")
        self._link(frontier, test.id)
        if _may_raise((stmt.test,)):
            self._raise([(test.id, "exc")])
        then_out = self._body(stmt.body, [(test.id, "true")])
        else_out = self._body(stmt.orelse, [(test.id, "false")])
        return then_out + else_out

    def _loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
              frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.While):
            exprs: Tuple[ast.AST, ...] = (stmt.test,)
            label = "while"
        else:
            exprs = (stmt.target, stmt.iter)
            label = "for"
        header = self._node("loop", stmt, stmt.lineno, exprs, label=label)
        if isinstance(stmt, ast.AsyncFor):
            header.awaits = True  # each iteration awaits __anext__
        self._link(frontier, header.id)
        if _may_raise(exprs):
            self._raise([(header.id, "exc")])
        frame = _LoopFrame(header.id)
        self.frames.append(frame)
        body_out = self._body(stmt.body, [(header.id, "true")])
        self._link(body_out, header.id)  # back edge
        self.frames.pop()
        else_out = self._body(stmt.orelse, [(header.id, "false")])
        return else_out + frame.breaks

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              frontier: _Frontier) -> _Frontier:
        exprs: List[ast.AST] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        header = self._node("with", stmt, stmt.lineno, tuple(exprs),
                            label="with")
        if isinstance(stmt, ast.AsyncWith):
            header.awaits = True  # __aenter__ awaits
        self._link(frontier, header.id)
        self._raise([(header.id, "exc")])  # __enter__ may raise
        return self._body(stmt.body, [(header.id, "next")])

    def _try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        finally_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            finally_frame = _FinallyFrame()
            self.frames.append(finally_frame)
        dispatch: Optional[CFGNode] = None
        if stmt.handlers:
            dispatch = self._node("dispatch", stmt, stmt.lineno,
                                  label="except-dispatch")
            self.frames.append(_TryFrame(dispatch.id))
        body_out = self._body(stmt.body, frontier)
        if dispatch is not None:
            self.frames.pop()  # handlers catch body exceptions only
        normal_out = self._body(stmt.orelse, body_out)
        if dispatch is not None:
            caught_all = False
            for handler in stmt.handlers:
                node = self._node("except", handler, handler.lineno,
                                  (handler.type,) if handler.type else (),
                                  label="except")
                self._link([(dispatch.id, "exc")], node.id)
                normal_out = normal_out + self._body(handler.body,
                                                     [(node.id, "next")])
                if self._catches_everything(handler):
                    caught_all = True
            if not caught_all:
                # An exception no handler matches keeps propagating.
                self._raise([(dispatch.id, "exc")])
        if finally_frame is None:
            return normal_out
        self.frames.pop()
        recorded = finally_frame.entries
        fin_in = list(normal_out)
        for entry_frontier in recorded.values():
            fin_in.extend(entry_frontier)
        fin_out = self._body(stmt.finalbody, fin_in)
        # Re-dispatch each captured continuation from the finally exit —
        # in the outer frame context, so nested finallys chain.
        for kind in sorted(recorded):
            if kind == "exc":
                self._raise([(src, "exc") for src, _ in fin_out])
            else:
                self._jump(list(fin_out), kind)
        return fin_out if normal_out else []

    def _catches_everything(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names: List[str] = []
        targets = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                   else [handler.type])
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, ast.Attribute):
                names.append(target.attr)
        return any(name in _CATCH_ALL_NAMES for name in names)


def build_cfg(function: FunctionNode) -> CFG:
    """Lower one function body to its control-flow graph."""
    return _Builder(function).build()
