"""Parallel batch extraction with a content-keyed structure cache.

The paper's studies extract structure from whole campaigns of traces
(nine proxy apps × option ablations × scaling sweeps); doing that one
trace at a time in one process leaves both cores and prior work on the
table.  This module adds the batch driver behind ``repro batch``:

* :func:`trace_digest` — a content key for a trace: the sha256 of the
  file bytes for on-disk sources, or of the struct-packed record fields
  for in-memory :class:`~repro.trace.model.Trace` objects.
* :class:`StructureCache` — maps ``(trace digest, resolved options)`` to
  the extraction summary, in memory and optionally persisted as JSON
  files in a cache directory so repeated campaign runs skip clean work.
* :class:`BatchExtractor` — fans sources across a
  :class:`~concurrent.futures.ProcessPoolExecutor`, captures per-trace
  timing and failures (one bad trace never aborts the batch), and
  returns results in input order regardless of completion order.

Summaries, not structures, are cached: the cache answers "what did this
trace extract to" (phase/step counts, timings) for campaign bookkeeping;
callers that need the full :class:`~repro.core.structure.LogicalStructure`
re-extract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import struct
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.pipeline import (
    PipelineOptions,
    PipelineStats,
    extract_logical_structure,
)
from repro.core.structure import LogicalStructure
from repro.trace.model import Trace
from repro.trace.reader import read_trace

TraceSource = Union[str, Path, Trace]


def trace_digest(source: TraceSource) -> str:
    """Content key of a trace source (sha256 hex digest).

    Path sources hash the raw file bytes; in-memory traces hash the
    struct-packed fields of every record that can influence extraction
    (events, messages, executions, entries, chares, metadata).
    """
    h = hashlib.sha256()
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                h.update(chunk)
        return h.hexdigest()
    trace = source
    h.update(struct.pack(
        "<5q", len(trace.events), len(trace.messages),
        len(trace.executions), len(trace.chares), len(trace.entries),
    ))
    for e in trace.events:
        h.update(struct.pack("<4qd", int(e.kind), e.chare, e.pe,
                             e.execution, e.time))
    for m in trace.messages:
        h.update(struct.pack("<2q", m.send_event, m.recv_event))
    for x in trace.executions:
        h.update(struct.pack("<4q2d", x.chare, x.entry, x.pe,
                             x.recv_event, x.start, x.end))
    for c in trace.chares:
        h.update(struct.pack("<2q?", c.id, c.array_id, c.is_runtime))
        h.update(struct.pack(f"<{len(c.index)}q", *c.index))
    for ent in trace.entries:
        h.update(struct.pack("<q?q", ent.id, ent.is_sdag_serial,
                             ent.sdag_ordinal))
    h.update(repr(sorted(trace.metadata.items())).encode())
    return h.hexdigest()


def options_token(options: PipelineOptions) -> str:
    """Canonical string of the extraction-relevant option fields.

    Hooks and the verify switch instrument the run without changing the
    result, so they are excluded; ``backend`` is resolved so "auto" keys
    the same as the backend it picks (both produce bit-identical output,
    but the token records what actually ran).
    """
    fields = {
        f.name: getattr(options, f.name)
        for f in dataclasses.fields(options)
        if f.name not in ("hooks", "verify")
    }
    fields["backend"] = options.resolve_backend()
    return repr(sorted(fields.items()))


class StructureCache:
    """Maps (trace digest, resolved options) to an extraction summary.

    In-memory always; with ``directory`` set, each entry is also written
    as ``<key>.json`` so later processes (and later campaign runs) reuse
    it.  Corrupt or unreadable cache files count as misses.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def key(self, digest: str, options: PipelineOptions) -> str:
        return hashlib.sha256(
            (digest + "\n" + options_token(options)).encode()
        ).hexdigest()

    def get(self, key: str) -> Optional[dict]:
        summary = self._memory.get(key)
        if summary is None and self.directory is not None:
            path = self.directory / f"{key}.json"
            if path.exists():
                try:
                    summary = json.loads(path.read_text())
                except (OSError, ValueError):
                    summary = None
                if summary is not None:
                    self._memory[key] = summary
        if summary is None:
            self.misses += 1
        else:
            self.hits += 1
        return summary

    def put(self, key: str, summary: dict) -> None:
        self._memory[key] = summary
        if self.directory is not None:
            path = self.directory / f"{key}.json"
            path.write_text(json.dumps(summary, sort_keys=True))


def structure_summary(structure: LogicalStructure,
                      stats: PipelineStats) -> dict:
    """The cached/reported extract of one pipeline run."""
    return {
        "phases": len(structure.phases),
        "events": len(structure.trace.events),
        "stepped_events": sum(1 for s in structure.step_of_event if s >= 0),
        "max_step": structure.max_step,
        "leaps": max((p.leap for p in structure.phases), default=-1) + 1,
        "backend": stats.backend,
        "stage_seconds": dict(stats.stage_seconds),
        "total_seconds": stats.total_seconds,
    }


def _worker_options(options: PipelineOptions) -> dict:
    """Options as a plain field dict (hooks are process-local: dropped)."""
    fields = {
        f.name: getattr(options, f.name)
        for f in dataclasses.fields(options)
        if f.name not in ("hooks",)
    }
    return fields


def _extract_one(source: TraceSource, option_fields: dict):
    """Top-level worker: extract one trace, never raise.

    Returns ``(ok, summary, error, seconds)``; runs in the pool workers
    (hence module-level and picklable-argument-only) and serially.
    """
    t0 = _time.perf_counter()
    try:
        opts = PipelineOptions(**option_fields)
        trace = (read_trace(source)
                 if isinstance(source, (str, Path)) else source)
        stats = PipelineStats()
        structure = extract_logical_structure(trace, opts, stats=stats)
        summary = structure_summary(structure, stats)
        return True, summary, "", _time.perf_counter() - t0
    except Exception as exc:  # worker isolation: report, don't propagate
        error = f"{type(exc).__name__}: {exc}"
        return False, {}, error, _time.perf_counter() - t0


@dataclass
class BatchResult:
    """Outcome of one source in a batch run."""

    source: str
    ok: bool
    seconds: float = 0.0
    summary: dict = field(default_factory=dict)
    error: str = ""
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "ok": self.ok,
            "seconds": self.seconds,
            "summary": self.summary,
            "error": self.error,
            "cached": self.cached,
        }


@dataclass
class BatchReport:
    """All results of one batch run, in input order."""

    results: List[BatchResult]
    total_seconds: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[BatchResult]:
        return [r for r in self.results if not r.ok]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "results": [r.to_dict() for r in self.results],
        }


class BatchExtractor:
    """Extract many traces, in parallel, with per-trace failure capture.

    ``jobs`` ≤ 1 runs serially in-process (deterministic debugging path);
    larger values fan out across a process pool.  Either way results come
    back in input order and are bit-identical to serial runs — workers
    run the same pipeline on the same options.
    """

    def __init__(self, options: Optional[PipelineOptions] = None,
                 jobs: int = 1, cache: Optional[StructureCache] = None):
        self.options = options if options is not None else PipelineOptions()
        self.jobs = max(1, int(jobs))
        self.cache = cache

    def run(self, sources: Sequence[TraceSource]) -> BatchReport:
        t0 = _time.perf_counter()
        sources = list(sources)
        results: List[Optional[BatchResult]] = [None] * len(sources)
        pending: List[int] = []  # indexes that need an actual extraction
        keys: Dict[int, str] = {}

        for i, source in enumerate(sources):
            label = (str(source) if isinstance(source, (str, Path))
                     else f"<trace {getattr(source, 'name', i)}>")
            if self.cache is not None:
                try:
                    key = self.cache.key(trace_digest(source), self.options)
                except Exception as exc:  # unreadable source: a failure row
                    results[i] = BatchResult(
                        label, False, 0.0, {},
                        f"{type(exc).__name__}: {exc}", False,
                    )
                    continue
                keys[i] = key
                summary = self.cache.get(key)
                if summary is not None:
                    results[i] = BatchResult(label, True, 0.0, summary, "", True)
                    continue
            pending.append(i)

        option_fields = _worker_options(self.options)
        if self.jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    i: pool.submit(_extract_one, sources[i], option_fields)
                    for i in pending
                }
                outcomes = {i: f.result() for i, f in futures.items()}
        else:
            outcomes = {
                i: _extract_one(sources[i], option_fields) for i in pending
            }

        for i in pending:
            ok, summary, error, seconds = outcomes[i]
            label = (str(sources[i]) if isinstance(sources[i], (str, Path))
                     else f"<trace {getattr(sources[i], 'name', i)}>")
            results[i] = BatchResult(label, ok, seconds, summary, error, False)
            if ok and self.cache is not None and i in keys:
                self.cache.put(keys[i], summary)

        report = BatchReport(
            results=[r for r in results if r is not None],
            total_seconds=_time.perf_counter() - t0,
            jobs=self.jobs,
            cache_hits=self.cache.hits if self.cache is not None else 0,
            cache_misses=self.cache.misses if self.cache is not None else 0,
        )
        return report
