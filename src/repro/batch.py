"""Parallel batch extraction with a content-keyed structure cache.

The paper's studies extract structure from whole campaigns of traces
(nine proxy apps × option ablations × scaling sweeps); doing that one
trace at a time in one process leaves both cores and prior work on the
table.  This module adds the batch driver behind ``repro batch``:

* :func:`trace_digest` — a content key for a trace: the sha256 of the
  file bytes for on-disk sources, or of the struct-packed record fields
  for in-memory :class:`~repro.trace.model.Trace` objects.
* :class:`StructureCache` — maps ``(trace digest, resolved options)`` to
  the extraction summary, in memory and optionally persisted as JSON
  files in a cache directory so repeated campaign runs skip clean work.
  Persistent entries are written atomically (temp file + ``os.replace``)
  so a killed or concurrent run can never leave a torn entry behind.
  Optional ``max_entries``/``max_bytes`` caps bound the cache with LRU
  eviction (``repro cache --stats/--prune`` inspects and trims it).
  With ``shard_prefix > 0`` entries are sharded into subdirectories by
  key prefix (``ab/abcd....json``) and an optional ``max_shard_bytes``
  quota bounds each shard independently — the layout
  :class:`repro.serve.ArtifactStore` builds its artifact store on.
  All operations are thread-safe (one re-entrant lock per instance) and
  multi-process-safe (atomic writes; concurrent deletion mid-scan is
  tolerated, never raised).
* :class:`~repro.resilience.journal.RunJournal` integration — with a
  ``journal`` path the extractor appends one fsync'd JSON line per
  finished trace, so ``repro batch --resume <journal>`` after a crash
  (even ``kill -9``) skips completed traces and re-runs only the rest.
* :class:`BatchExtractor` — fans sources across worker processes,
  captures per-trace timing and failures (one bad trace never aborts the
  batch), and returns results in input order regardless of completion
  order.  Each worker runs under an optional wall-clock ``timeout`` with
  ``retries``/exponential-backoff; a worker that hangs is killed and a
  worker that dies (OOM kill, segfault) marks its trace failed instead
  of stalling the batch.

Summaries, not structures, are cached: the cache answers "what did this
trace extract to" (phase/step counts, timings, repair report) for
campaign bookkeeping; callers that need the full
:class:`~repro.core.structure.LogicalStructure` re-extract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing as _mp
import os
import struct
import threading
import time as _time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.fs import REAL_FS
from repro.core.pipeline import (
    PipelineOptions,
    PipelineStats,
    extract_logical_structure,
)
from repro.core.structure import LogicalStructure
from repro.trace.model import Trace
from repro.trace.reader import read_trace  # noqa: F401 - public re-export
from repro.trace.source import TraceSource, open_trace

#: Anything the batch driver accepts as one campaign entry: a path, an
#: in-memory trace, or a :class:`~repro.trace.source.TraceSource`.
BatchSource = Union[str, Path, Trace, TraceSource]


def _int(value) -> int:
    """Hashable integer form of an id-ish field (None → a sentinel)."""
    return -(1 << 40) if value is None else int(value)


def _update_str(h, text: Optional[str]) -> None:
    """Hash a string field unambiguously (length-prefixed utf-8)."""
    data = ("" if text is None else text).encode("utf-8", "replace")
    h.update(struct.pack("<q", len(data)))
    h.update(data)


def trace_digest(source: BatchSource) -> str:
    """Content key of a trace source (sha256 hex digest).

    Path sources hash the raw file bytes; in-memory traces hash every
    extraction-relevant field of every record — events, messages,
    executions, idle intervals, the chare/entry/array registries
    (including names, ``home_pe``, shapes), ``num_pes``, and metadata.
    Two traces differing in any field the pipeline or its metrics can
    observe must never collide on one key.

    A :class:`~repro.trace.source.TraceSource` keys like what it wraps:
    file-backed sources hash the file bytes (without reading records at
    all); others hash their materialized trace.  Chunk-ingested
    columnar traces take a vectorized path — the packed little-endian
    column dtypes are byte-identical to the per-record ``struct.pack``
    stream, so the digests agree with the eager reader's.
    """
    if not isinstance(source, (str, Path, Trace)) and callable(
            getattr(source, "trace", None)):
        path = getattr(source, "path", None)
        source = path if path is not None else source.trace()
    h = hashlib.sha256()
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                h.update(chunk)
        return h.hexdigest()
    trace = source
    h.update(struct.pack(
        "<8q", len(trace.events), len(trace.messages),
        len(trace.executions), len(trace.chares), len(trace.entries),
        len(trace.arrays), len(trace.idles), _int(trace.num_pes),
    ))
    columns = getattr(trace, "columns", None)
    if columns is not None:
        _digest_columns(h, columns)
    else:
        for e in trace.events:
            h.update(struct.pack("<4qd", _int(e.kind), _int(e.chare),
                                 _int(e.pe), _int(e.execution), e.time))
        for m in trace.messages:
            h.update(struct.pack("<2q", _int(m.send_event),
                                 _int(m.recv_event)))
        for x in trace.executions:
            h.update(struct.pack("<4q2d", _int(x.chare), _int(x.entry),
                                 _int(x.pe), _int(x.recv_event),
                                 x.start, x.end))
    for c in trace.chares:
        h.update(struct.pack("<3q?", _int(c.id), _int(c.array_id),
                             _int(c.home_pe), bool(c.is_runtime)))
        h.update(struct.pack(f"<{len(c.index)}q", *c.index))
        _update_str(h, c.name)
    for ent in trace.entries:
        h.update(struct.pack("<q?q", _int(ent.id), bool(ent.is_sdag_serial),
                             _int(ent.sdag_ordinal)))
        _update_str(h, ent.name)
        _update_str(h, ent.chare_type)
    for arr in trace.arrays:
        h.update(struct.pack(f"<2q{len(arr.shape)}q", _int(arr.id),
                             len(arr.shape), *arr.shape))
        _update_str(h, arr.name)
    if columns is not None:
        h.update(_packed_bytes(columns.idle_pe,
                               columns.idle_start, columns.idle_end))
    else:
        for idle in trace.idles:
            h.update(struct.pack("<q2d", _int(idle.pe), idle.start, idle.end))
    h.update(repr(sorted(trace.metadata.items())).encode())
    return h.hexdigest()


def _packed_bytes(*cols) -> bytes:
    """Row-major bytes of parallel columns, as contiguous ``<i8``/``<f8``
    fields — byte-identical to per-record ``struct.pack`` of the rows
    (every field is 8 bytes, so the struct layout has no padding)."""
    import numpy as np

    dtype = np.dtype([(f"f{i}", c.dtype.newbyteorder("<"))
                      for i, c in enumerate(cols)])
    packed = np.empty(len(cols[0]), dtype)
    for i, c in enumerate(cols):
        packed[f"f{i}"] = c
    return packed.tobytes()


def _digest_columns(h, columns) -> None:
    """Vectorized twin of the per-record event/message/execution hashing
    loops, fed straight from a chunk-ingested trace's columns."""
    h.update(_packed_bytes(columns.ev_kind.astype("int64"), columns.ev_chare,
                           columns.ev_pe, columns.ev_exec, columns.ev_time))
    h.update(_packed_bytes(columns.msg_send, columns.msg_recv))
    h.update(_packed_bytes(columns.ex_chare, columns.ex_entry, columns.ex_pe,
                           columns.ex_recv, columns.ex_start, columns.ex_end))


def options_token(options: PipelineOptions) -> str:
    """Canonical string of the extraction-relevant option fields.

    Instrumentation and supervision fields (hooks, verify, checkpointing,
    resource guards — :data:`repro.core.pipeline.NON_RESULT_FIELDS`) do
    not change a successful result, so they are excluded; ``backend`` is
    resolved so "auto" keys the same as the backend it picks (both
    produce bit-identical output, but the token records what actually
    ran).  ``repair`` changes the result and is therefore part of the
    token.  This token keys the structure cache, pipeline checkpoints,
    and batch run journals alike.
    """
    return options.result_token()


class StructureCache:
    """Maps (trace digest, resolved options) to an extraction summary.

    In-memory always; with ``directory`` set, each entry is also written
    as ``<key>.json`` so later processes (and later campaign runs) reuse
    it.  Writes go to a temp file in the cache directory and are moved
    into place with :func:`os.replace`, so readers only ever see absent
    or complete entries — never a torn one, even with concurrent writers
    or a run killed mid-write.  Corrupt or unreadable cache files count
    as misses.

    ``max_entries``/``max_bytes`` (None = unbounded) cap the cache:
    least-recently-used entries are evicted on :meth:`put` (memory order
    tracks gets and puts; on disk, file mtimes approximate recency — a
    re-hit entry is touched so campaign-hot traces survive pruning).

    ``shard_prefix`` (0 = flat, historical layout) stores each entry in
    a subdirectory named by the first ``shard_prefix`` hex characters of
    its key, bounding per-directory fan-in for large stores; reads fall
    back to the flat location so an existing cache keeps hitting after
    sharding is turned on.  ``max_shard_bytes`` additionally caps every
    shard directory independently (LRU within the shard), so one hot
    key prefix cannot crowd out the rest of the store.  Scans
    (:meth:`stats`, :meth:`prune`) always cover both layouts.
    """

    #: Serialize entries with sorted keys (stable diffing).  Subclasses
    #: that must preserve payload key order byte-for-byte set it False.
    _sort_keys = True

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 shard_prefix: int = 0,
                 max_shard_bytes: Optional[int] = None,
                 fs=None):
        self.directory = Path(directory) if directory is not None else None
        self.fs = fs if fs is not None else REAL_FS
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if max_shard_bytes is not None and max_shard_bytes < 1:
            raise ValueError("max_shard_bytes must be >= 1 (or None)")
        if shard_prefix < 0 or shard_prefix > 8:
            raise ValueError("shard_prefix must be in 0..8")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.shard_prefix = int(shard_prefix)
        self.max_shard_bytes = max_shard_bytes
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def key(self, digest: str, options: PipelineOptions) -> str:
        return hashlib.sha256(
            (digest + "\n" + options_token(options)).encode()
        ).hexdigest()

    def _entry_path(self, key: str) -> Path:
        """Where ``key``'s entry file lives (shard-aware)."""
        assert self.directory is not None
        if self.shard_prefix:
            return self.directory / key[:self.shard_prefix] / f"{key}.json"
        return self.directory / f"{key}.json"

    def _read_entry(self, key: str) -> Optional[dict]:
        """Load ``key`` from disk, or None (missing/corrupt/racing)."""
        assert self.directory is not None
        candidates = [self._entry_path(key)]
        if self.shard_prefix:  # flat entry written before sharding
            candidates.append(self.directory / f"{key}.json")
        for path in candidates:
            try:
                summary = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(summary, dict):
                try:  # mark recency so pruning spares hot entries
                    os.utime(path)
                except OSError:
                    pass
                return summary
        return None

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            summary = self._memory.get(key)
            if summary is not None:
                self._memory.move_to_end(key)
                if self.directory is not None:
                    try:  # keep disk recency in step with memory recency
                        os.utime(self._entry_path(key))
                    except OSError:
                        pass
            if summary is None and self.directory is not None:
                summary = self._read_entry(key)
                if summary is not None:
                    self._memory[key] = summary
            if summary is None:
                self.misses += 1
            else:
                self.hits += 1
            return summary

    def put(self, key: str, summary: dict) -> None:
        with self._lock:
            self._memory[key] = summary
            self._memory.move_to_end(key)
            if self.directory is not None:
                path = self._entry_path(key)
                if self.shard_prefix:
                    path.parent.mkdir(parents=True, exist_ok=True)
                # Unique temp name per write: concurrent writers (threads
                # or processes) must never share one, or a replace can
                # race a half-written file into place.
                tmp = path.parent / (
                    f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
                try:
                    # Flush + fsync before the rename: os.replace is
                    # atomic for readers but not durable, and a crash
                    # right after it can otherwise surface an empty
                    # cache entry.  All four ops go through the fs seam
                    # so injected ENOSPC/EIO/torn writes land exactly
                    # where a real disk would fail.
                    with self.fs.open(str(tmp), "w") as handle:
                        handle.write(json.dumps(summary,
                                                sort_keys=self._sort_keys))
                        handle.flush()
                        self.fs.fsync(handle.fileno())
                    self.fs.replace(str(tmp), str(path))
                finally:
                    if tmp.exists():  # replace failed midway: don't litter
                        try:
                            tmp.unlink()
                        except OSError:
                            pass
            self._evict()

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    @staticmethod
    def _mtime_or_oldest(path: Path) -> float:
        """mtime for LRU ordering; a file deleted by a concurrent
        prune/evict between listing and stat counts as LRU-oldest
        instead of raising mid-sort."""
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    def _iter_entry_files(self):
        """Every persistent entry file, flat and sharded layouts alike."""
        if self.directory is None:
            return
        for path in self.directory.glob("*.json"):
            yield path
        for path in self.directory.glob("*/*.json"):
            yield path

    def _entry_files(self) -> List[Path]:
        """Persistent entry files, least recently used first."""
        if self.directory is None:
            return []
        files = list(self._iter_entry_files())
        files.sort(key=lambda p: (self._mtime_or_oldest(p), p.name))
        return files

    def _evict(self) -> None:
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
        if self.directory is None:
            return
        if (self.max_entries is None and self.max_bytes is None
                and self.max_shard_bytes is None):
            return  # uncapped: skip the per-put disk scan entirely
        removed = self.prune(self.max_entries, self.max_bytes,
                             self.max_shard_bytes)
        self.evictions += removed

    def stats(self) -> dict:
        """Occupancy and hit-rate counters (``repro cache --stats``)."""
        disk_entries = 0
        disk_bytes = 0
        shards: Dict[str, dict] = {}
        with self._lock:
            for path in self._iter_entry_files():
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                disk_bytes += size
                disk_entries += 1
                if path.parent != self.directory:
                    row = shards.setdefault(path.parent.name,
                                            {"entries": 0, "bytes": 0})
                    row["entries"] += 1
                    row["bytes"] += size
            return {
                "directory": (str(self.directory)
                              if self.directory is not None else None),
                "memory_entries": len(self._memory),
                "disk_entries": disk_entries,
                "disk_bytes": disk_bytes,
                "shards": {name: shards[name] for name in sorted(shards)},
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "shard_prefix": self.shard_prefix,
                "max_shard_bytes": self.max_shard_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def prune(self, max_entries: Optional[int] = None,
              max_bytes: Optional[int] = None,
              max_shard_bytes: Optional[int] = None) -> int:
        """Trim the persistent cache to the given caps (LRU by mtime).

        Returns the number of entries removed.  ``None`` leaves that
        axis uncapped; ``0`` is rejected (delete the directory to drop
        everything).  ``max_shard_bytes`` caps each shard subdirectory
        (and the flat top level) independently, LRU within the shard.
        :meth:`put` calls this with the cache's own caps.  Every stat
        and unlink tolerates a concurrent prune/evict racing the same
        files: a vanished entry counts as already removed, never an
        error.
        """
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if max_shard_bytes is not None and max_shard_bytes < 1:
            raise ValueError("max_shard_bytes must be >= 1 (or None)")
        if self.directory is None:
            return 0
        with self._lock:
            files = self._entry_files()
            sizes = {}
            for path in files:
                try:
                    sizes[path] = path.stat().st_size
                except OSError:
                    sizes[path] = 0
            total = sum(sizes.values())
            count = len(files)
            removed = 0

            def unlink(path: Path) -> bool:
                nonlocal removed
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass  # a racing prune got there first: same outcome
                except OSError:
                    return False
                self._memory.pop(path.stem, None)
                removed += 1
                return True

            survivors = []
            for path in files:  # oldest first
                over_entries = max_entries is not None and count > max_entries
                over_bytes = max_bytes is not None and total > max_bytes
                if not over_entries and not over_bytes:
                    survivors = files[files.index(path):]
                    break
                if not unlink(path):
                    survivors.append(path)
                    continue
                count -= 1
                total -= sizes[path]
            if max_shard_bytes is not None:
                per_shard: Dict[Path, List[Path]] = {}
                for path in survivors:  # still LRU-ordered
                    per_shard.setdefault(path.parent, []).append(path)
                for members in per_shard.values():
                    shard_total = sum(sizes.get(p, 0) for p in members)
                    for path in members:
                        if shard_total <= max_shard_bytes:
                            break
                        if unlink(path):
                            shard_total -= sizes.get(path, 0)
            return removed


def structure_summary(structure: LogicalStructure,
                      stats: PipelineStats) -> dict:
    """The cached/reported extract of one pipeline run."""
    summary = {
        "phases": len(structure.phases),
        "events": len(structure.trace.events),
        "stepped_events": sum(1 for s in structure.step_of_event if s >= 0),
        "max_step": structure.max_step,
        "leaps": max((p.leap for p in structure.phases), default=-1) + 1,
        "backend": stats.backend,
        "stage_seconds": dict(stats.stage_seconds),
        "total_seconds": stats.total_seconds,
    }
    if stats.repair is not None:
        summary["repair"] = stats.repair
    if stats.degradation is not None and stats.degradation.get("degraded"):
        # A partial or fallback-path result: recorded in the row (and
        # journal) for telemetry, and never cached — a later run under
        # healthier conditions should get the chance to do better.
        summary["degradation"] = stats.degradation
    return summary


def _worker_options(options: PipelineOptions) -> dict:
    """Options as a plain field dict (hooks are process-local: dropped)."""
    fields = {
        f.name: getattr(options, f.name)
        for f in dataclasses.fields(options)
        if f.name not in ("hooks",)
    }
    return fields


def _extract_one(source: BatchSource, option_fields: dict):
    """Top-level worker: extract one trace, never raise.

    Returns ``(ok, summary, error, seconds)``; runs in the pool workers
    (hence module-level and picklable-argument-only) and serially.
    """
    t0 = _time.perf_counter()  # repro-lint: disable=DET001 reason=worker timing telemetry, never keyed or cached
    try:
        opts = PipelineOptions(**option_fields)
        trace = (source if isinstance(source, Trace)
                 else open_trace(source, ingest=opts.ingest).trace())
        stats = PipelineStats()
        structure = extract_logical_structure(trace, opts, stats=stats)
        summary = structure_summary(structure, stats)
        return True, summary, "", _time.perf_counter() - t0  # repro-lint: disable=DET001 reason=worker timing telemetry, never keyed or cached
    except Exception as exc:  # worker isolation: report, don't propagate
        error = f"{type(exc).__name__}: {exc}"
        return False, {}, error, _time.perf_counter() - t0  # repro-lint: disable=DET001 reason=worker timing telemetry, never keyed or cached


def _pipe_worker(conn, worker, source: BatchSource,
                 option_fields: dict) -> None:
    """Child-process entry: run the job ``worker``, ship the outcome."""
    try:
        conn.send(worker(source, option_fields))
    except Exception:  # repro-lint: disable=EXC001 reason=child-process edge: the parent detects the silent exit as a crash and journals it; nothing in this process can record more
        # The parent treats a silent exit as a crash; nothing else to do.
        pass
    finally:
        conn.close()


def _map_worker(conn, fn, payload) -> None:
    """Child-process entry for :func:`map_in_processes`."""
    try:
        conn.send(("ok", fn(payload)))
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # repro-lint: disable=EXC001 reason=pipe already broken: the error report cannot be delivered and the parent records the silent exit as a crash
            pass  # parent treats the silent exit as a crash
    finally:
        conn.close()


def map_in_processes(fn, payloads, workers: int) -> list:
    """Ordered process-pool map over ``fn`` with crash containment.

    The shared fan-out primitive for in-pipeline parallelism (the
    PE-sharded initial build uses it): results come back in input order;
    a worker that raises or dies aborts the map with ``RuntimeError`` so
    the caller's fallback ladder — not a torn result — decides what
    happens next.  ``fn`` must be a top-level callable and the payloads
    picklable.  ``workers <= 1`` (or a single payload) runs serially
    in-process, bit-identically.
    """
    payloads = list(payloads)
    if workers <= 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads]
    ctx = _mp.get_context()
    results: list = [None] * len(payloads)
    waiting: Deque[int] = deque(range(len(payloads)))
    active: Dict[object, Tuple[int, object]] = {}
    try:
        while waiting or active:
            while waiting and len(active) < workers:
                i = waiting.popleft()
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_map_worker,
                                   args=(child, fn, payloads[i]), daemon=True)
                proc.start()
                child.close()
                active[proc] = (i, parent)
            _mp_connection.wait([rec[1] for rec in active.values()],
                                timeout=0.05)
            for proc in list(active):
                i, parent = active[proc]
                if parent.poll():  # result arrived (maybe just before death)
                    try:
                        status, value = parent.recv()
                    except (EOFError, OSError):
                        status, value = "error", "worker pipe closed early"
                    proc.join()
                    parent.close()
                    del active[proc]
                    if status != "ok":
                        raise RuntimeError(
                            f"map_in_processes worker {i} failed: {value}"
                        )
                    results[i] = value
                elif not proc.is_alive():
                    code = proc.exitcode
                    proc.join()
                    parent.close()
                    del active[proc]
                    raise RuntimeError(
                        f"map_in_processes worker {i} exited with code "
                        f"{code} before returning a result"
                    )
    finally:
        for proc, (_i, parent) in active.items():
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            parent.close()
    return results


@dataclass
class BatchResult:
    """Outcome of one source in a batch run."""

    source: str
    ok: bool
    seconds: float = 0.0
    summary: dict = field(default_factory=dict)
    error: str = ""
    cached: bool = False
    #: Extraction attempts consumed (1 unless timeouts/crashes retried).
    attempts: int = 1
    #: True when the final attempt was killed for exceeding the timeout.
    timed_out: bool = False
    #: True when the result was replayed from a run journal (``--resume``)
    #: instead of extracted in this run.
    resumed: bool = False

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "ok": self.ok,
            "seconds": self.seconds,
            "summary": self.summary,
            "error": self.error,
            "cached": self.cached,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "resumed": self.resumed,
        }


@dataclass
class BatchReport:
    """All results of one batch run, in input order."""

    results: List[BatchResult]
    total_seconds: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[BatchResult]:
        return [r for r in self.results if not r.ok]

    @property
    def timeouts(self) -> List[BatchResult]:
        return [r for r in self.results if r.timed_out]

    @property
    def resumed(self) -> List[BatchResult]:
        return [r for r in self.results if r.resumed]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "timeouts": len(self.timeouts),
            "resumed": len(self.resumed),
            "results": [r.to_dict() for r in self.results],
        }


class BatchExtractor:
    """Extract many traces, in parallel, with per-trace failure capture.

    ``jobs`` ≤ 1 runs serially in-process (deterministic debugging path);
    larger values fan out across worker processes.  Either way results
    come back in input order and are bit-identical to serial runs —
    workers run the same pipeline on the same options.

    ``timeout`` (seconds of wall clock per attempt) bounds each worker;
    an attempt that exceeds it is killed.  Killed or crashed attempts are
    retried up to ``retries`` times with exponential backoff
    (``backoff * 2**attempt`` seconds between attempts) before the trace
    is reported as a failure row.  Setting a timeout forces the
    process-based path even for ``jobs=1`` — killing a hung extraction
    requires a separate process.

    ``journal`` names a :class:`~repro.resilience.journal.RunJournal`
    file: every finished trace appends one durable line the moment its
    outcome is known (not at the end of the run), so a batch killed at
    any point — including ``kill -9`` of the scheduler — can be resumed
    with ``resume=True``: traces with a "done" line are replayed as
    ``resumed`` rows without re-extraction, everything else runs.

    ``worker`` is the per-trace job body: a module-level callable
    ``(source, option_fields) -> (ok, payload, error, seconds)`` that
    must never raise (the default, :func:`_extract_one`, returns the
    cacheable summary).  Other payloads ride the same scheduler —
    ``repro serve`` passes :func:`repro.serve.worker.analyze_one` so
    service jobs get the identical timeout/retry/crash-containment
    machinery while producing full analysis documents.
    """

    def __init__(self, options: Optional[PipelineOptions] = None,
                 jobs: int = 1, cache: Optional[StructureCache] = None,
                 timeout: Optional[float] = None, retries: int = 0,
                 backoff: float = 0.5,
                 journal: Optional[Union[str, Path]] = None,
                 resume: bool = False,
                 worker=None):
        self.options = options if options is not None else PipelineOptions()
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.worker = worker if worker is not None else _extract_one
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        if resume and journal is None:
            raise ValueError("resume=True requires a journal path")
        self.journal_path = Path(journal) if journal is not None else None
        self.resume = bool(resume)

    # ------------------------------------------------------------------
    # Process scheduler: timeouts, retries, crash containment
    # ------------------------------------------------------------------
    def _run_processes(self, sources: List[BatchSource],
                       pending: List[int], option_fields: dict,
                       on_outcome=None) -> Dict[int, tuple]:
        """Run pending extractions in worker processes.

        Maintains up to ``jobs`` live workers, each with its own result
        pipe and deadline.  Returns ``{index: (ok, summary, error,
        seconds, timed_out, attempts)}``.  ``on_outcome(index, outcome)``
        fires the moment a trace's final outcome is known — the journal
        hook, so durability does not wait for the batch to finish.
        """
        ctx = _mp.get_context()
        waiting: Deque[Tuple[int, int]] = deque((i, 0) for i in pending)
        delayed: List[Tuple[float, int, int]] = []  # (not_before, idx, attempt)
        active: Dict[object, Tuple[int, int, Optional[float], object, float]] = {}
        outcomes: Dict[int, tuple] = {}

        def finish(i: int, attempt: int, ok: bool, summary: dict,
                   error: str, seconds: float, timed_out: bool) -> None:
            outcomes[i] = (ok, summary, error, seconds, timed_out, attempt + 1)
            if on_outcome is not None:
                on_outcome(i, outcomes[i])

        def retry_or_fail(i: int, attempt: int, error: str,
                          seconds: float, timed_out: bool) -> None:
            if attempt < self.retries:
                not_before = _time.monotonic() + self.backoff * (2 ** attempt)  # repro-lint: disable=DET001 reason=retry backoff scheduling, not result data
                delayed.append((not_before, i, attempt + 1))
            else:
                finish(i, attempt, False, {}, error, seconds, timed_out)

        def reap(proc, parent) -> None:
            proc.join()
            parent.close()
            del active[proc]

        while waiting or delayed or active:
            now = _time.monotonic()  # repro-lint: disable=DET001 reason=retry/timeout scheduling, not result data
            for item in [d for d in delayed if d[0] <= now]:
                delayed.remove(item)
                waiting.append((item[1], item[2]))

            while waiting and len(active) < self.jobs:
                i, attempt = waiting.popleft()
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_pipe_worker,
                    args=(child, self.worker, sources[i], option_fields),
                    daemon=True,
                )
                try:
                    proc.start()
                except Exception as exc:  # unpicklable source, fork failure
                    parent.close()
                    child.close()
                    finish(i, attempt, False, {},
                           f"{type(exc).__name__}: {exc}", 0.0, False)
                    continue
                child.close()
                started = _time.monotonic()  # repro-lint: disable=DET001 reason=worker deadline bookkeeping, not result data
                deadline = (None if self.timeout is None
                            else started + self.timeout)
                active[proc] = (i, attempt, deadline, parent, started)

            if not active:
                if delayed:  # backing off: sleep until the nearest retry
                    pause = min(d[0] for d in delayed) - _time.monotonic()  # repro-lint: disable=DET001 reason=backoff sleep sizing, not result data
                    if pause > 0:
                        _time.sleep(min(pause, 0.05))
                continue

            _mp_connection.wait([rec[3] for rec in active.values()],
                                timeout=0.05)
            for proc in list(active):
                i, attempt, deadline, parent, started = active[proc]
                elapsed = _time.monotonic() - started  # repro-lint: disable=DET001 reason=worker timeout accounting, not result data
                alive = proc.is_alive()
                outcome = None
                if parent.poll():  # result arrived (maybe just before death)
                    try:
                        outcome = parent.recv()
                    except (EOFError, OSError):
                        outcome = None
                if outcome is not None:
                    reap(proc, parent)
                    ok, summary, error, seconds = outcome
                    finish(i, attempt, ok, summary, error, seconds, False)
                elif not alive:
                    code = proc.exitcode
                    reap(proc, parent)
                    retry_or_fail(
                        i, attempt,
                        f"WorkerCrash: worker exited with code {code} "
                        f"before returning a result", elapsed, False)
                elif deadline is not None and _time.monotonic() > deadline:  # repro-lint: disable=DET001 reason=worker timeout accounting, not result data
                    proc.terminate()
                    proc.join(1.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join()
                    parent.close()
                    del active[proc]
                    retry_or_fail(
                        i, attempt,
                        f"Timeout: attempt {attempt + 1} exceeded "
                        f"{self.timeout:g}s wall clock", elapsed, True)
        return outcomes

    def run(self, sources: Sequence[BatchSource]) -> BatchReport:
        from repro.resilience.journal import RunJournal

        t0 = _time.perf_counter()  # repro-lint: disable=DET001 reason=batch wall-clock telemetry, never keyed or cached
        sources = list(sources)
        labels = [
            (str(s) if isinstance(s, (str, Path))
             else f"<trace {getattr(s, 'name', i)}>")
            for i, s in enumerate(sources)
        ]
        results: List[Optional[BatchResult]] = [None] * len(sources)
        pending: List[int] = []  # indexes that need an actual extraction
        keys: Dict[int, str] = {}
        digests: Dict[int, str] = {}

        journal: Optional[RunJournal] = None
        if self.journal_path is not None:
            journal = RunJournal(self.journal_path,
                                 options_token(self.options),
                                 resume=self.resume)
        try:
            need_digest = self.cache is not None or journal is not None
            for i, source in enumerate(sources):
                if need_digest:
                    try:
                        digest = trace_digest(source)
                    except Exception as exc:  # unreadable source: failure row
                        results[i] = BatchResult(
                            labels[i], False, 0.0, {},
                            f"{type(exc).__name__}: {exc}", False,
                        )
                        continue
                    digests[i] = digest
                    if journal is not None and journal.is_done(digest):
                        entry = journal.done_entry(digest) or {}
                        results[i] = BatchResult(
                            labels[i], True, 0.0,
                            entry.get("summary", {}) or {}, "", False,
                            int(entry.get("attempts", 1)),
                            bool(entry.get("timed_out", False)),
                            resumed=True,
                        )
                        continue
                    if self.cache is not None:
                        key = self.cache.key(digest, self.options)
                        keys[i] = key
                        summary = self.cache.get(key)
                        if summary is not None:
                            results[i] = BatchResult(labels[i], True, 0.0,
                                                     summary, "", True)
                            if journal is not None:
                                journal.record_done(labels[i], digest, summary)
                            continue
                pending.append(i)

            def journal_outcome(i: int, outcome: tuple) -> None:
                if journal is None:
                    return
                ok, summary, error, seconds, timed_out, attempts = outcome
                digest = digests.get(i, "")
                if not digest:
                    return
                if ok:
                    journal.record_done(labels[i], digest, summary, seconds,
                                        attempts, timed_out)
                else:
                    journal.record_fail(labels[i], digest, error, attempts,
                                        timed_out)

            option_fields = _worker_options(self.options)
            use_processes = (self.timeout is not None
                             or (self.jobs > 1 and len(pending) > 1))
            if use_processes:
                outcomes = self._run_processes(sources, pending,
                                               option_fields,
                                               on_outcome=journal_outcome)
            else:
                outcomes = {}
                for i in pending:
                    outcome = self.worker(sources[i], option_fields) + (False, 1)
                    outcomes[i] = outcome
                    journal_outcome(i, outcome)
        finally:
            if journal is not None:
                journal.close()

        for i in pending:
            ok, summary, error, seconds, timed_out, attempts = outcomes[i]
            results[i] = BatchResult(labels[i], ok, seconds, summary, error,
                                     False, attempts, timed_out)
            if (ok and self.cache is not None and i in keys
                    and not summary.get("degradation", {}).get("degraded")):
                self.cache.put(keys[i], summary)

        report = BatchReport(
            results=[r for r in results if r is not None],
            total_seconds=_time.perf_counter() - t0,  # repro-lint: disable=DET001 reason=batch wall-clock telemetry, never keyed or cached
            jobs=self.jobs,
            cache_hits=self.cache.hits if self.cache is not None else 0,
            cache_misses=self.cache.misses if self.cache is not None else 0,
        )
        return report
