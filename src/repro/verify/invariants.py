"""Named structural-invariant checkers over a :class:`LogicalStructure`.

Each checker returns a list of :class:`~repro.trace.validate.Violation`
records (empty = invariant holds) keyed by a stable invariant name:

==========================  ====================================================
``dag-acyclic``             the phase DAG has no cycles (and preds/succs mirror)
``p1-leap-disjoint``        P1: phases in one leap do not overlap in chares
``p2-successor-cover``      P2: successors span a phase's chares (chares that
                            never reappear at a later leap are exempt)
``leap-consistency``        stored leaps equal the DAG's longest-path depths
``partition-totality``      every in-block event lies in exactly one phase
``step-happened-before``    global steps increase along every message edge and
                            serial-block edge (relaxed-MPI receives exempt)
``step-offset``             step = phase offset + local step; offsets clear all
                            predecessor phases
``chare-step-unique``       no two events of one chare share a global step
``reorder-clocks``          the Section 3.2.1 idealized clock obeys its laws:
                            a receive gets w(send)+1; sends count up within a
                            serial block
==========================  ====================================================

The checkers read only the public fields of the structure, so tests can
corrupt a structure and assert the right checker fires (mutation-style
verification of the verifier itself).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.reorder import _assign_w
from repro.core.structure import LogicalStructure
from repro.trace.events import NO_ID, EventKind
from repro.trace.validate import VerificationError, Violation


class InvariantViolationError(VerificationError):
    """Raised when a recovered structure violates a paper invariant."""


def _resolved_mode(structure: LogicalStructure) -> str:
    """The trace model the structure was extracted under."""
    opts = structure.options
    if opts is not None and getattr(opts, "mode", "auto") != "auto":
        return opts.mode
    if structure.trace.metadata.get("model") == "mpi":
        return "mpi"
    return "charm"


def _resolved_order(structure: LogicalStructure) -> str:
    opts = structure.options
    return getattr(opts, "order", "reordered") if opts is not None else "reordered"


# ---------------------------------------------------------------------------
# DAG shape
# ---------------------------------------------------------------------------
def check_dag_acyclic(structure: LogicalStructure) -> List[Violation]:
    """The phase DAG must be acyclic and its preds/succs views mirrored."""
    out: List[Violation] = []
    phases = structure.phases
    ids = {p.id for p in phases}
    for p in phases:
        for q in p.succs:
            if q not in ids:
                out.append(Violation(
                    "dag-acyclic",
                    f"phase {p.id}: successor {q} is not a phase id",
                    (p.id, q),
                ))
            elif p.id not in phases[q].preds:
                out.append(Violation(
                    "dag-acyclic",
                    f"phase {p.id} lists successor {q} but {q} does not list "
                    f"{p.id} as predecessor",
                    (p.id, q),
                ))
        for q in p.preds:
            if q in ids and p.id not in phases[q].succs:
                out.append(Violation(
                    "dag-acyclic",
                    f"phase {p.id} lists predecessor {q} but {q} does not list "
                    f"{p.id} as successor",
                    (p.id, q),
                ))
    if out:
        return out

    indegree = {p.id: len(p.preds) for p in phases}
    queue = deque(pid for pid, deg in indegree.items() if deg == 0)
    seen = 0
    while queue:
        pid = queue.popleft()
        seen += 1
        for q in phases[pid].succs:
            indegree[q] -= 1
            if indegree[q] == 0:
                queue.append(q)
    if seen != len(phases):
        stuck = sorted(pid for pid, deg in indegree.items() if deg > 0)
        out.append(Violation(
            "dag-acyclic",
            f"phase DAG contains a cycle through phases {stuck[:10]}"
            + ("..." if len(stuck) > 10 else ""),
            tuple(stuck[:10]),
        ))
    return out


def check_leap_consistency(structure: LogicalStructure) -> List[Violation]:
    """Stored phase leaps must equal longest-path depth in the phase DAG."""
    if check_dag_acyclic(structure):
        # Depths are undefined on a cyclic graph; the acyclicity checker
        # already reports the underlying problem.
        return []
    phases = structure.phases
    depth: Dict[int, int] = {}
    indegree = {p.id: len(p.preds) for p in phases}
    queue = deque(pid for pid, deg in indegree.items() if deg == 0)
    for pid in queue:
        depth[pid] = 0
    while queue:
        pid = queue.popleft()
        for q in phases[pid].succs:
            depth[q] = max(depth.get(q, 0), depth[pid] + 1)
            indegree[q] -= 1
            if indegree[q] == 0:
                queue.append(q)
    out: List[Violation] = []
    for p in phases:
        if p.leap != depth.get(p.id, 0):
            out.append(Violation(
                "leap-consistency",
                f"phase {p.id}: stored leap {p.leap} != DAG depth "
                f"{depth.get(p.id, 0)}",
                (p.id,),
            ))
    return out


# ---------------------------------------------------------------------------
# P1 / P2 (Section 3.1.4)
# ---------------------------------------------------------------------------
def check_p1_leap_disjoint(structure: LogicalStructure) -> List[Violation]:
    """P1: no chare may have events in two phases of the same leap."""
    out: List[Violation] = []
    owner: Dict[Tuple[int, int], int] = {}
    for p in structure.phases:
        for c in p.chares:
            key = (p.leap, c)
            other = owner.setdefault(key, p.id)
            if other != p.id:
                out.append(Violation(
                    "p1-leap-disjoint",
                    f"leap {p.leap}: chare {c} appears in phases {other} "
                    f"and {p.id}",
                    (other, p.id, c),
                ))
    return out


def check_p2_successor_cover(structure: LogicalStructure) -> List[Violation]:
    """P2: a phase's successors must span its chares.

    Exemption (Section 3.1.4): a chare that never reappears at a later
    leap needs no successor — its path through the DAG simply ends.
    """
    phases = structure.phases
    last_leap_of_chare: Dict[int, int] = {}
    for p in phases:
        for c in p.chares:
            last_leap_of_chare[c] = max(last_leap_of_chare.get(c, -1), p.leap)
    out: List[Violation] = []
    for p in phases:
        covered: Set[int] = set()
        for q in p.succs:
            covered |= phases[q].chares
        for c in sorted(p.chares - covered):
            if last_leap_of_chare.get(c, -1) > p.leap:
                out.append(Violation(
                    "p2-successor-cover",
                    f"phase {p.id} (leap {p.leap}): chare {c} reappears at leap "
                    f"{last_leap_of_chare[c]} but no direct successor holds it",
                    (p.id, c),
                ))
    return out


# ---------------------------------------------------------------------------
# Event/phase partition totality
# ---------------------------------------------------------------------------
def check_partition_totality(structure: LogicalStructure) -> List[Violation]:
    """Every event inside a serial block lies in exactly one phase."""
    out: List[Violation] = []
    trace = structure.trace
    n_events = len(trace.events)
    seen_in = [-1] * n_events
    for p in structure.phases:
        for ev in p.events:
            if not (0 <= ev < n_events):
                out.append(Violation(
                    "partition-totality",
                    f"phase {p.id}: bad event id {ev}",
                    (p.id, ev),
                ))
                continue
            if seen_in[ev] != -1:
                out.append(Violation(
                    "partition-totality",
                    f"event {ev} appears in phases {seen_in[ev]} and {p.id}",
                    (seen_in[ev], p.id, ev),
                ))
            seen_in[ev] = p.id
            if structure.phase_of_event[ev] != p.id:
                out.append(Violation(
                    "partition-totality",
                    f"event {ev}: phase_of_event says "
                    f"{structure.phase_of_event[ev]} but it lies in phase {p.id}",
                    (p.id, ev),
                ))
            if trace.events[ev].chare not in p.chares:
                out.append(Violation(
                    "partition-totality",
                    f"phase {p.id}: event {ev}'s chare "
                    f"{trace.events[ev].chare} missing from phase chare set",
                    (p.id, ev),
                ))
    for ev in range(n_events):
        in_block = structure.block_of_event[ev] != -1
        if in_block and seen_in[ev] == -1:
            out.append(Violation(
                "partition-totality",
                f"event {ev} belongs to block {structure.block_of_event[ev]} "
                f"but to no phase",
                (ev,),
            ))
        if not in_block and seen_in[ev] != -1:
            out.append(Violation(
                "partition-totality",
                f"event {ev} is outside every block but lies in phase "
                f"{seen_in[ev]}",
                (seen_in[ev], ev),
            ))
    return out


# ---------------------------------------------------------------------------
# Step laws
# ---------------------------------------------------------------------------
def _relaxed_recvs(structure: LogicalStructure) -> Set[int]:
    """Events free to float under relaxed-MPI reordering (Section 3.2.1).

    In reordered MPI mode a *matched* receive is constrained only through
    its message, so it may step before earlier events of its own block
    (Figure 10).  Everywhere else the block order is binding.
    """
    if _resolved_mode(structure) != "mpi" or _resolved_order(structure) != "reordered":
        return set()
    trace = structure.trace
    free: Set[int] = set()
    for ev in range(len(trace.events)):
        if trace.events[ev].kind != EventKind.RECV:
            continue
        mid = trace.message_by_recv[ev]
        if mid != NO_ID and trace.messages[mid].send_event != NO_ID:
            free.add(ev)
    return free


def check_step_monotonicity(structure: LogicalStructure) -> List[Violation]:
    """Global steps must respect happened-before.

    * Along every complete message: ``step(recv) > step(send)``.
    * Along every serial block: consecutive events (in the block's
      physical order) take strictly increasing steps — except pairs
      involving a matched receive under relaxed-MPI reordering, which the
      paper deliberately lets float to its logical wave.
    """
    out: List[Violation] = []
    trace = structure.trace
    step = structure.step_of_event

    for msg in trace.messages:
        if not msg.is_complete():
            continue
        s, r = msg.send_event, msg.recv_event
        if step[s] < 0 or step[r] < 0:
            continue  # unpartitioned endpoints are partition-totality's problem
        if step[r] <= step[s]:
            out.append(Violation(
                "step-happened-before",
                f"msg {msg.id}: recv event {r} at step {step[r]} does not "
                f"follow send event {s} at step {step[s]}",
                (msg.id, s, r),
            ))

    floating = _relaxed_recvs(structure)
    for block in structure.blocks:
        for a, b in zip(block.events, block.events[1:]):
            if step[a] < 0 or step[b] < 0:
                continue
            if a in floating or b in floating:
                continue
            if step[b] <= step[a]:
                out.append(Violation(
                    "step-happened-before",
                    f"block {block.id}: event {b} at step {step[b]} does not "
                    f"follow earlier block event {a} at step {step[a]}",
                    (block.id, a, b),
                ))
    return out


def check_step_offsets(structure: LogicalStructure) -> List[Violation]:
    """Steps decompose through phase offsets, and offsets clear all preds."""
    out: List[Violation] = []
    phases = structure.phases
    for p in phases:
        for q in p.preds:
            if not (0 <= q < len(phases)) or phases[q].max_local_step < 0:
                continue
            need = phases[q].offset + phases[q].max_local_step + 1
            if p.offset < need:
                out.append(Violation(
                    "step-offset",
                    f"phase {p.id}: offset {p.offset} does not clear "
                    f"predecessor {q} (needs >= {need})",
                    (p.id, q),
                ))
        local_max = -1
        for ev in p.events:
            local = structure.local_step_of_event[ev]
            local_max = max(local_max, local)
            if local < 0:
                out.append(Violation(
                    "step-offset",
                    f"phase {p.id}: event {ev} has no local step",
                    (p.id, ev),
                ))
            elif structure.step_of_event[ev] != p.offset + local:
                out.append(Violation(
                    "step-offset",
                    f"event {ev}: global step {structure.step_of_event[ev]} != "
                    f"phase {p.id} offset {p.offset} + local step {local}",
                    (p.id, ev),
                ))
        if p.events and p.max_local_step != local_max:
            out.append(Violation(
                "step-offset",
                f"phase {p.id}: max_local_step {p.max_local_step} != observed "
                f"maximum {local_max}",
                (p.id,),
            ))
    return out


def check_chare_step_uniqueness(structure: LogicalStructure) -> List[Violation]:
    """The paper's end guarantee: one event per chare per global step."""
    out: List[Violation] = []
    owner: Dict[Tuple[int, int], int] = {}
    events = structure.trace.events
    for ev, step in enumerate(structure.step_of_event):
        if step < 0:
            continue
        key = (events[ev].chare, step)
        other = owner.setdefault(key, ev)
        if other != ev:
            out.append(Violation(
                "chare-step-unique",
                f"chare {events[ev].chare}: events {other} and {ev} both at "
                f"global step {step}",
                (other, ev),
            ))
    return out


# ---------------------------------------------------------------------------
# Reorder clock laws (Section 3.2.1)
# ---------------------------------------------------------------------------
def check_reorder_clocks(
    structure: LogicalStructure,
    w_override: Optional[Dict[int, Dict[int, int]]] = None,
) -> List[Violation]:
    """The idealized clock of each phase obeys the Section 3.2.1 laws.

    * **Receive law** — a receive whose matching send lies earlier in the
      same phase gets ``w = w(send) + 1``.
    * **Count-up law** — every other event counts up from the latest
      event of its serial block (initial events get 0).

    Applies only to reordered structures (physical order has no clock).
    ``w_override`` maps phase id -> {event -> w} and substitutes for the
    recomputed clock; mutation tests use it to corrupt the clock and
    assert detection.
    """
    if w_override is None and _resolved_order(structure) != "reordered":
        return []
    out: List[Violation] = []
    trace = structure.trace
    events = trace.events
    for phase in structure.phases:
        in_phase = set(phase.events)
        if w_override is not None:
            w = w_override.get(phase.id)
            if w is None:
                continue
        else:
            w = _assign_w(trace, phase.events, in_phase, structure.block_of_event)
        ordered = sorted(phase.events, key=lambda e: (events[e].time, e))
        last_in_block: Dict[int, int] = {}
        seen: Set[int] = set()
        for ev in ordered:
            if ev not in w:
                out.append(Violation(
                    "reorder-clocks",
                    f"phase {phase.id}: event {ev} has no clock value",
                    (phase.id, ev),
                ))
                continue
            block = structure.block_of_event[ev]
            expected: Optional[int] = None
            if events[ev].kind == EventKind.RECV:
                mid = trace.message_by_recv[ev]
                send = trace.messages[mid].send_event if mid != NO_ID else NO_ID
                if send != NO_ID and send in in_phase and send in seen:
                    expected = w[send] + 1
            if expected is None:
                expected = last_in_block.get(block, -1) + 1
            if w[ev] != expected:
                out.append(Violation(
                    "reorder-clocks",
                    f"phase {phase.id}: event {ev} has w={w[ev]}, clock laws "
                    f"require {expected}",
                    (phase.id, ev),
                ))
            last_in_block[block] = w[ev]
            seen.add(ev)
    return out


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
Checker = Callable[[LogicalStructure], List[Violation]]

#: All checkers in report order, keyed by invariant name.
ALL_CHECKERS: Dict[str, Checker] = {
    "dag-acyclic": check_dag_acyclic,
    "leap-consistency": check_leap_consistency,
    "p1-leap-disjoint": check_p1_leap_disjoint,
    "p2-successor-cover": check_p2_successor_cover,
    "partition-totality": check_partition_totality,
    "step-happened-before": check_step_monotonicity,
    "step-offset": check_step_offsets,
    "chare-step-unique": check_chare_step_uniqueness,
    "reorder-clocks": check_reorder_clocks,
}


def check_structure(
    structure: LogicalStructure,
    checkers: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Run the named checkers (default: all) and collect every violation."""
    names = list(ALL_CHECKERS) if checkers is None else list(checkers)
    out: List[Violation] = []
    for name in names:
        try:
            checker = ALL_CHECKERS[name]
        except KeyError:
            raise ValueError(f"unknown invariant checker {name!r}") from None
        out.extend(checker(structure))
    return out


def verify_structure(
    structure: LogicalStructure,
    checkers: Optional[Sequence[str]] = None,
) -> None:
    """Raise :class:`InvariantViolationError` if any invariant is violated."""
    violations = check_structure(structure, checkers)
    if violations:
        raise InvariantViolationError("structure verification failed", violations)
