"""Differential verification: run the pipeline under variant options and
assert both the per-variant invariants and the cross-variant facts the
paper guarantees.

The extraction has three ablation axes (Section 3's knobs): event order
("reordered" vs "physical"), the Section 3.1.4 inference ("infer" on/off),
and the reorder tie-break.  Phase *finding* never looks at the order or
the tie-break — those only rearrange events inside phases — so variants
that differ only in them must partition events into identical phases.
The one exception is reordered MPI mode, whose relaxed per-process chain
changes the stage-1 edges (Section 3.2.1, Figure 10); such variants are
compared only against variants with the same order.

Every variant also runs the full invariant suite, so
``run_differential(trace).assert_ok()`` is the one-call safety net the
performance PRs run before and after touching the hot path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import HAVE_NUMPY
from repro.core.pipeline import PipelineOptions, PipelineStats, extract_logical_structure
from repro.core.structure import LogicalStructure
from repro.trace.model import Trace
from repro.trace.validate import Violation
from repro.verify.invariants import InvariantViolationError, check_structure


@dataclass
class VariantResult:
    """One pipeline run of the differential matrix."""

    name: str
    options: PipelineOptions
    structure: LogicalStructure
    stats: PipelineStats
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "variant": self.name,
            "phases": len(self.structure.phases),
            "max_step": self.structure.max_step,
            "stage_seconds": dict(self.stats.stage_seconds),
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass
class DifferentialReport:
    """All variant runs plus the cross-variant comparison results."""

    results: List[VariantResult]
    cross_violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.cross_violations and all(r.ok for r in self.results)

    def all_violations(self) -> List[Violation]:
        out: List[Violation] = []
        for r in self.results:
            out.extend(r.violations)
        out.extend(self.cross_violations)
        return out

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolationError` unless every check passed."""
        if not self.ok:
            raise InvariantViolationError(
                "differential verification failed", self.all_violations()
            )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "variants": [r.to_dict() for r in self.results],
            "cross_violations": [v.to_dict() for v in self.cross_violations],
        }


def default_variants(
    tie_breaks: bool = True, backends: bool = True
) -> List[Tuple[str, PipelineOptions]]:
    """The standard matrix: order × infer, plus tie-break and backend twins.

    Base variants pin ``backend="python"`` — the reference implementation.
    With ``backends=True`` (and NumPy available) columnar and
    columnar_batched twins join the matrix; Fact 3 then asserts they are
    *bit-identical* to their python counterparts, not merely
    partition-equivalent.
    """
    variants: List[Tuple[str, PipelineOptions]] = []
    for order in ("reordered", "physical"):
        for infer in (True, False):
            name = f"{order}/{'infer' if infer else 'noinfer'}"
            variants.append(
                (name, PipelineOptions(order=order, infer=infer, backend="python"))
            )
    if tie_breaks:
        variants.append(
            ("reordered/infer/index",
             PipelineOptions(order="reordered", infer=True, tie_break="index",
                             backend="python"))
        )
    if backends and HAVE_NUMPY:
        variants.append(
            ("reordered/infer/columnar",
             PipelineOptions(order="reordered", infer=True, backend="columnar"))
        )
        variants.append(
            ("physical/noinfer/columnar",
             PipelineOptions(order="physical", infer=False, backend="columnar"))
        )
        # Batched twins join the same Fact-3 twin groups as the python
        # base and the columnar twin: all three must be bit-identical.
        variants.append(
            ("reordered/infer/columnar_batched",
             PipelineOptions(order="reordered", infer=True,
                             backend="columnar_batched"))
        )
        variants.append(
            ("physical/noinfer/columnar_batched",
             PipelineOptions(order="physical", infer=False,
                             backend="columnar_batched"))
        )
    return variants


def _partition_signature(structure: LogicalStructure) -> frozenset:
    """The event partition induced by the phases, order-insensitive."""
    return frozenset(frozenset(p.events) for p in structure.phases)


def _comparison_group(trace: Trace, options: PipelineOptions) -> Tuple:
    """Variants in one group must produce identical phase partitions.

    Phase finding depends on the model, the inference switch, and — for
    MPI traces only — the order (via the relaxed chain).  The tie-break
    never affects it.
    """
    mode = options.resolve_mode(trace)
    if mode == "mpi":
        return (mode, options.infer, options.order)
    return (mode, options.infer)


def run_differential(
    trace: Trace,
    variants: Optional[Sequence[Tuple[str, PipelineOptions]]] = None,
) -> DifferentialReport:
    """Extract ``trace`` under every variant and cross-check the results."""
    chosen = list(variants) if variants is not None else default_variants()
    results: List[VariantResult] = []
    for name, options in chosen:
        stats = PipelineStats()
        structure = extract_logical_structure(trace, options=options, stats=stats)
        violations = check_structure(structure)
        results.append(VariantResult(name, options, structure, stats, violations))

    cross: List[Violation] = []

    # Fact 1: the set of stepped events is option-independent (blocks and
    # their events never depend on the pipeline knobs).
    stepped = [
        (r.name, frozenset(
            ev for ev, s in enumerate(r.structure.step_of_event) if s >= 0
        ))
        for r in results
    ]
    for (name_a, evs_a), (name_b, evs_b) in zip(stepped, stepped[1:]):
        if evs_a != evs_b:
            delta = evs_a.symmetric_difference(evs_b)
            cross.append(Violation(
                "differential-stepped-events",
                f"variants {name_a} and {name_b} step different event sets "
                f"({len(delta)} events differ)",
                tuple(sorted(delta)[:10]),
            ))

    # Fact 2: within a comparison group the phase event-partitions match.
    groups: Dict[Tuple, VariantResult] = {}
    for r in results:
        key = _comparison_group(trace, r.options)
        first = groups.setdefault(key, r)
        if first is r:
            continue
        sig_a = _partition_signature(first.structure)
        sig_b = _partition_signature(r.structure)
        if sig_a != sig_b:
            cross.append(Violation(
                "differential-partitions",
                f"variants {first.name} and {r.name} disagree on the phase "
                f"event-partition ({len(sig_a)} vs {len(sig_b)} phases)",
            ))

    # Fact 3: the backend is a pure implementation detail — variants whose
    # options differ only in it must assign bit-identical steps and phases.
    twins: Dict[Tuple, VariantResult] = {}
    for r in results:
        base = dataclasses.replace(r.options, backend="python", hooks=None)
        key = (base.mode, base.order, base.infer, base.enforce_properties,
               base.tie_break, base.absorb_tolerance)
        first = twins.setdefault(key, r)
        if first is r:
            continue
        if (first.structure.step_of_event != r.structure.step_of_event
                or first.structure.phase_of_event != r.structure.phase_of_event):
            cross.append(Violation(
                "differential-backend",
                f"variants {first.name} and {r.name} differ only in backend "
                "but disagree on step or phase assignments",
            ))

    return DifferentialReport(results, cross)
