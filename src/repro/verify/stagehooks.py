"""Per-stage pipeline instrumentation.

:func:`repro.core.pipeline.extract_logical_structure` announces the end of
every stage to the hook object carried by
:class:`~repro.core.pipeline.PipelineOptions`.  A hook sees the stage
name, the elapsed seconds, and the live intermediate state — the mutable
:class:`~repro.core.partition.PartitionState` while phases are being
found, the finished :class:`~repro.core.structure.LogicalStructure` at
the end — so it can record per-stage metrics or run invariant checks
mid-flight without the pipeline knowing which.

Three ready-made hooks:

* :class:`PipelineHooks` — the no-op protocol base;
* :class:`StageRecorder` — collects :class:`StageRecord` rows (timings,
  partition/merge counts), the data behind ``repro verify --json``;
* :class:`StrictVerifier` — a recorder that additionally asserts the
  stage postconditions (graph acyclic after every merge stage, event
  coverage stable) and runs the full invariant suite on the final
  structure.  This is what ``PipelineOptions(verify=True)`` installs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.core.leaps import compute_leaps
from repro.core.partition import PartitionState
from repro.core.structure import LogicalStructure
from repro.trace.validate import Violation
from repro.verify.invariants import InvariantViolationError, verify_structure

#: Stages that end with (or cannot introduce) a cycle merge: the partition
#: graph must be a DAG when they finish.  After "initial" cycles are
#: legitimate (Figure 3's ring) so it is deliberately absent.
ACYCLIC_AFTER = frozenset({
    "dependency_merge",
    "repair_merge",
    "infer_sources",
    "leap_merge",
    "order_overlapping",
    "chare_paths",
})


@dataclass
class StageRecord:
    """One pipeline stage as observed by a hook."""

    stage: str
    seconds: float
    #: Live partition count after the stage (-1 once phases are built).
    partitions: int = -1
    #: Partitions eliminated by merging during the stage (-1 if unknown).
    merges: int = -1

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            "partitions": self.partitions,
            "merges": self.merges,
        }


@runtime_checkable
class StageHook(Protocol):
    """The structural type :class:`~repro.core.pipeline.PipelineOptions`
    accepts in ``hooks`` — anything with this ``on_stage`` signature
    (one hook or a sequence of them).

    Exactly one of ``state`` and ``structure`` is set: ``state`` during
    phase finding, ``structure`` for the final "finalize" announcement.
    Raising from :meth:`on_stage` aborts the pipeline (that is how
    :class:`StrictVerifier` fails fast).
    """

    def on_stage(
        self,
        stage: str,
        *,
        state: Optional[PartitionState] = None,
        structure: Optional[LogicalStructure] = None,
        seconds: float = 0.0,
    ) -> None:
        """Called by the pipeline after every stage."""


class PipelineHooks:
    """No-op :class:`StageHook` base; subclasses override :meth:`on_stage`."""

    def on_stage(
        self,
        stage: str,
        *,
        state: Optional[PartitionState] = None,
        structure: Optional[LogicalStructure] = None,
        seconds: float = 0.0,
    ) -> None:
        """Called by the pipeline after every stage."""


class StageRecorder(PipelineHooks):
    """Records a :class:`StageRecord` per stage, plus derived merge counts."""

    def __init__(self) -> None:
        self.records: List[StageRecord] = []
        self._last_partitions: Optional[int] = None

    def on_stage(
        self,
        stage: str,
        *,
        state: Optional[PartitionState] = None,
        structure: Optional[LogicalStructure] = None,
        seconds: float = 0.0,
    ) -> None:
        partitions = state.num_partitions() if state is not None else -1
        merges = -1
        if state is not None:
            if self._last_partitions is not None:
                merges = self._last_partitions - partitions
            self._last_partitions = partitions
        self.records.append(StageRecord(stage, seconds, partitions, merges))

    def by_stage(self) -> Dict[str, StageRecord]:
        """Latest record per stage name."""
        return {r.stage: r for r in self.records}

    def to_dict(self) -> dict:
        return {"stages": [r.to_dict() for r in self.records]}


class StrictVerifier(StageRecorder):
    """A recorder that also enforces stage postconditions.

    * After every stage in :data:`ACYCLIC_AFTER` the partition graph must
      be a DAG (these stages end with a cycle merge, or add only
      leap-increasing edges).
    * Event coverage must never change mid-pipeline: merging moves events
      between partitions but never drops them.
    * The final structure must pass the full invariant suite
      (:func:`repro.verify.invariants.verify_structure`).
    """

    def __init__(self) -> None:
        super().__init__()
        self._covered_events: Optional[int] = None

    def on_stage(
        self,
        stage: str,
        *,
        state: Optional[PartitionState] = None,
        structure: Optional[LogicalStructure] = None,
        seconds: float = 0.0,
    ) -> None:
        super().on_stage(stage, state=state, structure=structure, seconds=seconds)
        if state is not None:
            if stage in ACYCLIC_AFTER:
                try:
                    compute_leaps(state)
                except ValueError:
                    raise InvariantViolationError(
                        f"strict verification failed after stage {stage!r}",
                        [Violation(
                            "stage-acyclic",
                            f"partition graph is cyclic after stage {stage!r}",
                        )],
                    ) from None
            covered = sum(len(evs) for evs in state.init_events)
            if self._covered_events is None:
                self._covered_events = covered
            elif covered != self._covered_events:
                raise InvariantViolationError(
                    f"strict verification failed after stage {stage!r}",
                    [Violation(
                        "stage-event-coverage",
                        f"stage {stage!r} changed the number of partitioned "
                        f"events from {self._covered_events} to {covered}",
                    )],
                )
        if structure is not None:
            verify_structure(structure)
