"""Structural-invariant verification of recovered logical structures.

The pipeline's correctness argument rests on invariants the paper states
but the code historically never checked at runtime: the phase DAG is
acyclic, partitions in one leap do not overlap in chares (P1, Section
3.1.4), each partition's successors span its chares (P2), global steps
respect happened-before along message and serial-block edges, and the
Section 3.2.1 reordering obeys its clock laws.  This package makes those
checks cheap and always available:

* :mod:`repro.verify.invariants` — named checkers over a
  :class:`~repro.core.structure.LogicalStructure`, each returning
  structured :class:`~repro.trace.validate.Violation` records;
* :mod:`repro.verify.stagehooks` — a hook protocol the pipeline calls
  after every stage (timings, partition counts, optional strict
  mid-pipeline checks);
* :mod:`repro.verify.differential` — run the pipeline under variant
  options (reordered vs physical, infer on/off, tie-break variants) and
  assert the invariants plus the cross-variant facts the paper
  guarantees.

``verify_structure(structure)`` raises
:class:`~repro.verify.invariants.InvariantViolationError` on the first
pass that finds problems; ``check_structure`` returns the violation list
for report-oriented callers.
"""

from repro.verify.differential import (
    DifferentialReport,
    VariantResult,
    default_variants,
    run_differential,
)
from repro.verify.invariants import (
    ALL_CHECKERS,
    InvariantViolationError,
    check_chare_step_uniqueness,
    check_dag_acyclic,
    check_leap_consistency,
    check_p1_leap_disjoint,
    check_p2_successor_cover,
    check_partition_totality,
    check_reorder_clocks,
    check_step_monotonicity,
    check_step_offsets,
    check_structure,
    verify_structure,
)
from repro.verify.stagehooks import (
    PipelineHooks,
    StageHook,
    StageRecord,
    StageRecorder,
    StrictVerifier,
)

__all__ = [
    "ALL_CHECKERS",
    "DifferentialReport",
    "InvariantViolationError",
    "PipelineHooks",
    "StageHook",
    "StageRecord",
    "StageRecorder",
    "StrictVerifier",
    "VariantResult",
    "check_chare_step_uniqueness",
    "check_dag_acyclic",
    "check_leap_consistency",
    "check_p1_leap_disjoint",
    "check_p2_successor_cover",
    "check_partition_totality",
    "check_reorder_clocks",
    "check_step_monotonicity",
    "check_step_offsets",
    "check_structure",
    "default_variants",
    "run_differential",
    "verify_structure",
]
